"""Deterministic chaos harness: seeded fault injection at named seams.

Resilience claims are only as good as the faults they were tested
against.  This module plants cheap, always-compiled-in probes at the
runtime's failure seams; in normal operation a probe is one attribute
read and a ``None`` check.  Under a :class:`FaultPlane` each probe rolls
a *seeded* PRNG and, with the configured probability, raises
:class:`~repro.errors.InjectedFault` -- a structured FunTALError, so the
fault travels the same degradation path a real failure would (fallback,
quarantine, structured job result) and never an unhandled crash.

Determinism: the plane is driven by ``random.Random(seed)`` and the
probe order of a single-threaded run is fixed, so the same (program,
seed, probability) triple always faults at the same seams in the same
order.  ``funtal chaos`` and the CI smoke step rely on this to make
failure reproduction a one-liner.

Seams (see :data:`SEAMS`):

``heap.alloc``
    Memory.alloc/bind -- a heap cell could not be committed.
``boundary.translate``
    f_to_t/t_to_f -- a value crossing the F/T boundary is lost.
``jit.compile``
    jit/compiler.py -- the compiler backend faults; the safety net must
    fall back to the interpreter with an identical result.
``jit.run``
    execution of already-jitted code faults at call time.
``snapshot.pickle``
    checkpoint capture -- the pickler dies mid-snapshot.
``snapshot.restore``
    checkpoint restore -- the snapshot cannot be revived on this side.
``store.io``
    ArtifactStore.get/put -- the on-disk artifact store is faulting
    (serve jobs degrade to store-less compilation rather than failing).

Use as a context manager to scope injection::

    with FaultPlane(seed=7, rate=0.05):
        ... run workload ...

or target specific seams: ``FaultPlane(seed=7, seams=["jit.compile"])``.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Optional

from repro.errors import InjectedFault
from repro.obs.events import OBS

__all__ = ["SEAMS", "FaultPlane", "probe", "active_plane"]

#: Every seam a probe is planted at, with a one-line description.
SEAMS: Dict[str, str] = {
    "heap.alloc": "heap cell allocation (Memory.alloc / Memory.bind)",
    "boundary.translate": "F<->T boundary value translation",
    "jit.compile": "JIT compilation of an F lambda",
    "jit.run": "execution of previously-jitted code",
    "snapshot.pickle": "machine checkpoint capture (pickling)",
    "snapshot.restore": "machine checkpoint restore (unpickling)",
    "store.io": "artifact-store reads/writes (ArtifactStore.get / put)",
}

#: The plane currently armed, or None.  Single-threaded by design: the
#: machines themselves are single-threaded, and serve workers are
#: separate processes, so a module global is both sufficient and exactly
#: as deterministic as the run itself.
_ACTIVE: Optional["FaultPlane"] = None


def active_plane() -> Optional["FaultPlane"]:
    return _ACTIVE


def probe(seam: str, detail: str = "") -> None:
    """The hook the runtime calls at each seam.  No-op unless a
    :class:`FaultPlane` is armed and elects to fault here."""
    plane = _ACTIVE
    if plane is not None:
        plane.roll(seam, detail)


class FaultPlane:
    """A seeded source of injected faults, scoped with ``with``.

    ``rate`` is the per-probe fault probability; ``seams`` restricts
    injection to a subset of :data:`SEAMS` (default: all of them).
    ``max_faults`` caps the number of faults one plane will raise, so a
    workload can be made to limp rather than die outright.
    """

    def __init__(self, seed: int = 0, rate: float = 0.1,
                 seams: Optional[Iterable[str]] = None,
                 max_faults: Optional[int] = None):
        unknown = set(seams or ()) - set(SEAMS)
        if unknown:
            raise ValueError(f"unknown chaos seams: {sorted(unknown)}")
        self.seed = seed
        self.rate = rate
        self.seams = frozenset(seams) if seams is not None else frozenset(SEAMS)
        self.max_faults = max_faults
        self.rng = random.Random(seed)
        self.probes = 0
        self.faults = 0
        self.fault_log: list = []  # (probe_index, seam) pairs, for reports

    def roll(self, seam: str, detail: str = "") -> None:
        if seam not in self.seams:
            return
        # Every eligible probe advances the PRNG exactly once, faulting
        # or not, so the fault schedule is a pure function of the seed.
        self.probes += 1
        hit = self.rng.random() < self.rate
        if not hit:
            return
        if self.max_faults is not None and self.faults >= self.max_faults:
            return
        self.faults += 1
        self.fault_log.append((self.probes, seam))
        if OBS.enabled:
            OBS.metrics.inc("resilience.chaos.injected")
            OBS.metrics.inc(f"resilience.chaos.injected.{seam}")
        raise InjectedFault(seam, detail)

    # -- scoping ---------------------------------------------------------

    def __enter__(self) -> "FaultPlane":
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("a FaultPlane is already active")
        _ACTIVE = self
        return self

    def __exit__(self, *exc) -> None:
        global _ACTIVE
        _ACTIVE = None

    def summary(self) -> Dict[str, object]:
        per_seam: Dict[str, int] = {}
        for _, seam in self.fault_log:
            per_seam[seam] = per_seam.get(seam, 0) + 1
        return {
            "seed": self.seed, "rate": self.rate,
            "probes": self.probes, "faults": self.faults,
            "per_seam": per_seam,
        }

    def __repr__(self) -> str:
        return (f"FaultPlane(seed={self.seed}, rate={self.rate}, "
                f"faults={self.faults}/{self.probes} probes)")

"""Unified resource governors for the F, T, and FT machines.

A :class:`Budget` bundles the three ceilings a run may not cross:

* **fuel** -- small steps, the paper's divergence bound.  Shared across
  both languages and all boundary-nesting levels, exactly like the FT
  machine's old single fuel counter;
* **heap** -- allocated heap cells (tuple words + code blocks).  Charged
  by :class:`repro.tal.heap.Memory` on every ``alloc``/``bind``, so a
  program that allocates without bound degrades into a structured
  :class:`~repro.errors.HeapExhausted` instead of eating the host's RAM;
* **depth** -- evaluation-context frames on the F side and machine-stack
  slots on the T side.  Deep contexts trip
  :class:`~repro.errors.StackDepthExhausted` before they can threaten the
  host interpreter.

Budgets replace the three ad-hoc ``fuel`` parameters that used to live in
``f/eval.py`` (100_000), ``tal/machine.py`` (1_000_000) and
``ft/machine.py`` (1_000_000); :data:`DEFAULT_FUEL` is now the single
source of truth.  A budget is picklable, so it rides along in machine
checkpoints (:mod:`repro.resilience.checkpoint`) and resumes with its
spend intact; :meth:`Budget.refill` tops the fuel up for the next slice.

Soft limits: when any dimension crosses ``soft_ratio`` of its ceiling the
budget emits one ``resilience.soft_limit.<resource>`` counter increment
via :mod:`repro.obs` (per budget, per resource), so operators see "about
to be killed" before the kill.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import (
    FuelExhausted, HeapExhausted, ResourceExhausted, StackDepthExhausted,
)
from repro.obs.events import OBS

__all__ = [
    "DEFAULT_FUEL", "DEFAULT_HEAP", "DEFAULT_DEPTH", "DEFAULT_BUDGET",
    "Budget",
]

#: The single fuel default shared by every machine (F, T, FT), the serve
#: executor, and the CLI.  (F used to default to 100_000 while T/FT used
#: 1_000_000; jobs moving between entry points kept changing verdicts.)
DEFAULT_FUEL = 1_000_000

#: Heap-cell ceiling: tuple words + code blocks allocated during one run.
DEFAULT_HEAP = 1_000_000

#: Depth ceiling: F evaluation-context frames / T stack slots.  Both are
#: bounded above by the fuel actually spent (every frame push and stack
#: push costs a step), so the default matches DEFAULT_FUEL and fuel trips
#: first unless a caller asks for a tighter ceiling.
DEFAULT_DEPTH = 1_000_000


class Budget:
    """Fuel + heap + depth governor with soft-limit warnings.

    The fuel check is the machines' per-step hot path, so it is two int
    ops; the heap and depth checks sit on allocation and frame growth,
    which are orders of magnitude rarer.
    """

    __slots__ = ("max_fuel", "max_heap", "max_depth",
                 "fuel_used", "heap_used", "depth_high_water",
                 "soft_ratio", "_soft_warned")

    def __init__(self, fuel: Optional[int] = None,
                 heap: Optional[int] = None,
                 depth: Optional[int] = None,
                 soft_ratio: float = 0.8):
        self.max_fuel = DEFAULT_FUEL if fuel is None else fuel
        self.max_heap = DEFAULT_HEAP if heap is None else heap
        self.max_depth = DEFAULT_DEPTH if depth is None else depth
        self.fuel_used = 0
        self.heap_used = 0
        self.depth_high_water = 0
        self.soft_ratio = soft_ratio
        self._soft_warned: set = set()

    # -- construction helpers -------------------------------------------

    @classmethod
    def of(cls, fuel: Optional[int] = None, heap: Optional[int] = None,
           depth: Optional[int] = None,
           budget: Optional["Budget"] = None) -> "Budget":
        """The budget to run under: an explicit ``budget`` wins, else a
        fresh one from the given ceilings (``None`` -> defaults)."""
        if budget is not None:
            return budget
        return cls(fuel=fuel, heap=heap, depth=depth)

    def clone_limits(self) -> "Budget":
        """A fresh, unspent budget with the same ceilings."""
        return Budget(self.max_fuel, self.max_heap, self.max_depth,
                      self.soft_ratio)

    # -- the governors ---------------------------------------------------

    def consume_fuel(self, n: int = 1) -> None:
        used = self.fuel_used + n
        self.fuel_used = used
        if used > self.max_fuel:
            self._exhaust("fuel")
            raise FuelExhausted(self.max_fuel, used)
        if used >= self.max_fuel * self.soft_ratio:
            self._soft_warn("fuel", used)

    def charge_heap(self, cells: int = 1) -> None:
        used = self.heap_used + cells
        self.heap_used = used
        if used > self.max_heap:
            self._exhaust("heap")
            raise HeapExhausted(self.max_heap, used)
        if used >= self.max_heap * self.soft_ratio:
            self._soft_warn("heap", used)

    def check_depth(self, depth: int) -> None:
        if depth > self.depth_high_water:
            self.depth_high_water = depth
        if depth > self.max_depth:
            self._exhaust("depth")
            raise StackDepthExhausted(self.max_depth, depth)
        if depth >= self.max_depth * self.soft_ratio:
            self._soft_warn("depth", depth)

    def depth_error(self, depth: Optional[int] = None) -> StackDepthExhausted:
        """The structured verdict for a Python-level recursion blowout
        (the governor did not get a chance to trip first)."""
        self._exhaust("depth")
        return StackDepthExhausted(
            self.max_depth, depth if depth is not None else self.max_depth,
            "evaluation exceeded the host interpreter's recursion depth "
            f"(depth ceiling {self.max_depth})")

    # -- accounting ------------------------------------------------------

    @property
    def fuel_remaining(self) -> int:
        return max(0, self.max_fuel - self.fuel_used)

    @property
    def heap_remaining(self) -> int:
        return max(0, self.max_heap - self.heap_used)

    def refill(self, fuel: Optional[int] = None) -> "Budget":
        """Top the fuel back up for the next slice of a resumed run:
        the spend resets to zero and, if ``fuel`` is given, the ceiling
        is replaced.  Heap charges persist (the heap itself persists)."""
        if fuel is not None:
            self.max_fuel = fuel
        self.fuel_used = 0
        self._soft_warned.discard("fuel")
        return self

    def spent(self) -> Dict[str, int]:
        """JSON-ready accounting snapshot."""
        return {
            "fuel_used": self.fuel_used, "fuel_max": self.max_fuel,
            "heap_used": self.heap_used, "heap_max": self.max_heap,
            "depth_high_water": self.depth_high_water,
            "depth_max": self.max_depth,
        }

    # -- instrumentation -------------------------------------------------

    def _soft_warn(self, resource: str, used: int) -> None:
        if resource in self._soft_warned:
            return
        self._soft_warned.add(resource)
        if OBS.enabled:
            OBS.metrics.inc(f"resilience.soft_limit.{resource}")
            OBS.gauge(f"resilience.budget.{resource}_used", used)

    def _exhaust(self, resource: str) -> None:
        if OBS.enabled:
            OBS.metrics.inc(f"resilience.exhausted.{resource}")

    # -- pickling (the obs registry must not ride along) -----------------

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)

    def __repr__(self) -> str:
        return (f"Budget(fuel {self.fuel_used}/{self.max_fuel}, "
                f"heap {self.heap_used}/{self.max_heap}, "
                f"depth {self.depth_high_water}/{self.max_depth})")


#: The library-wide default ceilings.  Treat as immutable: call
#: ``DEFAULT_BUDGET.clone_limits()`` (or just ``Budget()``) for a run.
DEFAULT_BUDGET = Budget()

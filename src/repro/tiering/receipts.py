"""Signed validation receipts: proof-of-equivalence, paid once.

Translation validation costs ~0.56s per artifact against a ~0.2ms
compile, so the economics only work if the proof is durable.  A
receipt records *what was validated* (digest, kind, tier, trial fuel,
seed, the promoted T-block digests) and is persisted in the PR 7
:class:`~repro.link.store.ArtifactStore` under kind ``receipt`` --
content-addressed by program digest, so any worker or process sharing
the store trusts it without re-validating
(``tiering.validate.receipt_hit`` vs ``tiering.validate.performed``).

Receipts carry an HMAC-SHA256 signature over their canonical JSON.
This is tamper-*evidence*, not a security boundary: the store lives in
the operator's own cache directory; the signature exists so a
truncated write, a stale schema, or a hand-edited file degrades to a
re-validation (``tiering.validate.receipt_bad``) instead of silently
serving an unproven tier.
"""

from __future__ import annotations

import hashlib
import hmac
import json
from typing import Any, Dict, List, Optional

from repro.link.store import ArtifactStore
from repro.obs import OBS

#: Bump when the receipt payload schema changes; old receipts then
#: fail verification and are re-earned, never reinterpreted.
RECEIPT_VERSION = 1

RECEIPT_KIND = "receipt"

_SIG_FIELD = "sig"


def _canonical(payload: Dict[str, Any]) -> bytes:
    body = {k: v for k, v in payload.items() if k != _SIG_FIELD}
    return json.dumps(body, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def sign_receipt(payload: Dict[str, Any], key: str) -> str:
    return hmac.new(key.encode("utf-8"), _canonical(payload),
                    hashlib.sha256).hexdigest()


def verify_receipt(payload: Dict[str, Any], key: str) -> bool:
    sig = payload.get(_SIG_FIELD)
    if not isinstance(sig, str):
        return False
    return hmac.compare_digest(sig, sign_receipt(payload, key))


class ReceiptBook:
    """Receipt persistence over an :class:`ArtifactStore`."""

    def __init__(self, store: ArtifactStore,
                 key: Optional[str] = None) -> None:
        if key is None:
            from repro.tiering.policy import active_policy
            key = active_policy().key
        self.store = store
        self.key = key

    def _inc(self, name: str) -> None:
        if OBS.enabled:
            OBS.metrics.inc(name)

    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        """Verified receipt for ``digest``, or None (miss / bad sig)."""
        found = self.store.get(digest, kind=RECEIPT_KIND)
        if found is None:
            self._inc("tiering.validate.receipt_miss")
            return None
        _meta, payload = found
        if (not isinstance(payload, dict)
                or payload.get("version") != RECEIPT_VERSION
                or not verify_receipt(payload, self.key)):
            # A receipt we cannot trust is worse than none: drop it so
            # the next promotion re-earns the proof.
            try:
                self.store.path(digest, RECEIPT_KIND).unlink()
            except OSError:
                pass
            self._inc("tiering.validate.receipt_bad")
            return None
        self._inc("tiering.validate.receipt_hit")
        return payload

    def put(self, digest: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        signed = dict(payload)
        signed["version"] = RECEIPT_VERSION
        signed[_SIG_FIELD] = sign_receipt(signed, self.key)
        self.store.put(digest, signed, meta={"digest": digest},
                       kind=RECEIPT_KIND)
        self._inc("tiering.receipt.put")
        return signed

    def digests(self) -> List[str]:
        """Digests with a receipt file on disk (signature not checked)."""
        suffix = f".{RECEIPT_KIND}.json"
        try:
            names = sorted(p.name for p in self.store.root.iterdir()
                           if p.name.endswith(suffix))
        except OSError:
            return []
        return [n[:-len(suffix)] for n in names]

"""Profile-guided adaptive tiering (ROADMAP item 4).

One :class:`~repro.tiering.policy.TieringPolicy` owns every promotion
knob (thresholds, hysteresis, budgets) and one
:class:`~repro.tiering.controller.TieringController` drives a state
machine per content digest::

    cold -> profiling -> promoting -> promoted
                              |            |
                              v            v
                          demoted     quarantined

Hot-site detection comes from :mod:`repro.obs.profile` step counts,
promotion work runs as background ``promote`` jobs in serve workers,
and the proof that a digest's fast tiers agree with the reference
semantics is persisted as a signed receipt in the PR 7
:class:`~repro.link.store.ArtifactStore` -- validated once, trusted at
every worker and process that shares the store.  The PR 3 differential
safety net plus PR 8 digest quarantine remain the always-on demotion
backstop.

Import surface: :mod:`repro.tiering.policy` (knobs and tier
resolution), :mod:`repro.tiering.controller` (state machine),
:mod:`repro.tiering.receipts` (signed receipt book),
:mod:`repro.tiering.promote` (worker-side promotion + validation),
:mod:`repro.tiering.coordinator` (pool-side scheduling glue).
"""

from repro.tiering.policy import (
    TIERING_MODES,
    TieringPolicy,
    active_policy,
    resolve_tiers,
    set_active_policy,
)
from repro.tiering.controller import (
    COLD,
    DEMOTED,
    PROFILING,
    PROMOTED,
    PROMOTING,
    QUARANTINED,
    STATES,
    TieringController,
)
from repro.tiering.receipts import ReceiptBook, sign_receipt, verify_receipt

__all__ = [
    "TIERING_MODES", "TieringPolicy", "active_policy", "resolve_tiers",
    "set_active_policy",
    "COLD", "PROFILING", "PROMOTING", "PROMOTED", "DEMOTED", "QUARANTINED",
    "STATES", "TieringController",
    "ReceiptBook", "sign_receipt", "verify_receipt",
]

"""The tiering policy: every promotion knob in one audited place.

Before this module the fast paths were steered by scattered switches:
``FUNTAL_TAL_JIT_THRESHOLD`` and ``FUNTAL_TAL_PROMOTE`` read deep inside
:mod:`repro.tal.fast`, ``funtal top --promote-threshold`` hand-carried
profiler output back into the fast tier, and ``tiers=`` tuples were
threaded by hand through :mod:`repro.jit.compiler`,
:mod:`repro.compile.pipeline`, and :mod:`repro.serve.executor`.

:class:`TieringPolicy` replaces all of that.  Precedence is
``env < config < cli`` (:meth:`TieringPolicy.resolve`); the old
environment spellings keep working as deprecated aliases that raise a
:class:`DeprecationWarning`.  Code that used to take a ``tiers=``
keyword now defaults it to ``None`` and calls :func:`resolve_tiers`,
so tier selection has exactly one owner.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, fields, replace
from typing import Any, ClassVar, Dict, Mapping, Optional, Tuple

from repro.compile.pipeline import ALL_TIERS, TIER_ARITH

#: Recognized ``--tiering`` / ``FUNTAL_TIERING`` modes.  ``off`` keeps
#: historical behavior (nothing promotes unless asked explicitly),
#: ``auto`` promotes digests the profiler proves hot, ``aggressive``
#: divides the promotion threshold by ten and turns every compile tier
#: on for JIT rewriting.
TIERING_MODES: Tuple[str, ...] = ("off", "auto", "aggressive")

_TRUE = ("1", "true", "yes", "on")


def _csv(raw: str) -> Tuple[str, ...]:
    return tuple(x.strip() for x in raw.split(",") if x.strip())


@dataclass(frozen=True)
class TieringPolicy:
    """Thresholds, hysteresis, and budgets for adaptive tiering.

    Frozen so a policy handed to a :class:`~repro.serve.pool.WorkerPool`
    cannot drift under it; derive variants with
    :func:`dataclasses.replace` / :meth:`with_overrides`.
    """

    #: One of :data:`TIERING_MODES`.
    mode: str = "off"
    #: Cumulative interpreted steps a digest must accrue before it is
    #: scheduled for promotion (``aggressive`` divides this by 10).
    promote_threshold: int = 50_000
    #: Per-block hot counter consulted by the fast TAL tier's template
    #: JIT (was ``FUNTAL_TAL_JIT_THRESHOLD``).
    tal_jit_threshold: int = 16
    #: Digests pre-promoted at startup (was ``FUNTAL_TAL_PROMOTE``).
    tal_promote: Tuple[str, ...] = ()
    #: Fuel for per-artifact translation validation trials.
    validate_fuel: int = 30_000
    #: Seed for validation trials (recorded in receipts).
    validate_seed: int = 0
    #: Root directory for the receipt/artifact store; ``None`` uses
    #: :func:`repro.link.store.default_store_root`.
    store: Optional[str] = None
    #: HMAC key for receipt signing.  Receipts are a trust cache, not a
    #: security boundary -- the key keeps honest processes from
    #: mistaking a truncated or hand-edited file for a proof.
    key: str = "funtal-tiering"
    #: Maximum background promotions in flight per controller.
    max_inflight_promotions: int = 2
    #: Failed promotions tolerated before the digest is demoted for
    #: good (hysteresis: below this it returns to ``profiling``).
    demote_after: int = 1

    def __post_init__(self) -> None:
        if self.mode not in TIERING_MODES:
            raise ValueError(
                f"tiering mode must be one of {TIERING_MODES}, "
                f"got {self.mode!r}")
        if self.promote_threshold < 1:
            raise ValueError("promote_threshold must be >= 1")
        if self.tal_jit_threshold < 1:
            raise ValueError("tal_jit_threshold must be >= 1")
        if self.max_inflight_promotions < 1:
            raise ValueError("max_inflight_promotions must be >= 1")
        if self.demote_after < 1:
            raise ValueError("demote_after must be >= 1")

    # -- derived knobs -------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    def effective_threshold(self) -> int:
        """Promotion threshold after mode hysteresis."""
        if self.mode == "aggressive":
            return max(1, self.promote_threshold // 10)
        return self.promote_threshold

    def jit_tiers(self) -> Tuple[str, ...]:
        """Compile tiers the inline JIT rewriter may use."""
        return ALL_TIERS if self.mode == "aggressive" else (TIER_ARITH,)

    # -- construction --------------------------------------------------

    #: env var -> (field, parser).  The audited source of truth for the
    #: environment surface; tests iterate it.
    ENV_FIELDS: ClassVar[Mapping[str, Tuple[str, Any]]] = {
        "FUNTAL_TIERING": ("mode", str),
        "FUNTAL_TIERING_THRESHOLD": ("promote_threshold", int),
        "FUNTAL_TIERING_TAL_JIT_THRESHOLD": ("tal_jit_threshold", int),
        "FUNTAL_TIERING_PROMOTE": ("tal_promote", _csv),
        "FUNTAL_TIERING_VALIDATE_FUEL": ("validate_fuel", int),
        "FUNTAL_TIERING_STORE": ("store", str),
        "FUNTAL_TIERING_KEY": ("key", str),
    }

    #: old spelling -> replacement env var.  Still honored, with a
    #: DeprecationWarning; the new spelling wins when both are set.
    DEPRECATED_ENV: ClassVar[Mapping[str, str]] = {
        "FUNTAL_TAL_JIT_THRESHOLD": "FUNTAL_TIERING_TAL_JIT_THRESHOLD",
        "FUNTAL_TAL_PROMOTE": "FUNTAL_TIERING_PROMOTE",
    }

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None,
                 ) -> "TieringPolicy":
        env = os.environ if environ is None else environ
        values: Dict[str, Any] = {}
        for old, new in cls.DEPRECATED_ENV.items():
            raw = env.get(old)
            if raw is None:
                continue
            warnings.warn(
                f"{old} is deprecated; set {new} (or configure a "
                f"TieringPolicy) instead", DeprecationWarning,
                stacklevel=2)
            target, parse = cls.ENV_FIELDS[new]
            values[target] = parse(raw)
        for var, (target, parse) in cls.ENV_FIELDS.items():
            raw = env.get(var)
            if raw is None:
                continue
            try:
                values[target] = parse(raw)
            except ValueError as err:
                raise ValueError(f"bad {var}={raw!r}: {err}") from None
        return cls(**values)

    @classmethod
    def resolve(cls, environ: Optional[Mapping[str, str]] = None,
                config: Optional[Mapping[str, Any]] = None,
                cli: Optional[Mapping[str, Any]] = None) -> "TieringPolicy":
        """Build a policy with documented precedence: env < config < cli.

        ``config`` and ``cli`` map field names to overrides; ``None``
        values are ignored so callers can pass argparse output as-is.
        """
        policy = cls.from_env(environ)
        for layer in (config, cli):
            if not layer:
                continue
            overrides = {k: v for k, v in layer.items() if v is not None}
            if overrides:
                policy = replace(policy, **overrides)
        return policy

    def with_overrides(self, **overrides: Any) -> "TieringPolicy":
        return replace(self, **{k: v for k, v in overrides.items()
                                if v is not None})

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = list(value) if isinstance(value, tuple) else value
        return out


# -- process-wide active policy ---------------------------------------

_ACTIVE: Optional[TieringPolicy] = None


def set_active_policy(policy: Optional[TieringPolicy]) -> None:
    """Install ``policy`` process-wide; ``None`` reverts to env-derived."""
    global _ACTIVE
    _ACTIVE = policy


def active_policy() -> TieringPolicy:
    """The policy in force: the installed one, else freshly env-derived.

    Deliberately *not* cached when env-derived so tests (and the fast
    tier's ``set_jit_threshold(None)`` re-read contract) observe
    environment changes; ``warnings`` deduplication keeps the
    deprecated-alias warning from repeating.
    """
    if _ACTIVE is not None:
        return _ACTIVE
    return TieringPolicy.from_env()


def resolve_tiers(requested: Any = None, context: str = "compile",
                  policy: Optional[TieringPolicy] = None,
                  ) -> Tuple[str, ...]:
    """Resolve which compile tiers a call site may use.

    ``requested`` is an explicit ask (a tier name or tuple of them,
    e.g. from ``--tier``) and always wins.  Otherwise the active
    policy decides: ``jit`` context keeps the historical arith-only
    envelope unless the mode is ``aggressive``; ``compile`` and
    ``promote`` contexts get every tier.
    """
    if requested is not None:
        if isinstance(requested, str):
            return (requested,)
        return tuple(requested)
    pol = policy if policy is not None else active_policy()
    if context == "jit":
        return pol.jit_tiers()
    return ALL_TIERS

"""Pool-side tiering glue: observe results, schedule promotions,
stamp promoted dispatches.

The coordinator sits between the :class:`~repro.serve.pool.WorkerPool`
result path and the :class:`~repro.tiering.controller.TieringController`:

* :meth:`observe` is called by the pool as each result finishes.  It
  credits interpreted steps to the job's digest and, when the
  controller says a digest crossed the threshold, submits a background
  ``promote`` job (non-blocking: a full queue aborts the attempt
  rather than stalling foreground traffic).  A promoted run that came
  back *degraded* -- the differential safety net fell back to the
  reference interpreter -- is treated as observed divergence and
  quarantines the digest.
* :meth:`dispatch_payload` is called at admission: a promoted digest's
  receipt payload rides the job's wire options so the worker seeds its
  fast tier before running.

The coordinator never raises into the pool (the pool wraps calls), and
never blocks: all controller operations are lock-bounded in-memory
updates.
"""

from __future__ import annotations

import threading
import weakref
from typing import Any, Callable, Dict, Optional

from repro.errors import OverloadError
from repro.obs import OBS
from repro.tiering.controller import TieringController
from repro.tiering.policy import TieringPolicy
from repro.tiering.promote import program_digest

#: Job-id prefix for coordinator-scheduled background work; the
#: coordinator ignores results carrying it (promotions are observed via
#: their ticket callback, not the foreground path).
PROMOTE_ID_PREFIX = "tiering:promote:"

_LAST: Optional["weakref.ReferenceType[TieringCoordinator]"] = None


def last_coordinator() -> Optional["TieringCoordinator"]:
    """Most recently constructed live coordinator (``funtal stats``)."""
    ref = _LAST
    return ref() if ref is not None else None


class TieringCoordinator:
    def __init__(self, policy: TieringPolicy,
                 submit: Callable[[Any], Any]) -> None:
        global _LAST
        self.policy = policy
        self.controller = TieringController(policy)
        self._submit = submit
        self._lock = threading.Lock()
        # digest -> receipt payload, stashed from completed promotions
        # so admission can stamp it onto the wire without store I/O.
        self._payloads: Dict[str, Dict[str, Any]] = {}
        _LAST = weakref.ref(self)

    # -- admission path ------------------------------------------------

    def dispatch_payload(self, job) -> Optional[Dict[str, Any]]:
        """Receipt payload to ride a promoted job's options, or None."""
        if not self.policy.enabled or job.kind not in ("run", "resume"):
            return None
        if job.id.startswith(PROMOTE_ID_PREFIX) or job.options.degraded:
            return None
        digest = program_digest(job.source, job.example)
        if not self.controller.is_promoted(digest):
            return None
        with self._lock:
            payload = self._payloads.get(digest)
        if payload is None:
            return None
        if OBS.enabled:
            OBS.metrics.inc("tiering.dispatch.promoted")
        return payload

    # -- result path ---------------------------------------------------

    def observe(self, job, result, promoted: bool = False) -> None:
        """Account a finished job; may schedule a background promotion."""
        if job.kind != "run" or job.id.startswith(PROMOTE_ID_PREFIX):
            return
        digest = program_digest(job.source, job.example)
        if promoted and (result.output or {}).get("degraded"):
            # The safety net already served the reference answer; the
            # digest's fast tier is not to be trusted again.
            detail = ((result.output or {}).get("jit") or {}).get("fault")
            self._drop_payload(digest)
            self.controller.divergence(
                digest, detail or "promoted run degraded to reference")
            return
        if result.status != "ok":
            return
        steps = (result.output or {}).get("steps")
        if not steps:
            return
        if self.controller.record_steps(digest, int(steps)):
            self._schedule(job, digest)

    def _drop_payload(self, digest: str) -> None:
        with self._lock:
            self._payloads.pop(digest, None)

    def _schedule(self, job, digest: str) -> None:
        """Submit the background promote job (never blocks)."""
        from repro.serve.protocol import Job, JobOptions

        options = JobOptions(
            fuel=job.options.fuel,
            no_cache=True,
            store=self.policy.store,
            # Chaos drills must reach promotion work too, or the drill
            # proves nothing about the promotion path.
            chaos_rate=job.options.chaos_rate,
            chaos_seed=job.options.chaos_seed,
            chaos_seams=job.options.chaos_seams,
        )
        promote = Job(kind="promote", id=f"{PROMOTE_ID_PREFIX}{digest}",
                      source=job.source, example=job.example,
                      options=options)
        try:
            ticket = self._submit(promote)
        except OverloadError as err:
            self.controller.promotion_aborted(digest, str(err))
            return
        ticket.add_done_callback(
            lambda result, d=digest: self._on_promoted(d, result))

    def _on_promoted(self, digest: str, result) -> None:
        if result.status == "ok":
            receipt = (result.output or {}).get("receipt") or {}
            with self._lock:
                self._payloads[digest] = receipt
            cached = (result.output or {}).get("receipt_cached")
            self.controller.promotion_succeeded(
                digest, "receipt reused" if cached else "receipt earned")
        elif result.error_type in ("FTTypeError", "CompileError",
                                   "FunTALError"):
            # Refused at a semantic gate: typecheck failure, refuted
            # translation validation, or an observed ref/fast
            # divergence (promote raises bare FunTALError for those).
            # Quarantine, do not retry.
            self.controller.divergence(
                digest, f"promotion refused: {result.error}")
        else:
            self.controller.promotion_failed(
                digest, result.error or result.status)

    # -- inspection ----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            payloads = len(self._payloads)
        return {
            "mode": self.policy.mode,
            "threshold": self.policy.effective_threshold(),
            "states": self.controller.counts(),
            "receipts_held": payloads,
        }

    def snapshot(self) -> Dict[str, Any]:
        return self.controller.snapshot()

"""Per-digest tiering state machine.

Every program the serve tier runs is identified by a content digest
(:func:`repro.tiering.promote.program_digest`).  The controller tracks
one record per digest through::

    cold -> profiling -> promoting -> promoted
                 ^            |            |
                 |  (retry)   v            v
                 +-------- demoted    quarantined

Transitions are driven from the pool's result path
(:meth:`TieringController.record_steps` decides when accrued
interpreted steps justify a background promotion) and from promotion
outcomes.  ``quarantined`` is terminal and reserved for semantic
trouble -- a refused typecheck or an observed runtime divergence;
``demoted`` is the hysteresis bucket for operational failures (fault
injection, resource exhaustion during validation) after
``policy.demote_after`` strikes.  Everything is in-memory per pool and
thread-safe; the durable cross-process facts live in the receipt store.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs import OBS
from repro.tiering.policy import TieringPolicy, active_policy

COLD = "cold"
PROFILING = "profiling"
PROMOTING = "promoting"
PROMOTED = "promoted"
DEMOTED = "demoted"
QUARANTINED = "quarantined"

STATES = (COLD, PROFILING, PROMOTING, PROMOTED, DEMOTED, QUARANTINED)

#: States a digest can never leave (without an operator reset).
_TERMINAL = (DEMOTED, QUARANTINED)


@dataclass
class DigestRecord:
    """Mutable per-digest bookkeeping (guard with the controller lock)."""

    digest: str
    state: str = COLD
    steps: int = 0
    runs: int = 0
    failures: int = 0
    reason: str = ""
    history: List[Dict[str, Any]] = field(default_factory=list)

    def transition(self, state: str, event: str, detail: str = "") -> None:
        self.state = state
        self.history.append({
            "event": event,
            "state": state,
            "detail": detail,
            "at": time.time(),
        })

    def to_json(self) -> Dict[str, Any]:
        return {
            "digest": self.digest,
            "state": self.state,
            "steps": self.steps,
            "runs": self.runs,
            "failures": self.failures,
            "reason": self.reason,
            "history": list(self.history),
        }


class TieringController:
    """Thread-safe promotion state machine over content digests."""

    def __init__(self, policy: Optional[TieringPolicy] = None) -> None:
        self.policy = policy if policy is not None else active_policy()
        self._lock = threading.Lock()
        self._records: Dict[str, DigestRecord] = {}

    # -- internals -----------------------------------------------------

    def _rec(self, digest: str) -> DigestRecord:
        rec = self._records.get(digest)
        if rec is None:
            rec = self._records[digest] = DigestRecord(digest)
        return rec

    def _inc(self, name: str) -> None:
        if OBS.enabled:
            OBS.metrics.inc(name)

    def _gauge_promoted(self) -> None:
        if OBS.enabled:
            count = sum(1 for r in self._records.values()
                        if r.state == PROMOTED)
            OBS.metrics.set_gauge("tiering.promoted.count", count)

    # -- the hot path --------------------------------------------------

    def record_steps(self, digest: str, steps: int) -> bool:
        """Credit an interpreted run; True when promotion should start.

        The caller that receives ``True`` owns scheduling the actual
        promotion job (and must call :meth:`promotion_aborted` if it
        cannot -- e.g. the queue is full -- so the digest does not wedge
        in ``promoting``).
        """
        with self._lock:
            rec = self._rec(digest)
            rec.runs += 1
            rec.steps += int(steps)
            if rec.state == COLD:
                rec.transition(PROFILING, "first-run")
            if rec.state != PROFILING or not self.policy.enabled:
                return False
            if rec.steps < self.policy.effective_threshold():
                return False
            inflight = sum(1 for r in self._records.values()
                           if r.state == PROMOTING)
            if inflight >= self.policy.max_inflight_promotions:
                self._inc("tiering.promote.deferred")
                return False
            rec.transition(PROMOTING, "hot",
                           f"{rec.steps} steps over {rec.runs} runs")
            self._inc("tiering.promote.scheduled")
            return True

    # -- promotion outcomes --------------------------------------------

    def promotion_succeeded(self, digest: str,
                            detail: str = "") -> None:
        with self._lock:
            rec = self._rec(digest)
            if rec.state in _TERMINAL:
                return
            rec.transition(PROMOTED, "promoted", detail)
            self._inc("tiering.promote.completed")
            self._gauge_promoted()

    def promotion_failed(self, digest: str, reason: str) -> None:
        """Operational failure (fault, timeout, exhausted validation)."""
        with self._lock:
            rec = self._rec(digest)
            if rec.state in _TERMINAL:
                return
            rec.failures += 1
            rec.reason = reason
            self._inc("tiering.promote.failed")
            if rec.failures >= self.policy.demote_after:
                rec.transition(DEMOTED, "demoted", reason)
                self._inc("tiering.demoted")
            else:
                rec.steps = 0
                rec.transition(PROFILING, "retry", reason)
            self._gauge_promoted()

    def promotion_aborted(self, digest: str, reason: str = "") -> None:
        """Scheduling fell through (queue full / pool closing): no strike."""
        with self._lock:
            rec = self._rec(digest)
            if rec.state != PROMOTING:
                return
            rec.transition(PROFILING, "aborted", reason)
            self._inc("tiering.promote.aborted")

    def divergence(self, digest: str, reason: str) -> None:
        """Semantic trouble: refuse the digest forever."""
        with self._lock:
            rec = self._rec(digest)
            if rec.state == QUARANTINED:
                return
            rec.reason = reason
            rec.transition(QUARANTINED, "quarantined", reason)
            self._inc("tiering.quarantined")
            self._gauge_promoted()

    def demote(self, digest: str, reason: str) -> None:
        """Operator-forced demotion (e.g. ``funtal tiers`` tooling)."""
        with self._lock:
            rec = self._rec(digest)
            rec.reason = reason
            rec.transition(DEMOTED, "demoted", reason)
            self._inc("tiering.demoted")
            self._gauge_promoted()

    # -- queries -------------------------------------------------------

    def state(self, digest: str) -> str:
        with self._lock:
            rec = self._records.get(digest)
            return rec.state if rec is not None else COLD

    def is_promoted(self, digest: str) -> bool:
        return self.state(digest) == PROMOTED

    def counts(self) -> Dict[str, int]:
        with self._lock:
            out = {state: 0 for state in STATES}
            for rec in self._records.values():
                out[rec.state] += 1
            return out

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "policy": self.policy.to_dict(),
                "digests": {d: r.to_json()
                            for d, r in sorted(self._records.items())},
            }

    # -- persistence (``funtal tiers --state``) ------------------------

    def save(self, path: str) -> None:
        payload = json.dumps(self.snapshot(), indent=2, sort_keys=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")

    @classmethod
    def load(cls, path: str,
             policy: Optional[TieringPolicy] = None) -> "TieringController":
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        if policy is None:
            pol_fields = dict(payload.get("policy") or {})
            if "tal_promote" in pol_fields:
                pol_fields["tal_promote"] = tuple(pol_fields["tal_promote"])
            policy = TieringPolicy(**pol_fields)
        ctl = cls(policy)
        for digest, rec in (payload.get("digests") or {}).items():
            ctl._records[digest] = DigestRecord(
                digest=digest,
                state=rec.get("state", COLD),
                steps=int(rec.get("steps", 0)),
                runs=int(rec.get("runs", 0)),
                failures=int(rec.get("failures", 0)),
                reason=rec.get("reason", ""),
                history=list(rec.get("history") or []),
            )
        return ctl

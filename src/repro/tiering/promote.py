"""Worker-side promotion: earn (or reuse) a signed tier receipt.

A ``promote`` job is scheduled by the pool's
:class:`~repro.tiering.coordinator.TieringCoordinator` when a digest
crosses the policy threshold.  It runs in a serve worker like any
other job -- promotion work never blocks foreground traffic, it just
competes for worker slots at queue discipline.

The promotion pipeline for a digest:

1. **Receipt lookup** -- a verified receipt in the store means some
   process already paid for validation; reuse it
   (``tiering.validate.receipt_hit``).
2. **Typecheck gate** -- ``check_ft_expr`` / ``check_ft_component``.
   The four :mod:`repro.adversarial` components die here with
   :class:`~repro.errors.FTTypeError`, which the coordinator maps to
   ``quarantined``: code that does not typecheck is never promoted,
   full stop.
3. **Compile + translation validation** (expressions inside a compiler
   tier): ``compile_term`` at full tiers, artifact stored, and
   :func:`repro.link.build.cached_validation` -- the PR 7 amortization,
   counted as ``tiering.validate.performed`` when actually run.
4. **Profiled differential trial** -- the program runs once on the
   reference TAL engine with the profiler attached (harvesting the
   runtime T-block digests the template JIT keys on) and once on the
   fast engine; answers and step counts must agree exactly.  This is
   the PR 3 safety-net stance applied at promotion time.
5. **Receipt write** -- the signed payload future workers trust.

:func:`apply_promotion` is the cheap half: given a receipt payload it
seeds the fast tier's promoted-digest set and JIT threshold in the
current process.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import FunTALError
from repro.obs import OBS
from repro.obs.profile import PROFILER, content_hash
from repro.tiering.policy import TieringPolicy, active_policy, resolve_tiers
from repro.tiering.receipts import ReceiptBook


def program_digest(source: Optional[str] = None,
                   example: Optional[str] = None) -> str:
    """Content digest of a serve job's program text.

    Computed from the job fields alone (no parsing) so the pool side
    and the worker side agree without sharing state.
    """
    ident = f"example:{example}" if example is not None else (source or "")
    return content_hash(ident, "job")


def _profiled_reference_run(node: Any, is_component: bool,
                            fuel: Optional[int]
                            ) -> Tuple[str, int, List[str]]:
    """Run once on the reference TAL engine with the profiler attached.

    Returns ``(answer, steps, t_block_digests)``.  The digests are the
    profiler's runtime keys -- the same ``content_hash(block, "t")``
    the fast tier's template JIT compares against, renamed heap and
    all, so a receipt earned here promotes exactly the blocks that
    will run.
    """
    from repro.ft.machine import evaluate_ft, run_ft_component

    was_enabled = PROFILER.enabled
    PROFILER.reset()
    PROFILER.enable()
    try:
        if is_component:
            halted, machine = run_ft_component(node, fuel=fuel,
                                               tal_engine="ref")
            answer = str(halted.word)
        else:
            value, machine = evaluate_ft(node, fuel=fuel, tal_engine="ref")
            answer = str(value)
        snap = PROFILER.snapshot()
    finally:
        PROFILER.disable()
        PROFILER.reset()
        if was_enabled:
            PROFILER.enable()
    return answer, machine.steps, sorted(snap.promote(1, kinds=("t",)))


def _fast_run(node: Any, is_component: bool,
              fuel: Optional[int]) -> Tuple[str, int]:
    from repro.ft.machine import evaluate_ft, run_ft_component

    if is_component:
        halted, machine = run_ft_component(node, fuel=fuel,
                                           tal_engine="fast")
        return str(halted.word), machine.steps
    value, machine = evaluate_ft(node, fuel=fuel, tal_engine="fast")
    return str(value), machine.steps


def _compile_and_validate(node: Any, store, policy: TieringPolicy,
                          ) -> Tuple[Optional[str], Optional[str]]:
    """Compile an eligible expression, store the artifact, validate.

    Returns ``(compile_tier, artifact_digest)`` -- ``(None, None)``
    when the expression is outside every compiler tier (hand-written
    FT code still gets the differential trial + typecheck gate).
    Raises :class:`FunTALError` when translation validation refutes
    the compile, which the coordinator treats as semantic trouble.
    """
    from repro.compile.pipeline import compile_term, eligible_tier
    from repro.link import ComponentInterface, component_digest
    from repro.link.build import StoredComponent, cached_validation

    tiers = resolve_tiers(None, "promote", policy)
    if eligible_tier(node, None, tiers) is None:
        return None, None
    result = compile_term(node, None, tiers)
    digest = component_digest(node, result.free)
    iface = ComponentInterface(name="<tiering>", ty=result.ty,
                               imports=result.free, digest=digest,
                               tier=result.tier)
    store.put(digest, StoredComponent(iface, result.wrapped),
              meta={"tier": result.tier, "type": str(result.ty)})
    report, was_cached = cached_validation(
        store, digest, result,
        fuel=policy.validate_fuel, seed=policy.validate_seed)
    if not report.get("ok"):
        raise FunTALError(
            f"translation validation refuted tier {result.tier}: "
            f"{report.get('failure')}")
    if not was_cached and OBS.enabled:
        OBS.metrics.inc("tiering.validate.performed")
    return result.tier, digest


def run_promotion(job) -> Dict[str, Any]:
    """Execute a ``promote`` job; returns the receipt envelope.

    Output shape: ``{"digest", "receipt", "receipt_cached"}`` --
    ``receipt_cached`` is True when a verified receipt already covered
    the digest and no validation work ran.
    """
    from repro.link.store import ArtifactStore
    from repro.serve.executor import _resolve_program

    policy = active_policy()
    digest = program_digest(job.source, job.example)
    store = ArtifactStore(job.options.store or policy.store)
    book = ReceiptBook(store, policy.key)

    with OBS.span("tiering.promote", "tiering", digest=digest):
        cached = book.get(digest)
        if cached is not None:
            return {"digest": digest, "receipt": cached,
                    "receipt_cached": True}

        node, is_component = _resolve_program(job)

        # Gate 1: static typing.  Adversarial components stop here.
        from repro.ft.typecheck import check_ft_component, check_ft_expr
        if is_component:
            from repro.surface.parser import parse_ttype
            from repro.tal.syntax import NIL_STACK, QEnd

            result_ty = parse_ttype(job.options.result_type)
            check_ft_component(node, q=QEnd(result_ty, NIL_STACK))
        else:
            check_ft_expr(node)

        # Gate 2 (expressions in a compiler tier): compile + validate.
        compile_tier = artifact = None
        if not is_component:
            compile_tier, artifact = _compile_and_validate(
                node, store, policy)

        # Gate 3: whole-program differential, ref (profiled) vs fast.
        fuel = job.options.fuel
        ref_answer, ref_steps, t_blocks = _profiled_reference_run(
            node, is_component, fuel)
        fast_answer, fast_steps = _fast_run(node, is_component, fuel)
        if (ref_answer, ref_steps) != (fast_answer, fast_steps):
            raise FunTALError(
                f"tier divergence for {digest}: ref "
                f"({ref_answer!r}, {ref_steps} steps) != fast "
                f"({fast_answer!r}, {fast_steps} steps)")

        payload = {
            "digest": digest,
            "kind": "component" if is_component else "expression",
            "t_blocks": t_blocks,
            "compile_tier": compile_tier,
            "artifact": artifact,
            "jit_threshold": policy.tal_jit_threshold,
            "validated": {
                "fuel": policy.validate_fuel,
                "seed": policy.validate_seed,
                "trial_steps": ref_steps,
            },
        }
        receipt = book.put(digest, payload)
        if OBS.enabled:
            OBS.metrics.inc("tiering.promote.receipts_earned")
        return {"digest": digest, "receipt": receipt,
                "receipt_cached": False}


def apply_promotion(payload: Optional[Dict[str, Any]]) -> None:
    """Seed this process's fast tier from a receipt payload."""
    if not payload:
        return
    from repro.tal import fast

    t_blocks = payload.get("t_blocks") or ()
    if t_blocks:
        fast.promote_digests(t_blocks)
    threshold = payload.get("jit_threshold")
    if threshold is not None:
        fast.set_jit_threshold(int(threshold))


def guarded_tiers(payload: Optional[Dict[str, Any]]
                  ) -> Optional[Tuple[str, ...]]:
    """Compile tiers a promoted run's inline JIT may use, or None."""
    if payload and payload.get("compile_tier"):
        return resolve_tiers(None, "promote")
    return None

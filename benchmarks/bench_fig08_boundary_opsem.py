"""Fig 8 (boundary operational semantics): the two boundary reductions --
``tauFT(halt ...)`` and ``import ... TFtau v`` -- observed on the machine."""

from repro.f.syntax import BinOp, FInt, IntE
from repro.ft.machine import evaluate_ft, run_ft_component
from repro.ft.syntax import Boundary, Import
from repro.papers_examples.import_example import build as build_import
from repro.tal.syntax import (
    Component, Halt, Mv, NIL_STACK, seq, TInt, WInt,
)


def _halting_component(n: int) -> Component:
    return Component(seq(Mv("r1", WInt(n)), Halt(TInt(), NIL_STACK, "r1")))


def test_fig08_ft_boundary_reduction(record):
    """<M | E[tauFT (halt tau, sigma {r}, .)]>  -->  <M' | E[v]>"""
    value, machine = evaluate_ft(
        BinOp("+", IntE(1), Boundary(FInt(), _halting_component(41))),
        trace=True)
    record(f"fig8 FT-boundary: halt 41 translated, program value {value}")
    assert value == IntE(42)
    assert any(ev.kind == "boundary" for ev in machine.trace)


def test_fig08_import_reduction(record):
    """<M | E[import rd, sigma TFtau v; I]>  -->  <M' | E[mv rd, w; I]>"""
    halted, machine = run_ft_component(build_import(), trace=True)
    record(f"fig8 TF-import: (1 + 1) imported, halts with {halted.word}")
    assert halted.word == WInt(2)
    boundary_events = [ev for ev in machine.trace if ev.kind == "boundary"]
    assert len(boundary_events) == 2  # enter + translated


def test_bench_fig08_boundary_crossing(benchmark):
    program = BinOp("+", Boundary(FInt(), _halting_component(1)),
                    Boundary(FInt(), _halting_component(2)))

    def cross():
        value, _ = evaluate_ft(program)
        return value

    assert benchmark(cross) == IntE(3)


def test_bench_fig08_import_crossing(benchmark):
    comp = build_import()

    def cross():
        halted, _ = run_ft_component(comp)
        return halted

    assert benchmark(cross).word == WInt(2)

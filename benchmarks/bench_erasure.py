"""Ablation: erasure invariance at scale -- T evaluation is independent
of type annotations (the static-discipline property behind Fig 2)."""

from repro.papers_examples.fig3_call_to_call import build as build_fig3
from repro.tal.erasure import erase_types
from repro.tal.machine import run_component

from tests.strategies import random_t_program


def test_erasure_battery(record):
    agreed = 0
    for seed in range(150):
        comp = random_t_program(seed)
        original, _ = run_component(comp)
        erased, _ = run_component(erase_types(comp))
        assert erased.word == original.word
        agreed += 1
    record(f"erasure: {agreed}/150 random programs agree with their "
           "type-erased versions")


def test_bench_typed_execution(benchmark):
    comp = build_fig3()

    def run():
        halted, _ = run_component(comp)
        return halted.word

    benchmark(run)


def test_bench_erased_execution(benchmark):
    comp = erase_types(build_fig3())

    def run():
        halted, _ = run_component(comp)
        return halted.word

    benchmark(run)

"""Fig 6 (FT syntax): the multi-language extensions -- boundaries, import,
protect, stack-modifying lambdas, the out marker -- and their traversals."""

from repro.f.syntax import FInt, FUnit, IntE, subst_expr, Var
from repro.ft.syntax import (
    Boundary, FStackArrow, ft_free_vars, Import, Protect, StackDelta,
    StackLam,
)
from repro.papers_examples.push7 import build as build_push7
from repro.papers_examples.import_example import build_import_instruction
from repro.surface.parser import parse_fexpr
from repro.tal.syntax import (
    Component, Halt, NIL_STACK, QOut, seq, StackTy, TInt,
)


def test_fig06_all_forms(record):
    forms = [
        build_push7(),                      # stack-modifying lambda
        build_import_instruction(),         # import
        Protect((TInt(),), "z"),            # protect
        QOut(),                             # the out marker
        FStackArrow((FInt(),), FUnit(), (), (TInt(),)),
    ]
    record(f"fig6: {len(forms)} multi-language forms constructed")
    for f in forms:
        assert str(f)


def test_fig06_boundary_round_trip(record):
    lam = build_push7()
    assert parse_fexpr(str(lam)) == lam
    record("fig6: stack-modifying lambda round-trips through the parser")


def test_fig06_cross_language_substitution(record):
    comp = Component(seq(
        Import("r1", NIL_STACK, FInt(), Var("x")),
        Halt(TInt(), NIL_STACK, "r1")))
    b = Boundary(FInt(), comp)
    assert ft_free_vars(b) == {"x"}
    closed = subst_expr(b, "x", IntE(7))
    assert ft_free_vars(closed) == set()
    record("fig6: term substitution crosses the boundary into import")


def test_bench_fig06_substitution_through_boundary(benchmark):
    comp = Component(seq(
        Import("r1", NIL_STACK, FInt(), Var("x")),
        Halt(TInt(), NIL_STACK, "r1")))
    b = Boundary(FInt(), comp)

    def substitute():
        return subst_expr(b, "x", IntE(7))

    closed = benchmark(substitute)
    assert ft_free_vars(closed) == set()

"""Fig 12 (JIT control flow): regenerate the cross-language diagram --
the F -> T call into g, the callback into compiled lh, and the shim
returns through lgret/lend."""

from repro.analysis.trace import control_flow_table, format_table
from repro.ft.machine import evaluate_ft
from repro.papers_examples.fig11_jit import build_jit

#: Fig 12's inter-block arrows, in order (halts are the figure's dashed
#: transitions back into F).
FIG12_CONTROL = [
    ("halt", ""),         # the outer boundary delivers the pointer to l
    ("call", "l"),        # F applies compiled f
    ("call", "lam"),      # l calls back into interpreted g (wrapped)
    ("halt", ""),         # g's wrapper reads its argument off the stack
    ("call", "lh"),       # g applies compiled h to 1
    ("ret", "lend"),      # h returns into the callback's halt shim
    ("halt", ""),         # ... which crosses back into F with 2
    ("ret", "lgret"),     # g's wrapper returns through the shim block
    ("ret", "lend"),      # ... and l's continuation unwinds
    ("halt", ""),         # the final result 2 reaches F
]


def _rows():
    _, machine = evaluate_ft(build_jit(), trace=True)
    return control_flow_table(machine.trace,
                              kinds=("call", "ret", "jmp", "halt"))


def test_fig12_arrow_sequence(record):
    rows = _rows()
    record(format_table(rows, title="fig 12 control flow"))
    arrows = [(r.kind, r.target) for r in rows]
    assert arrows == FIG12_CONTROL


def test_fig12_callback_argument(record):
    rows = _rows()
    # when g's wrapper calls lh, the argument 1 is on top of the stack
    call_lh = next(r for r in rows if r.target == "lh")
    assert call_lh.stack[0] == "1"
    record("fig12: the callback passes 1 to compiled h on the stack")


def test_fig12_result_flows_back(record):
    rows = _rows()
    # once lh has computed 1 * 2, every unwinding transfer carries 2 in r1
    after_lh = rows[5:]
    assert all(dict(r.regs).get("r1") == "2" for r in after_lh)
    record("fig12: the result 2 flows back through every return")


def test_bench_fig12_trace(benchmark):
    def regenerate():
        return _rows()

    rows = benchmark(regenerate)
    assert [(r.kind, r.target) for r in rows] == FIG12_CONTROL

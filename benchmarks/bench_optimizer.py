"""Ablation/extension: the peephole optimizer (the constructive face of
Fig 16's block-structure irrelevance).  Measures code shrink on compiled
functions and re-checks the equivalence obligation after optimizing."""

from repro.equiv.checker import check_equivalence
from repro.f.syntax import App, BinOp, FArrow, FInt, If0, IntE, Lam, Var
from repro.ft.machine import evaluate_ft
from repro.ft.syntax import Boundary
from repro.jit.compiler import compile_function
from repro.tal.optimize import optimize_component

INT_ARROW = FArrow((FInt(),), FInt())


def _sources():
    return [
        ("affine", Lam((("x", FInt()),),
                       BinOp("+", BinOp("*", Var("x"), IntE(2)),
                             IntE(1)))),
        ("poly3", Lam((("x", FInt()),),
                      BinOp("+", BinOp("*",
                                       BinOp("*", Var("x"), Var("x")),
                                       Var("x")),
                            BinOp("*", Var("x"), IntE(-1))))),
        ("branchy", Lam((("x", FInt()),),
                        If0(Var("x"), IntE(9),
                            BinOp("*", Var("x"), Var("x"))))),
    ]


def _instr_count(comp):
    return (len(comp.instrs.instrs)
            + sum(len(h.instrs.instrs) for _, h in comp.heap))


def test_optimizer_shrinks_compiled_code(record):
    for name, source in _sources():
        compiled = compile_function(source)
        comp = compiled.body.fn.comp
        optimized = optimize_component(comp)
        before, after = _instr_count(comp), _instr_count(optimized)
        record(f"optimizer {name}: {before} -> {after} instructions "
               f"({100 * (before - after) // before}% smaller)")
        assert after < before


def test_optimizer_preserves_equivalence(record):
    for name, source in _sources():
        compiled = compile_function(source)
        optimized = Lam(
            compiled.params,
            App(Boundary(INT_ARROW,
                         optimize_component(compiled.body.fn.comp)),
                (Var("x"),)))
        report = check_equivalence(source, optimized, INT_ARROW,
                                   fuel=25_000, max_contexts=8)
        record(f"optimizer {name}: source ~ optimized -- {report}")
        assert report.equivalent


def test_bench_optimizer_pass(benchmark):
    compiled = compile_function(_sources()[1][1])
    comp = compiled.body.fn.comp

    def optimize():
        return optimize_component(comp)

    out = benchmark(optimize)
    assert _instr_count(out) < _instr_count(comp)


def test_bench_optimized_execution(benchmark):
    name, source = _sources()[1]
    compiled = compile_function(source)
    optimized = Lam(
        compiled.params,
        App(Boundary(INT_ARROW,
                     optimize_component(compiled.body.fn.comp)),
            (Var("x"),)))
    program = App(optimized, (IntE(5),))

    def run():
        value, _ = evaluate_ft(program)
        return value

    assert benchmark(run) == IntE(120)

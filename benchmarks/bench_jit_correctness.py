"""Section 6 (JIT formalization), executable: for every move the JIT
makes -- replacing an eligible F lambda with compiled assembly -- the
source and replacement are contextually equivalent, and whole rewritten
programs agree with their sources."""

from repro.equiv.checker import check_equivalence
from repro.f.eval import evaluate
from repro.f.syntax import App, BinOp, FArrow, FInt, If0, IntE, Lam, Var
from repro.ft.machine import evaluate_ft
from repro.jit.compiler import compile_function, is_compilable, jit_rewrite

from tests.strategies import random_f_int_expr

INT_ARROW = FArrow((FInt(),), FInt())


def lam1(body):
    return Lam((("x", FInt()),), body)


CANDIDATES = [
    ("triple", lam1(BinOp("*", Var("x"), IntE(3)))),
    ("clamp", lam1(If0(Var("x"), IntE(0), Var("x")))),
    ("poly", lam1(BinOp("+", BinOp("*", Var("x"), Var("x")),
                        BinOp("*", Var("x"), IntE(-3))))),
    ("piecewise",
     lam1(If0(Var("x"), IntE(1),
              If0(BinOp("-", Var("x"), IntE(2)), IntE(4),
                  BinOp("*", Var("x"), IntE(5)))))),
]


def test_jit_per_function_equivalence(record):
    for name, source in CANDIDATES:
        compiled = compile_function(source)
        blocks = len(compiled.body.fn.comp.heap)
        report = check_equivalence(source, compiled, INT_ARROW,
                                   fuel=25_000)
        record(f"jit {name}: {blocks} block(s) -- {report}")
        assert report.equivalent


def test_jit_whole_program_battery(record):
    agreed = 0
    for seed in range(40):
        body = random_f_int_expr(seed, depth=2)
        prog = App(lam1(body), (IntE(seed % 7 - 3),))
        rewritten = jit_rewrite(prog)
        source_value = evaluate(prog, fuel=200_000)
        jit_value, _ = evaluate_ft(rewritten, fuel=400_000)
        assert jit_value == source_value
        agreed += 1
    record(f"jit: {agreed}/40 rewritten whole programs agree with source")


def test_bench_jit_compile(benchmark):
    source = CANDIDATES[3][1]

    def compile_():
        return compile_function(source)

    compiled = benchmark(compile_)
    assert len(compiled.body.fn.comp.heap) == 5


def test_bench_jit_compiled_execution(benchmark):
    compiled = compile_function(CANDIDATES[2][1])

    def run():
        value, _ = evaluate_ft(App(compiled, (IntE(9),)))
        return value

    assert benchmark(run) == IntE(54)


def test_bench_jit_equivalence_obligation(benchmark):
    source = CANDIDATES[0][1]
    compiled = compile_function(source)

    def check():
        return check_equivalence(source, compiled, INT_ARROW,
                                 fuel=15_000, max_contexts=8)

    assert benchmark(check).equivalent

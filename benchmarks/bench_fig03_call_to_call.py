"""Fig 3 (the call-to-call program): typecheck, execute, and verify the
halt value; benchmark the machine."""

from repro.papers_examples.fig3_call_to_call import build, EXPECTED_RESULT
from repro.tal.machine import run_component
from repro.tal.syntax import TInt, WInt
from repro.tal.typecheck import check_program


def test_fig03_program(record):
    comp = build()
    ty, sigma = check_program(comp, TInt())
    record(f"fig3 component : {ty} ; {sigma}")
    halted, machine = run_component(comp)
    record(f"fig3 halts with {halted.word} in {machine.steps} steps, "
           f"stack depth {machine.memory.depth}")
    assert halted.word == WInt(EXPECTED_RESULT)
    assert machine.memory.depth == 0


def test_bench_fig03_execution(benchmark):
    comp = build()

    def run():
        halted, _ = run_component(comp)
        return halted

    halted = benchmark(run)
    assert halted.word == WInt(EXPECTED_RESULT)

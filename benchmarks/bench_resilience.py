"""Resilience-layer benchmarks: governor overhead, checkpoint costs, and
the chaos drill, written to ``BENCH_resilience.json`` at the repo root
(alongside ``BENCH_obs.json`` / ``BENCH_serve.json``) so CI archives the
resilient-runtime trajectory:

* ``governed_runs`` -- wall time per paper example under the unified
  :class:`~repro.resilience.budget.Budget` governor.  The governor's hot
  path (``consume_fuel``) replaced the bare ``fuel -= 1`` the machines
  used before this layer (PR 2's serving baseline), so these timings ARE
  the governed trajectory to diff against that PR's artifact.
* ``governor_overhead`` -- microbenchmark of ``consume_fuel`` against an
  empty-loop baseline: the per-step cost of governing at all.
* ``checkpoint`` -- snapshot capture / wire-encode / restore / resume
  latency and payload size at a mid-run suspension of ``fact-f``.
* ``chaos`` -- the fixed-seed drill (seeds 0,1,2 over every example):
  asserted zero wrong answers and zero unhandled exceptions.
* ``serve_drill`` -- the serve-fleet storm (``funtal chaos drill
  --serve``): >= 200 mixed jobs against a live worker pool under kills,
  hangs, corrupt envelopes, and store faults.  Gated hard in CI:
  ``jobs_lost`` must be 0 and at least one job must finish via mid-run
  checkpoint recovery on a sibling worker; MTTR quantiles are archived.
"""

import json
import pathlib
import time

import pytest

from repro.errors import FuelExhausted
from repro.ft.machine import FTMachine, evaluate_ft
from repro.papers_examples import example_entries
from repro.resilience.budget import Budget
from repro.resilience.checkpoint import MachineSnapshot

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
_BENCH_PATH = _REPO_ROOT / "BENCH_resilience.json"

_RESULTS = {}

ROUNDS = 5


@pytest.fixture(scope="module", autouse=True)
def write_artifact():
    yield
    if _RESULTS:
        _BENCH_PATH.write_text(
            json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")


def _time(fn, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_governed_example_runs(record):
    rows = {}
    for name, (_, build) in example_entries().items():
        program = build()
        value, machine = evaluate_ft(program)
        rows[name] = {
            "best_s": round(_time(lambda p=program: evaluate_ft(p)), 6),
            "fuel_used": machine.budget.fuel_used,
            "heap_used": machine.budget.heap_used,
            "depth_high_water": machine.budget.depth_high_water,
        }
        record(f"{name}: {rows[name]}")
    _RESULTS["governed_runs"] = rows
    assert all(r["fuel_used"] > 0 for r in rows.values())


def test_governor_hot_path_overhead(record):
    n = 200_000

    def governed():
        budget = Budget(fuel=n + 1)
        for _ in range(n):
            budget.consume_fuel()

    def baseline():
        for _ in range(n):
            pass

    governed_s = _time(governed)
    baseline_s = _time(baseline)
    per_step_ns = (governed_s - baseline_s) / n * 1e9
    _RESULTS["governor_overhead"] = {
        "steps": n,
        "governed_s": round(governed_s, 6),
        "empty_loop_s": round(baseline_s, 6),
        "per_step_ns": round(per_step_ns, 1),
    }
    record(f"consume_fuel: {per_step_ns:.0f} ns/step over empty loop")
    # Generous sanity bound -- the governor must stay a few dict-free
    # int ops, not a metrics call, per step.
    assert per_step_ns < 5_000


def test_checkpoint_costs(record):
    _, build = example_entries()["fact-f"]
    reference, _ = evaluate_ft(build())
    machine = FTMachine(budget=Budget(fuel=20))
    with pytest.raises(FuelExhausted):
        machine.evaluate(build())

    snap = machine.snapshot()
    capture_s = _time(machine.snapshot)
    wire = snap.to_wire()
    encode_s = _time(snap.to_wire)
    restore_s = _time(
        lambda: FTMachine.restore(MachineSnapshot.from_wire(wire)))

    def resume_run():
        revived = FTMachine.restore(MachineSnapshot.from_wire(wire))
        return revived.resume(fuel=1_000_000)

    outcome = resume_run()
    assert str(outcome) == str(reference)
    resume_s = _time(resume_run)
    _RESULTS["checkpoint"] = {
        "payload_bytes": len(snap.payload),
        "capture_s": round(capture_s, 6),
        "wire_encode_s": round(encode_s, 6),
        "restore_s": round(restore_s, 6),
        "restore_and_resume_s": round(resume_s, 6),
    }
    record(f"checkpoint: {_RESULTS['checkpoint']}")


def test_chaos_drill(record, capsys):
    from repro.cli import main

    assert main(["chaos", "--seeds", "0,1,2", "--rate", "0.05",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["failures"] == 0
    _RESULTS["chaos"] = {
        "seeds": payload["seeds"],
        "rate": payload["rate"],
        "trials": len(payload["rows"]),
        "failures": payload["failures"],
        "faults_injected": sum(r["faults"] for r in payload["rows"]),
    }
    record(f"chaos drill: {_RESULTS['chaos']}")


def test_serve_chaos_drill(record):
    """The serve-fleet storm (supervision acceptance gate).

    Seeded corpus of >= 200 mixed jobs -- runs, typechecks, links
    against a chaos-armed artifact store, adversarial components,
    checkpointed runs -- with ~10% of jobs carrying worker kills,
    hangs, corrupt result envelopes, or long stalls.  The invariants:

    * ``jobs_lost == 0`` -- every submitted job resolves terminally;
    * ``recovered >= 1`` -- at least one killed job finished from its
      mid-run checkpoint on a *different* worker (not a cold restart).
    """
    from repro.serve.drill import run_serve_drill

    report = run_serve_drill(seed=0, jobs=200, workers=4, rate=0.1)
    _RESULTS["serve_drill"] = {
        "seed": report["seed"],
        "jobs": report["jobs"],
        "workers": report["workers"],
        "fault_rate": report["fault_rate"],
        "statuses": report["statuses"],
        "jobs_lost": report["lost"],
        "recovered": report["recovered"],
        "degraded": report["degraded"],
        "quarantined_digests": report["quarantine"].get("entries", 0),
        "mttr_ms": {k: round(v, 3) if isinstance(v, float) else v
                    for k, v in report["mttr_ms"].items()},
        "wall_s": report["duration_s"],
    }
    record(f"serve drill: {_RESULTS['serve_drill']}")
    assert report["lost"] == 0, f"lost jobs: {report['lost_ids']}"
    assert report["recovered"] >= 1

"""Fig 1 (T syntax): every syntactic category is constructible, printable,
and parseable; benchmark the construct/print/parse cycle."""

from repro.surface.parser import parse_component, parse_ttype
from repro.papers_examples.fig3_call_to_call import build, cont_type
from repro.tal.syntax import (
    Aop, Call, CodeType, Component, DeltaBind, Fold, Halt, HCode, HTuple,
    Jmp, Loc, Mv, NIL_STACK, Pack, QEnd, QEps, QIdx, QReg, RegFileTy,
    RegOp, Ret, Salloc, seq, Sfree, Sld, Sst, St, StackTy, TBox, TExists,
    TInt, TRec, TRef, TupleTy, TUnit, TVar, TyApp, UnfoldI, Unpack, WInt,
    WLoc, WUnit,
)


def _menagerie():
    """One value of every Fig 1 category."""
    return {
        "value types": [
            TVar("a"), TUnit(), TInt(), TExists("a", TVar("a")),
            TRec("a", TRef((TVar("a"),))), TRef((TInt(),)),
            TBox(TupleTy((TInt(), TUnit()))), cont_type(),
        ],
        "word values": [
            WUnit(), WInt(-3), WLoc(Loc("l")),
            Pack(TInt(), WInt(1), TExists("a", TVar("a"))),
            Fold(TRec("a", TInt()), WInt(2)),
            TyApp(WLoc(Loc("l")), (TInt(), NIL_STACK, QIdx(0))),
        ],
        "markers": [QReg("ra"), QIdx(3), QEps("e"),
                    QEnd(TInt(), NIL_STACK)],
        "instructions": [
            Aop("add", "r1", "r2", WInt(1)), Mv("r1", WUnit()),
            Salloc(2), Sfree(1), Sld("r1", 0), Sst(0, "r1"),
            St("r1", 0, "r2"), Unpack("a", "r1", RegOp("r2")),
            UnfoldI("r1", RegOp("r2")),
        ],
        "terminators": [
            Jmp(WLoc(Loc("l"))),
            Call(WLoc(Loc("l")), NIL_STACK, QEnd(TInt(), NIL_STACK)),
            Ret("ra", "r1"), Halt(TInt(), NIL_STACK, "r1"),
        ],
    }


def test_fig01_all_categories_print_and_types_reparse(record):
    zoo = _menagerie()
    for category, items in zoo.items():
        record(f"fig1 {category}: {len(items)} forms")
        for item in items:
            assert str(item)
    for ty in zoo["value types"]:
        assert parse_ttype(str(ty)) == ty


def test_fig01_component_category(record):
    comp = build()
    assert isinstance(comp, Component)
    assert parse_component(str(comp)) == comp
    record(f"fig1 component: {len(comp.heap)} blocks, "
           f"{len(comp.instrs.instrs) + 1} entry instructions")


def test_bench_construct_print_parse(benchmark):
    def cycle():
        comp = build()
        return parse_component(str(comp))

    result = benchmark(cycle)
    assert isinstance(result, Component)

"""Overhead gate for the observability layer's *disabled* path.

Every machine step in the CEK/subst/T steppers executes guard checks of
the form ``if OBS.enabled:`` and ``if PROFILER.enabled:`` even when
nothing is instrumented.  This benchmark measures that guard cost
against the real per-step cost of the CEK machine and asserts the
disabled-path tax stays <= 5% -- the bound that keeps "observability is
always compiled in" a free design choice.

The measurement is written into ``BENCH_obs.json`` (key
``obs_overhead``) next to the per-benchmark counter trajectories, so CI
archives the ratio alongside the step counts it protects.
"""

import time

from repro.f.cek import CEKEvaluator
from repro.f.syntax import BinOp, IntE
from repro.obs.events import OBS
from repro.obs.profile import PROFILER

#: The gate: disabled-path guards may cost at most this fraction of one
#: machine step.
MAX_OVERHEAD = 0.05

_CHAIN = 20_000          # arithmetic contractions per timed run
_GUARD_ITERS = 2_000_000


def _chain_expr(n: int = _CHAIN):
    e = IntE(1)
    for _ in range(n):
        e = BinOp("+", e, IntE(1))
    return e


def _step_ns() -> float:
    """Best-of-5 per-step wall time of the CEK machine, everything off."""

    def run_once():
        ev = CEKEvaluator(_chain_expr())
        start = time.perf_counter()
        ev.run()
        return time.perf_counter() - start, ev.budget.fuel_used

    run_once()                                   # warm caches/allocator
    best, steps = min(run_once() for _ in range(5))
    return best / steps * 1e9


def _guard_pair_ns() -> float:
    """Cost of one ``OBS.enabled`` + ``PROFILER.enabled`` check pair --
    the guards a single machine step executes on the disabled path --
    with the bare loop cost subtracted out."""
    start = time.perf_counter()
    for _ in range(_GUARD_ITERS):
        pass
    empty = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(_GUARD_ITERS):
        if OBS.enabled:
            raise AssertionError("obs must be disabled for this gate")
        if PROFILER.enabled:
            raise AssertionError("profiler must be disabled for this gate")
    guarded = time.perf_counter() - start
    return max(guarded - empty, 0.0) / _GUARD_ITERS * 1e9


def test_disabled_path_overhead(record, obs_results):
    assert not OBS.enabled and not PROFILER.enabled
    step_ns = _step_ns()
    guard_ns = _guard_pair_ns()
    overhead = guard_ns / step_ns
    obs_results["obs_overhead"] = {
        "step_ns": round(step_ns, 1),
        "guard_pair_ns": round(guard_ns, 2),
        "overhead": round(overhead, 4),
        "max_overhead": MAX_OVERHEAD,
    }
    record(f"obs overhead: step={step_ns:.0f}ns guard-pair="
           f"{guard_ns:.1f}ns -> {overhead:.2%} (gate {MAX_OVERHEAD:.0%})")
    assert overhead <= MAX_OVERHEAD, (
        f"disabled-path obs guards cost {overhead:.2%} of a machine step "
        f"(gate: {MAX_OVERHEAD:.0%})")

"""Fig 2 (T typing rules): reproduce the section-3 judgment table and
benchmark the typechecker over the paper's T programs."""

from repro.papers_examples import fig3_call_to_call, sec3_sequences
from repro.tal.syntax import NIL_STACK, QEnd, StackTy, TInt, TUnit
from repro.tal.typecheck import check_component, check_program


def test_fig02_sequence_table(record):
    """The inline example:  mv r1,42 => r1:int;nil  salloc 1 => ...unit::nil
    sst 0,r1 => ...int::nil"""
    states = sec3_sequences.sequence_example_states()
    expected = [
        ("(start)", ".", "nil"),
        ("mv r1, 42", "r1: int", "nil"),
        ("salloc 1", "r1: int", "unit :: nil"),
        ("sst 0, r1", "r1: int", "int :: nil"),
    ]
    for (label, st), (want_label, want_chi, want_sigma) in zip(states,
                                                               expected):
        record(f"fig2 {label:12s} => {st.chi} ; {st.sigma}")
        assert label == want_label
        assert str(st.chi) == want_chi
        assert str(st.sigma) == want_sigma


def test_fig02_jmp_and_call_examples(record):
    ty, _ = check_component(sec3_sequences.build_jmp_program(),
                            q=QEnd(TUnit(), NIL_STACK))
    record(f"fig2 jmp example types at {ty}")
    ty, _ = check_program(sec3_sequences.build_call_program(), TInt())
    record(f"fig2 call example types at {ty}")


def test_bench_fig02_typechecker(benchmark):
    comp = fig3_call_to_call.build()

    def check():
        return check_program(comp, TInt())

    ty, sigma = benchmark(check)
    assert ty == TInt() and sigma == NIL_STACK


def test_bench_fig02_sequence_states(benchmark):
    states = benchmark(sec3_sequences.sequence_example_states)
    assert len(states) == 4
    assert str(states[-1][1].sigma) == "int :: nil"

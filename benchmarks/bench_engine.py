"""Engine benchmarks: the CEK fast path against the substitution
stepper, written to ``BENCH_engine.json`` at the repo root (alongside
``BENCH_obs.json`` / ``BENCH_serve.json`` / ``BENCH_resilience.json``)
so CI archives the engine trajectory:

* ``deep_factorial`` -- the headline ISSUE acceptance number: wall time
  and steps/second for ``fact 200`` (Fig 17's functional factorial,
  depth 200) on both engines, plus the speedup ratio.  This doubles as
  the CI perf smoke: the test FAILS if the CEK engine is not faster
  than substitution on this workload, so a regression that loses the
  fast path cannot land quietly.
* ``examples`` -- per-paper-example wall time on both engines (mixed
  programs spend much of their time in T, so the ratio here bounds how
  much of each example is pure-F reduction).
* ``type_caches`` -- cold-vs-warm typecheck of the Fig 17 component:
  the second check hits the interning/memo caches of
  :mod:`repro.tal.subst` and :mod:`repro.tal.equality`.

Timings are taken with instrumentation off (the conftest's instrumented
replay handles counter capture for ``BENCH_obs.json``); steps come from
the machine's own counters, which are engine-invariant by the
differential suite (``tests/test_engine_differential.py``).
"""

import json
import pathlib
import time

import pytest

from repro.f.syntax import App, IntE
from repro.ft.machine import FTMachine
from repro.papers_examples import example_entries
from repro.papers_examples.fig17_factorial import build_fact_f
from repro.resilience.budget import Budget
from repro.tal.equality import clear_equality_cache
from repro.tal.subst import clear_subst_caches, subst_cache_stats

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
_BENCH_PATH = _REPO_ROOT / "BENCH_engine.json"

_RESULTS = {}

ROUNDS = 5
FACT_DEPTH = 200
FACT_FUEL = 10_000_000


@pytest.fixture(scope="module", autouse=True)
def write_artifact():
    yield
    if _RESULTS:
        _BENCH_PATH.write_text(
            json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")


def _best(fn, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _run_engine(program, engine):
    machine = FTMachine(budget=Budget(fuel=FACT_FUEL), engine=engine)
    value = machine.evaluate(program)
    return value, machine


def test_deep_factorial_speedup(record):
    program = App(build_fact_f(), (IntE(FACT_DEPTH),))
    rows = {}
    values = {}
    for engine in ("subst", "cek"):
        value, machine = _run_engine(program, engine)
        best = _best(lambda e=engine: _run_engine(program, e))
        values[engine] = (str(value), machine.steps)
        rows[engine] = {
            "best_s": round(best, 6),
            "steps": machine.steps,
            "steps_per_s": round(machine.steps / best),
            "fuel_used": machine.budget.fuel_used,
        }
    assert values["subst"] == values["cek"]
    speedup = rows["subst"]["best_s"] / rows["cek"]["best_s"]
    rows["speedup"] = round(speedup, 2)
    _RESULTS["deep_factorial"] = {"depth": FACT_DEPTH, **rows}
    record(f"fact({FACT_DEPTH}): subst {rows['subst']['steps_per_s']}/s, "
           f"cek {rows['cek']['steps_per_s']}/s, speedup {speedup:.1f}x")
    # The CI perf smoke: losing the fast path fails the build.  The
    # margin is deliberately loose (>1x, not the ~13x measured locally)
    # so shared-runner noise cannot flake the gate.
    assert speedup > 1.0, (
        f"cek engine not faster than subst on deep factorial "
        f"({rows['cek']['best_s']}s vs {rows['subst']['best_s']}s)")


def test_examples_both_engines(record):
    rows = {}
    for name, (_, build) in example_entries().items():
        program = build()
        per_engine = {}
        for engine in ("subst", "cek"):
            per_engine[engine] = round(
                _best(lambda e=engine: _run_engine(program, e)), 6)
        rows[name] = per_engine
        record(f"{name}: {per_engine}")
    _RESULTS["examples"] = rows
    assert rows


def test_typecheck_cache_warmup(record):
    from repro.papers_examples.fig17_factorial import build_fact_t
    from repro.ft.typecheck import check_ft_expr

    program = App(build_fact_t(), (IntE(6),))

    def cold():
        clear_subst_caches()
        clear_equality_cache()
        check_ft_expr(program)

    def warm():
        check_ft_expr(program)

    cold_s = _best(cold)
    warm()                       # populate once before timing warm hits
    warm_s = _best(warm)
    stats = subst_cache_stats()
    _RESULTS["type_caches"] = {
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "warm_speedup": round(cold_s / warm_s, 2) if warm_s else None,
        "subst_cache": stats,
    }
    record(f"typecheck fig17: cold {cold_s * 1e3:.3f}ms, "
           f"warm {warm_s * 1e3:.3f}ms")
    # Warm checks must actually hit the caches (the point of the layer).
    assert any(s["hits"] > 0 for s in stats.values())

"""Ablation: what the return-marker discipline buys (DESIGN.md ablations).

The paper's central type-system addition is the return marker ``q``.  This
battery takes well-typed programs and applies marker-violating mutations;
the typechecker must reject *every* mutant, and (where the mutant is
runnable at all) the machine exhibits the misbehaviour the discipline
prevents.  Each entry documents one rule:

* overwrite the marker register (``mv``/``aop`` guards);
* free the marker's stack slot (``sfree`` guard);
* ``ret`` through a register that is not the marker;
* ``jmp`` to a block with a different marker (intra-component discipline);
* ``call`` with the wrong relocated index (the i + k - j arithmetic);
* ``halt`` under a non-``end`` marker.
"""

import pytest

from repro.errors import FTTypeError
from repro.papers_examples.fig3_call_to_call import build, cont_type
from repro.tal.syntax import (
    Aop, Call, Component, DeltaBind, Halt, HCode, Jmp, KIND_EPS, KIND_ZETA,
    Loc, Mv, NIL_STACK, QEnd, QIdx, QReg, RegFileTy, Ret, Salloc, Sfree,
    Sld, Sst, StackTy, TInt, TyApp, WInt, WLoc, seq,
)
from repro.tal.typecheck import check_program, InstrState, TalTypechecker

ZE = (DeltaBind(KIND_ZETA, "z"), DeltaBind(KIND_EPS, "e"))


def _marker_state():
    cont = cont_type()
    return InstrState(ZE, RegFileTy.of(ra=cont), StackTy((), "z"),
                      QReg("ra"))


MUTANTS = [
    ("overwrite marker register",
     lambda ck: ck.step_instruction(_marker_state(), Mv("ra", WInt(0)))),
    ("arith into marker register",
     lambda ck: ck.step_instruction(
         _marker_state().__class__(
             ZE, RegFileTy.of(ra=cont_type(), r2=TInt()),
             StackTy((), "z"), QReg("ra")),
         Aop("add", "ra", "r2", WInt(1)))),
    ("free the marker slot",
     lambda ck: ck.step_instruction(
         InstrState(ZE, RegFileTy(), StackTy((cont_type(),), "z"),
                    QIdx(0)),
         Sfree(1))),
    ("overwrite the marker slot",
     lambda ck: ck.step_instruction(
         InstrState(ZE, RegFileTy.of(r1=TInt()),
                    StackTy((cont_type(),), "z"), QIdx(0)),
         Sst(0, "r1"))),
    ("ret through a non-marker register",
     lambda ck: ck.check_terminator(
         InstrState(ZE, RegFileTy.of(ra=cont_type(), r2=cont_type(),
                                     r1=TInt()),
                    StackTy((), "z"), QReg("ra")),
         Ret("r2", "r1"))),
    ("halt without an end marker",
     lambda ck: ck.check_terminator(
         InstrState(ZE, RegFileTy.of(ra=cont_type(), r1=TInt()),
                    StackTy((), "z"), QReg("ra")),
         Halt(TInt(), StackTy((), "z"), "r1"))),
]


def test_ablation_every_marker_rule_fires(record):
    checker = TalTypechecker()
    for name, mutate in MUTANTS:
        with pytest.raises(FTTypeError):
            mutate(checker)
        record(f"ablation: {name!r} rejected")


def test_ablation_fig3_call_relocation(record):
    """Mutating fig 3's call relocation index must be rejected."""
    comp = build()
    heap = dict(comp.heap)
    l1 = heap[Loc("l1")]
    bad_term = Call(l1.instrs.term.u, l1.instrs.term.sigma, QIdx(1))
    heap[Loc("l1")] = HCode(l1.delta, l1.chi, l1.sigma, l1.q,
                            seq(*l1.instrs.instrs, bad_term))
    broken = Component(comp.instrs, tuple(heap.items()))
    with pytest.raises(FTTypeError):
        check_program(broken, TInt())
    record("ablation: wrong i + k - j relocation rejected")


def test_ablation_jmp_marker_discipline(record):
    """A jmp to a block whose marker differs is rejected (this is what
    makes jmp *intra*-component)."""
    target = Loc("l")
    block = HCode((), RegFileTy.of(r1=TInt()), NIL_STACK,
                  QEnd(TInt(), NIL_STACK),
                  seq(Halt(TInt(), NIL_STACK, "r1")))
    comp = Component(
        seq(Mv("r1", WInt(1)), Jmp(WLoc(target))), ((target, block),))
    # checked against a *different* end marker
    with pytest.raises(FTTypeError):
        from repro.tal.typecheck import check_component
        from repro.tal.syntax import TUnit

        check_component(comp, q=QEnd(TUnit(), NIL_STACK))
    record("ablation: cross-marker jmp rejected")


def test_bench_ablation_battery(benchmark):
    checker = TalTypechecker()

    def battery():
        rejected = 0
        for _, mutate in MUTANTS:
            try:
                mutate(checker)
            except FTTypeError:
                rejected += 1
        return rejected

    assert benchmark(battery) == len(MUTANTS)

"""Fig 11 (the JIT example): the interpreted source and the mixed program
agree; benchmark both executions."""

from repro.f.eval import evaluate
from repro.f.syntax import IntE
from repro.ft.machine import evaluate_ft
from repro.ft.typecheck import check_ft_expr
from repro.papers_examples.fig11_jit import (
    build_jit, build_source, EXPECTED_RESULT,
)


def test_fig11_agreement(record):
    source_value = evaluate(build_source())
    jit_value, machine = evaluate_ft(build_jit())
    record(f"fig11 source value: {source_value}")
    record(f"fig11 mixed value:  {jit_value} ({machine.steps} steps)")
    assert source_value == jit_value == IntE(EXPECTED_RESULT)


def test_fig11_types(record):
    ty, _ = check_ft_expr(build_jit())
    record(f"fig11 mixed program type: {ty}")
    assert str(ty) == "int"


def test_bench_fig11_source(benchmark):
    program = build_source()
    assert benchmark(lambda: evaluate(program)) == IntE(2)


def test_bench_fig11_jit(benchmark):
    program = build_jit()

    def run():
        value, _ = evaluate_ft(program)
        return value

    assert benchmark(run) == IntE(2)

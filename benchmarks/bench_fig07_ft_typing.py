"""Fig 7 (FT typing): the combined judgment over the paper's mixed
programs, including the import postcondition the figure displays."""

from repro.ft.typecheck import check_ft_expr, FTTypechecker
from repro.papers_examples import (
    fig11_jit, fig16_two_blocks, fig17_factorial, import_example, push7,
)
from repro.tal.syntax import NIL_STACK, RegFileTy, TInt
from repro.tal.typecheck import InstrState


def test_fig07_import_postcondition(record):
    """import r1, nil TF int (1+1) => . ; r1: int ; nil ; end{int; nil}"""
    checker = FTTypechecker()
    st = InstrState((), RegFileTy(), NIL_STACK, import_example.MARKER)
    out = checker.step_instruction(
        st, import_example.build_import_instruction())
    record(f"fig7 import postcondition: {out}")
    assert str(out.chi) == "r1: int"
    assert out.sigma == NIL_STACK
    assert out.q == import_example.MARKER


def test_fig07_paper_program_types(record):
    cases = [
        ("push7", push7.build(), "(int) [; int] -> unit"),
        ("f1", fig16_two_blocks.build_f1(), "(int) -> int"),
        ("factT", fig17_factorial.build_fact_t(), "(int) -> int"),
        ("jit", fig11_jit.build_jit(), "int"),
    ]
    for name, program, expected in cases:
        ty, _ = check_ft_expr(program)
        record(f"fig7 {name}: {ty}")
        assert str(ty) == expected


def test_bench_fig07_mixed_typechecking(benchmark):
    program = fig11_jit.build_jit()

    def check():
        return check_ft_expr(program)

    ty, _ = benchmark(check)
    assert str(ty) == "int"


def test_bench_fig07_stack_lambda_typechecking(benchmark):
    program = push7.build()

    def check():
        return check_ft_expr(program)

    ty, _ = benchmark(check)
    assert str(ty) == "(int) [; int] -> unit"

"""Fig 5 (F syntax): category coverage, evaluation-context behaviour, and
parser/printer throughput on F programs."""

from repro.f.eval import evaluate
from repro.f.syntax import (
    App, BinOp, FArrow, FInt, Fold, FRec, FTupleT, FTVar, FUnit, If0, IntE,
    is_value, Lam, Proj, TupleE, Unfold, UnitE, Var,
)
from repro.papers_examples.fig11_jit import build_source
from repro.surface.parser import parse_fexpr


def test_fig05_all_forms(record):
    mu = FRec("a", FInt())
    forms = [
        Var("x"), UnitE(), IntE(3), BinOp("*", IntE(2), IntE(3)),
        If0(IntE(0), IntE(1), IntE(2)),
        Lam((("x", FInt()),), Var("x")),
        App(Lam((("x", FInt()),), Var("x")), (IntE(1),)),
        Fold(mu, IntE(1)), Unfold(Fold(mu, IntE(1))),
        TupleE((IntE(1), UnitE())), Proj(0, TupleE((IntE(1),))),
    ]
    record(f"fig5: {len(forms)} expression forms constructed")
    values = [f for f in forms if is_value(f)]
    record(f"fig5: {len(values)} of them are values")
    assert len(values) == 5
    for f in forms:
        assert parse_fexpr(str(f)) == f


def test_fig05_left_to_right_cbv(record):
    # (1 + 2) evaluated before (3 * 4) in <_, _>
    e = TupleE((BinOp("+", IntE(1), IntE(2)), BinOp("*", IntE(3), IntE(4))))
    from repro.f.eval import step

    first = step(e)
    assert first == TupleE((IntE(3), BinOp("*", IntE(3), IntE(4))))
    record("fig5: evaluation contexts are left-to-right call-by-value")


def test_bench_fig05_parse_print(benchmark):
    source = str(build_source())

    def round_trip():
        return parse_fexpr(source)

    e = benchmark(round_trip)
    assert str(e) == source


def test_bench_fig05_evaluation(benchmark):
    prog = build_source()

    def run():
        return evaluate(prog)

    assert benchmark(run) == IntE(2)

"""Fig 16 (different numbers of basic blocks): the one-block and two-block
components are contextually indistinguishable; mutations are refuted."""

from repro.equiv.checker import check_equivalence
from repro.equiv.worlds import related_values, World
from repro.f.syntax import App, FInt, IntE, Lam, Var
from repro.ft.syntax import Boundary, Protect
from repro.ft.translate import continuation_type, type_translation
from repro.papers_examples.fig16_two_blocks import ARROW, build_f1, build_f2
from repro.tal.syntax import (
    Aop, Component, DeltaBind, Halt, HCode, Loc, Mv, QReg, RegFileTy, Ret,
    Sfree, Sld, StackTy, TInt, WInt, WLoc, seq,
)


def _mutant():
    """Like f1 but adds 3 -- must be distinguished."""
    label = Loc("lbad")
    zstack = StackTy((), "z")
    cont = continuation_type(TInt(), zstack)
    block = HCode(
        (DeltaBind("zeta", "z"), DeltaBind("eps", "e")),
        RegFileTy.of(ra=cont), StackTy((TInt(),), "z"), QReg("ra"),
        seq(Sld("r1", 0), Aop("add", "r1", "r1", WInt(3)),
            Sfree(1), Ret("ra", "r1")))
    comp = Component(
        seq(Protect((), "z"), Mv("r1", WLoc(label)),
            Halt(type_translation(ARROW), zstack, "r1")),
        ((label, block),))
    return Lam((("x", FInt()),), App(Boundary(ARROW, comp), (Var("x"),)))


def test_fig16_equivalence_confirmed(record):
    report = check_equivalence(build_f1(), build_f2(), ARROW, fuel=30_000)
    record(f"fig16: f1 ~ f2 -- {report}")
    assert report.equivalent
    assert report.trials >= 15


def test_fig16_value_relation(record):
    failure = related_values(World(k=3, fuel=30_000), build_f1(),
                             build_f2(), ARROW)
    record("fig16: related in V[(int)->int] up to k=3"
           if failure is None else f"fig16: {failure}")
    assert failure is None


def test_fig16_mutant_refuted(record):
    report = check_equivalence(build_f1(), _mutant(), ARROW, fuel=30_000)
    record(f"fig16: f1 ~ add-3 mutant -- {report}")
    assert not report.equivalent


def test_bench_fig16_equivalence_check(benchmark):
    f1, f2 = build_f1(), build_f2()

    def check():
        return check_equivalence(f1, f2, ARROW, fuel=20_000,
                                 max_contexts=10)

    report = benchmark(check)
    assert report.equivalent

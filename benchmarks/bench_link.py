"""Separate-compilation benchmarks, written to ``BENCH_link.json``.

Three sections, doubling as the CI gate for :mod:`repro.link`:

* ``incremental`` -- the headline gate: a cold build of a multi-
  component manifest compiles every component; a warm rebuild compiles
  **zero**; editing one component recompiles **exactly one**.  The store
  round-trip times quantify what incrementality buys per component;
* ``link_time`` -- linking cost (interface checks + alpha-renaming +
  substitution) for the three-component program, which must stay well
  below one cold component compile -- otherwise separate compilation
  would be pointless;
* ``differential`` -- the linked program's value equals both the
  interpreted manifest-inlined source and the whole-program
  ``compile_term`` pipeline on the same source.
"""

import json
import pathlib
import sys
import time

import pytest

from repro.f.syntax import App, IntE
from repro.ft.machine import FTMachine
from repro.ft.typecheck import check_ft_expr
from repro.compile.pipeline import clear_compile_cache, compile_term
from repro.link import ArtifactStore, build_and_link, build_manifest, \
    link_components, parse_manifest
from repro.resilience.budget import Budget
from repro.surface.parser import parse_fexpr

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
_BENCH_PATH = _REPO_ROOT / "BENCH_link.json"

_RESULTS = {}

ROUNDS = 5
RUN_FUEL = 10_000_000
_RECURSION_LIMIT = 100_000   # nested F<->T machines need host headroom

MANIFEST = {
    "components": {
        "double": "lam (x: int). (x + x)",
        "quad": "lam (x: int). double (double x)",
        "fact": {"builtin": "fact-t"},
    },
    "main": "quad (fact 3)",
}
#: The same program with the compiled components inlined by hand.
WHOLE_SOURCE = ("(lam (x: int). "
                "((lam (y: int). (y + y)) ((lam (y: int). (y + y)) x)))")
EDITED_QUAD = "lam (x: int). double (double (x + 0))"


@pytest.fixture(scope="module", autouse=True)
def write_artifact():
    yield
    if _RESULTS:
        _BENCH_PATH.write_text(
            json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")


@pytest.fixture(scope="module", autouse=True)
def deep_host_stack():
    old = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old, _RECURSION_LIMIT))
    yield
    sys.setrecursionlimit(old)


def _best(fn, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _manifest(quad=MANIFEST["components"]["quad"]):
    data = {"components": dict(MANIFEST["components"], quad=quad),
            "main": MANIFEST["main"]}
    return parse_manifest(json.dumps(data))


def _run(program):
    machine = FTMachine(budget=Budget(fuel=RUN_FUEL))
    value = machine.evaluate(program)
    return value, machine.budget.fuel_used


def test_incremental_rebuild_gate(record, tmp_path):
    """Cold: all compile.  Warm: none.  One edit: exactly one."""
    store = ArtifactStore(tmp_path / "store")
    clear_compile_cache()            # store effects, not memo effects

    start = time.perf_counter()
    cold = build_manifest(_manifest(), store)
    cold_s = time.perf_counter() - start
    assert sorted(cold.recompiled) == ["double", "fact", "quad"]

    clear_compile_cache()
    start = time.perf_counter()
    warm = build_manifest(_manifest(), store)
    warm_s = time.perf_counter() - start
    assert warm.recompiled == []            # THE gate: zero recompiles
    assert sorted(warm.cached) == ["double", "fact", "quad"]

    clear_compile_cache()
    start = time.perf_counter()
    edited = build_manifest(_manifest(quad=EDITED_QUAD), store)
    edit_s = time.perf_counter() - start
    assert edited.recompiled == ["quad"]    # ... and exactly one on edit
    assert sorted(edited.cached) == ["double", "fact"]

    _RESULTS["incremental"] = {
        "components": len(MANIFEST["components"]),
        "cold_build_s": round(cold_s, 6),
        "warm_build_s": round(warm_s, 6),
        "edit_one_build_s": round(edit_s, 6),
        "cold_recompiled": sorted(cold.recompiled),
        "warm_recompiled": warm.recompiled,
        "edit_recompiled": edited.recompiled,
        "speedup_warm": round(cold_s / max(warm_s, 1e-9), 1),
    }
    record(f"cold {cold_s * 1e3:.2f}ms (3 compiles), "
           f"warm {warm_s * 1e3:.2f}ms (0), "
           f"edit-one {edit_s * 1e3:.2f}ms (1)")


def test_link_time(record, tmp_path):
    store = ArtifactStore(tmp_path / "store")
    report = build_manifest(_manifest(), store)
    units = report.units()
    main = report.main

    link_s = _best(lambda: link_components(units, main))
    clear_compile_cache()
    compile_s = _best(lambda: (clear_compile_cache(),
                               compile_term(parse_fexpr(WHOLE_SOURCE))))
    linked = link_components(units, main)
    _RESULTS["link_time"] = {
        "link_s": round(link_s, 6),
        "whole_compile_s": round(compile_s, 6),
        "labels_renamed": linked.labels_renamed,
    }
    record(f"link {link_s * 1e6:.0f}us vs whole compile "
           f"{compile_s * 1e3:.2f}ms, {linked.labels_renamed} labels")
    # Linking must be cheap relative to compilation, or separate
    # compilation buys nothing.
    assert link_s < compile_s


def test_differential_gate(record, tmp_path):
    """Linked value == interpreted value == whole-program-compiled
    value, and the linked program typechecks closed."""
    store = ArtifactStore(tmp_path / "store")
    _, linked = build_and_link(
        _manifest(), store,
    )
    ty, _ = check_ft_expr(linked.program)
    linked_value, linked_fuel = _run(linked.program)

    # fact 3 = 6; quad doubles twice: 6 * 4 = 24.
    assert str(ty) == "int"
    assert linked_value == IntE(24)

    whole = compile_term(parse_fexpr(WHOLE_SOURCE))
    whole_value, whole_fuel = _run(App(whole.wrapped, (IntE(6),)))
    assert whole_value == IntE(24)

    _RESULTS["differential"] = {
        "type": str(ty),
        "linked_value": str(linked_value),
        "whole_program_value": str(whole_value),
        "linked_fuel": linked_fuel,
        "whole_program_fuel": whole_fuel,
    }
    record(f"linked {linked_value} ({linked_fuel} fuel) == "
           f"whole-program {whole_value} ({whole_fuel} fuel)")

"""Fig 17 (factorial two ways): equal outputs for n >= 0, co-divergence
for n < 0 -- the two cases of the paper's equivalence proof."""

import pytest

from repro.equiv.checker import check_equivalence
from repro.equiv.observation import observe
from repro.f.syntax import App, IntE
from repro.papers_examples.fig17_factorial import (
    ARROW, build_fact_f, build_fact_t, expected,
)


def test_fig17_termination_case(record):
    ff, ft = build_fact_f(), build_fact_t()
    for n in range(0, 9):
        obs_f = observe(App(ff, (IntE(n),)))
        obs_t = observe(App(ft, (IntE(n),)))
        record(f"fig17 n={n}: factF={obs_f} factT={obs_t} "
               f"(reference {expected(n)})")
        assert obs_f.value == obs_t.value == expected(n)


def test_fig17_divergence_case(record):
    ff, ft = build_fact_f(), build_fact_t()
    for n in (-1, -4):
        obs_f = observe(App(ff, (IntE(n),)), fuel=15_000)
        obs_t = observe(App(ft, (IntE(n),)), fuel=15_000)
        record(f"fig17 n={n}: factF={obs_f} factT={obs_t}")
        assert obs_f.kind == obs_t.kind == "diverged"


def test_fig17_full_equivalence_check(record):
    report = check_equivalence(build_fact_f(), build_fact_t(), ARROW,
                               fuel=30_000)
    record(f"fig17: factF ~ factT -- {report}")
    assert report.equivalent


def test_bench_fig17_fact_f(benchmark):
    ff = build_fact_f()

    def run():
        return observe(App(ff, (IntE(8),)))

    assert benchmark(run).value == expected(8)


def test_bench_fig17_fact_t(benchmark):
    ft = build_fact_t()

    def run():
        return observe(App(ft, (IntE(8),)))

    assert benchmark(run).value == expected(8)


def test_bench_fig17_equivalence(benchmark):
    ff, ft = build_fact_f(), build_fact_t()

    def check():
        return check_equivalence(ff, ft, ARROW, fuel=15_000,
                                 max_contexts=8)

    assert benchmark(check).equivalent

"""Whole-F compiler benchmarks, written to ``BENCH_compile.json``.

Three sections, doubling as the CI gate for the compiler:

* ``compile_time`` -- cold pipeline time (typecheck + closure conversion
  + codegen + optimize) and warm (memoized) lookup for the Fig 17
  functional factorial and a higher-order combinator program;
* ``compiled_vs_interpreted`` -- wall time and fuel for the same program
  run interpreted (CEK) and compiled.  The recursive case records the
  *wrapper-accumulation* overhead documented in ``docs/performance.md``:
  each recursion level re-crosses the F/T boundary, so compiled fuel is
  super-linear in depth and no speedup is asserted -- the assertion is
  value agreement.  The non-recursive higher-order case is the fairer
  picture of per-call overhead;
* ``paper_examples`` -- the gate: every closed pure-F paper example must
  compile, typecheck, and pass translation validation.  A regression
  that breaks compilation or validation of a paper example fails CI
  here.
"""

import json
import pathlib
import sys
import time

import pytest

from repro.f.syntax import App, BinOp, FInt, IntE, Lam, Var
from repro.ft.machine import FTMachine
from repro.ft.typecheck import check_ft_expr
from repro.papers_examples import example_entries
from repro.papers_examples.fig17_factorial import build_fact_f
from repro.resilience.budget import Budget
from repro.resilience.safety_net import Quarantine
from repro.compile.pipeline import (
    clear_compile_cache, compile_term, is_general_compilable,
)
from repro.compile.validate import validate_compilation
from repro.stdlib.prelude import compose, twice
from repro.tal.syntax import Component

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
_BENCH_PATH = _REPO_ROOT / "BENCH_compile.json"

_RESULTS = {}

ROUNDS = 5
FACT_N = 6          # compiled factorial fuel grows super-linearly in n
RUN_FUEL = 10_000_000
_RECURSION_LIMIT = 100_000   # nested F<->T machines need host headroom


@pytest.fixture(scope="module", autouse=True)
def write_artifact():
    yield
    if _RESULTS:
        _BENCH_PATH.write_text(
            json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")


@pytest.fixture(scope="module", autouse=True)
def deep_host_stack():
    old = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old, _RECURSION_LIMIT))
    yield
    sys.setrecursionlimit(old)


def _best(fn, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _higher_order_program():
    """twice (twice (compose inc dbl)) 1 -- closures all the way down."""
    inc = Lam((("x", FInt()),), BinOp("+", Var("x"), IntE(1)))
    dbl = Lam((("x", FInt()),), BinOp("*", Var("x"), IntE(2)))
    step = compose(inc, dbl, FInt(), FInt(), FInt())
    return App(twice(twice(step, FInt()), FInt()), (IntE(1),))


def _run(program):
    machine = FTMachine(budget=Budget(fuel=RUN_FUEL))
    value = machine.evaluate(program)
    return value, machine.budget.fuel_used


def test_compile_time(record):
    cases = {
        "fact_f": build_fact_f(),
        "higher_order": _higher_order_program(),
    }
    rows = {}
    for name, term in cases.items():
        def cold(t=term):
            clear_compile_cache()
            compile_term(t)

        cold_s = _best(cold)
        result = compile_term(term)       # leaves the cache warm
        warm_s = _best(lambda t=term: compile_term(t))
        rows[name] = {
            "tier": result.tier,
            "blocks": result.block_count(),
            "cold_s": round(cold_s, 6),
            "warm_s": round(warm_s, 6),
            "defs": 0 if result.clos is None else len(result.clos.defs),
        }
        record(f"{name}: cold {cold_s * 1e3:.2f}ms, "
               f"warm {warm_s * 1e6:.1f}us, {rows[name]['blocks']} blocks")
        # memoization must be orders of magnitude below a real compile
        assert warm_s < cold_s
    _RESULTS["compile_time"] = rows


def test_compiled_vs_interpreted(record):
    cases = {
        "fact_f": App(build_fact_f(), (IntE(FACT_N),)),
        "higher_order": _higher_order_program(),
    }
    rows = {}
    for name, program in cases.items():
        compiled = compile_term(program).wrapped
        int_value, int_fuel = _run(program)
        cmp_value, cmp_fuel = _run(compiled)
        assert cmp_value == int_value, name
        int_s = _best(lambda p=program: _run(p))
        cmp_s = _best(lambda p=compiled: _run(p))
        rows[name] = {
            "value": str(int_value),
            "interpreted_s": round(int_s, 6),
            "compiled_s": round(cmp_s, 6),
            "interpreted_fuel": int_fuel,
            "compiled_fuel": cmp_fuel,
            "fuel_overhead": round(cmp_fuel / max(int_fuel, 1), 1),
        }
        record(f"{name}: interpreted {int_s * 1e3:.2f}ms/{int_fuel} fuel, "
               f"compiled {cmp_s * 1e3:.2f}ms/{cmp_fuel} fuel")
    _RESULTS["compiled_vs_interpreted"] = rows


def test_paper_examples_gate(record):
    """Every closed pure-F paper example compiles and validates."""
    rows = {}
    gated = []
    for name, (_, build) in sorted(example_entries().items()):
        term = build()
        if isinstance(term, Component) or not is_general_compilable(term):
            continue
        gated.append(name)
        start = time.perf_counter()
        result = compile_term(term)
        compile_s = time.perf_counter() - start
        ty, _ = check_ft_expr(result.wrapped)
        assert ty == result.ty, name
        start = time.perf_counter()
        report = validate_compilation(result, quarantine=Quarantine())
        validate_s = time.perf_counter() - start
        assert report.ok, (name, report.failure)
        rows[name] = {
            "tier": result.tier,
            "blocks": result.block_count(),
            "compile_s": round(compile_s, 6),
            "validate_s": round(validate_s, 6),
            "trials": report.trials,
        }
        record(f"{name}: {result.tier} tier, validated in {validate_s:.2f}s")
    # the gate is only meaningful if it actually covers the examples
    assert "fact-f" in gated and "jit-source" in gated
    _RESULTS["paper_examples"] = rows

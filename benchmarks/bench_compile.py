"""Whole-F compiler benchmarks, written to ``BENCH_compile.json``.

Three sections, doubling as the CI gate for the compiler:

* ``compile_time`` -- cold pipeline time (typecheck + closure conversion
  + codegen + optimize) and warm (memoized) lookup for the Fig 17
  functional factorial and a higher-order combinator program;
* ``compiled_vs_interpreted`` -- wall time and fuel for the same program
  run interpreted (CEK) and compiled.  The recursive case records the
  *wrapper-accumulation* overhead documented in ``docs/performance.md``:
  each recursion level re-crosses the F/T boundary, so compiled fuel is
  super-linear in depth and no speedup is asserted -- the assertion is
  value agreement.  The non-recursive higher-order case is the fairer
  picture of per-call overhead;
* ``paper_examples`` -- the gate: every closed pure-F paper example must
  compile, typecheck, and pass translation validation.  A regression
  that breaks compilation or validation of a paper example fails CI
  here;
* ``fast_tier`` -- the T-engine gate: the direct-threaded fast tier
  (``repro.tal.fast``) must beat the reference ``TalMachine`` by >=10x
  wall-clock on a T-dominated hot loop, and must not lose to it on the
  compiled factorial.  The *whole-program* compiled-vs-interpreted gap
  on ``fact_f`` is boundary-dominated (each recursion level re-crosses
  the F/T boundary), so it is recorded as ``gap_history`` and carried in
  ``known_regressions`` rather than asserted -- closing it needs cheaper
  boundaries, not a faster T engine (see docs/performance.md).
"""

import json
import pathlib
import sys
import time

import pytest

from repro.f.syntax import App, BinOp, FInt, IntE, Lam, Var
from repro.ft.machine import FTMachine
from repro.ft.typecheck import check_ft_expr
from repro.papers_examples import example_entries
from repro.papers_examples.fig17_factorial import build_count_t, build_fact_f
from repro.resilience.budget import Budget
from repro.resilience.safety_net import Quarantine
from repro.compile.pipeline import (
    clear_compile_cache, compile_term, is_general_compilable,
)
from repro.compile.validate import validate_compilation
from repro.stdlib.prelude import compose, twice
from repro.tal.syntax import Component

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
_BENCH_PATH = _REPO_ROOT / "BENCH_compile.json"

_RESULTS = {}

ROUNDS = 5
FACT_N = 6          # compiled factorial fuel grows super-linearly in n
RUN_FUEL = 10_000_000
_RECURSION_LIMIT = 100_000   # nested F<->T machines need host headroom


@pytest.fixture(scope="module", autouse=True)
def write_artifact():
    yield
    if _RESULTS:
        _BENCH_PATH.write_text(
            json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")


@pytest.fixture(scope="module", autouse=True)
def deep_host_stack():
    old = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old, _RECURSION_LIMIT))
    yield
    sys.setrecursionlimit(old)


def _best(fn, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _higher_order_program():
    """twice (twice (compose inc dbl)) 1 -- closures all the way down."""
    inc = Lam((("x", FInt()),), BinOp("+", Var("x"), IntE(1)))
    dbl = Lam((("x", FInt()),), BinOp("*", Var("x"), IntE(2)))
    step = compose(inc, dbl, FInt(), FInt(), FInt())
    return App(twice(twice(step, FInt()), FInt()), (IntE(1),))


def _run(program, tal_engine=None):
    machine = FTMachine(budget=Budget(fuel=RUN_FUEL), tal_engine=tal_engine)
    value = machine.evaluate(program)
    return value, machine.budget.fuel_used


def _gap_history(current: float, keep: int = 20):
    """The compiled-vs-interpreted wall-clock gap across benchmark runs
    (fast tier), previous artifact's history plus this run, newest last
    -- the ``speedup_history`` idiom from ``bench_serve.py``: the
    trajectory toward closing the gap lives in the archived JSON."""
    history = []
    if _BENCH_PATH.exists():
        try:
            prev = json.loads(_BENCH_PATH.read_text(encoding="utf-8"))
            history = list(prev.get("compiled_vs_interpreted", {})
                           .get("fact_f", {}).get("gap_history", []))
        except (ValueError, OSError):
            history = []
    history.append(round(current, 1))
    return history[-keep:]


def test_compile_time(record):
    cases = {
        "fact_f": build_fact_f(),
        "higher_order": _higher_order_program(),
    }
    rows = {}
    for name, term in cases.items():
        def cold(t=term):
            clear_compile_cache()
            compile_term(t)

        cold_s = _best(cold)
        result = compile_term(term)       # leaves the cache warm
        warm_s = _best(lambda t=term: compile_term(t))
        rows[name] = {
            "tier": result.tier,
            "blocks": result.block_count(),
            "cold_s": round(cold_s, 6),
            "warm_s": round(warm_s, 6),
            "defs": 0 if result.clos is None else len(result.clos.defs),
        }
        record(f"{name}: cold {cold_s * 1e3:.2f}ms, "
               f"warm {warm_s * 1e6:.1f}us, {rows[name]['blocks']} blocks")
        # memoization must be orders of magnitude below a real compile
        assert warm_s < cold_s
    _RESULTS["compile_time"] = rows


def test_compiled_vs_interpreted(record):
    from repro.tal import fast

    cases = {
        "fact_f": App(build_fact_f(), (IntE(FACT_N),)),
        "higher_order": _higher_order_program(),
    }
    rows = {}
    for name, program in cases.items():
        compiled = compile_term(program).wrapped
        int_value, int_fuel = _run(program)
        cmp_value, cmp_fuel = _run(compiled)
        assert cmp_value == int_value, name
        fast.clear_fast_caches()
        fast_value, fast_fuel = _run(compiled, tal_engine="fast")
        assert fast_value == int_value, name
        assert fast_fuel == cmp_fuel, name    # lockstep, not just close
        int_s = _best(lambda p=program: _run(p))
        cmp_s = _best(lambda p=compiled: _run(p))
        fast_s = _best(lambda p=compiled: _run(p, tal_engine="fast"))
        rows[name] = {
            "value": str(int_value),
            "interpreted_s": round(int_s, 6),
            "compiled_s": round(cmp_s, 6),
            "compiled_fast_s": round(fast_s, 6),
            "fast_vs_ref": round(cmp_s / fast_s, 2) if fast_s else None,
            "interpreted_fuel": int_fuel,
            "compiled_fuel": cmp_fuel,
            "fuel_overhead": round(cmp_fuel / max(int_fuel, 1), 1),
        }
        record(f"{name}: interpreted {int_s * 1e3:.2f}ms/{int_fuel} fuel, "
               f"compiled(ref) {cmp_s * 1e3:.2f}ms/{cmp_fuel} fuel, "
               f"compiled(fast) {fast_s * 1e3:.2f}ms")
        if name == "fact_f":
            gap = fast_s / int_s if int_s else float("inf")
            rows[name]["gap"] = round(gap, 1)
            rows[name]["gap_history"] = _gap_history(gap)
            record(f"fact_f compiled-vs-interpreted gap (fast tier): "
                   f"{gap:.0f}x; history {rows[name]['gap_history']}")
    _RESULTS["compiled_vs_interpreted"] = rows

    # The residual fact_f gap is a first-class known regression until
    # closed: the fast tier removed the T-side overhead, but each of the
    # ~500 F/T boundary crossings still pays omega substitution into the
    # imported F payload on BOTH engines, so whole-program wall-clock
    # stays boundary-bound.  asserted:false -- this artifact records the
    # trajectory; the gate on the fast tier itself is test_fast_tier_gate.
    _RESULTS.setdefault("known_regressions", []).append({
        "name": "fact_f_boundary_gap",
        "metric": "compiled_vs_interpreted.fact_f.gap",
        "value": rows["fact_f"]["gap"],
        "threshold": 240.0,    # a 10x shrink of the ~2400x seed gap
        "asserted": False,
        "first_observed": 2400.0,
        "cause": "per-crossing Import-payload substitution and F/T "
                 "value translation dominate compiled fact_f; both "
                 "engines pay it, so a faster T tier cannot close it "
                 "-- needs cheaper boundaries (ROADMAP item 4)",
    })


def test_fast_tier_gate(record):
    """The fast-tier CI gate: on a T-dominated hot loop the fast engine
    must beat the reference TalMachine >=10x wall-clock, and on the
    compiled factorial it must not lose to it."""
    from repro.tal import fast

    fast.clear_fast_caches()
    loop = App(build_count_t(), (IntE(30_000),))

    def run_loop(engine):
        machine = FTMachine(budget=Budget(fuel=RUN_FUEL), tal_engine=engine)
        return machine.evaluate(loop), machine.budget.fuel_used

    (ref_value, ref_fuel) = run_loop("ref")
    (fast_value, fast_fuel) = run_loop("fast")   # also warms the JIT
    assert str(fast_value) == str(ref_value) == "30000"
    assert fast_fuel == ref_fuel
    ref_s = _best(lambda: run_loop("ref"), rounds=3)
    fast_s = _best(lambda: run_loop("fast"), rounds=3)
    speedup = ref_s / fast_s if fast_s else float("inf")

    compiled = compile_term(App(build_fact_f(), (IntE(FACT_N),))).wrapped
    _run(compiled, tal_engine="fast")            # warm the block tables
    fact_ref_s = _best(lambda: _run(compiled), rounds=3)
    fact_fast_s = _best(lambda: _run(compiled, tal_engine="fast"), rounds=3)
    fact_ratio = fact_ref_s / fact_fast_s if fact_fast_s else float("inf")

    stats = fast.fast_cache_stats()
    _RESULTS["fast_tier"] = {
        "hot_loop_ref_s": round(ref_s, 6),
        "hot_loop_fast_s": round(fast_s, 6),
        "hot_loop_speedup": round(speedup, 2),
        "fact_f_ref_s": round(fact_ref_s, 6),
        "fact_f_fast_s": round(fact_fast_s, 6),
        "fact_f_fast_vs_ref": round(fact_ratio, 2),
        "block_cache": stats["tal.fast.block"],
    }
    record(f"fast tier: hot loop ref {ref_s * 1e3:.1f}ms vs fast "
           f"{fast_s * 1e3:.1f}ms = {speedup:.1f}x; compiled fact_f "
           f"ref/fast = {fact_ratio:.2f}x")
    # The perf gate proper: fast must not be slower than ref anywhere,
    # and on T-dominated code it must clear the 10x bar.
    assert speedup >= 10.0, (
        f"fast tier only {speedup:.1f}x on the hot loop (need >=10x)")
    # fact_f is boundary-bound, so fast and ref measure within noise of
    # each other; gate on "not slower" with a noise allowance (shared CI
    # hosts swing +-20%) and record the exact ratio in the artifact.
    assert fact_ratio >= 0.8, (
        f"fast tier is {fact_ratio:.2f}x ref on compiled fact_f "
        f"(slower beyond noise)")


def test_paper_examples_gate(record):
    """Every closed pure-F paper example compiles and validates."""
    rows = {}
    gated = []
    for name, (_, build) in sorted(example_entries().items()):
        term = build()
        if isinstance(term, Component) or not is_general_compilable(term):
            continue
        gated.append(name)
        start = time.perf_counter()
        result = compile_term(term)
        compile_s = time.perf_counter() - start
        ty, _ = check_ft_expr(result.wrapped)
        assert ty == result.ty, name
        start = time.perf_counter()
        report = validate_compilation(result, quarantine=Quarantine())
        validate_s = time.perf_counter() - start
        assert report.ok, (name, report.failure)
        rows[name] = {
            "tier": result.tier,
            "blocks": result.block_count(),
            "compile_s": round(compile_s, 6),
            "validate_s": round(validate_s, 6),
            "trials": report.trials,
        }
        record(f"{name}: {result.tier} tier, validated in {validate_s:.2f}s")
    # the gate is only meaningful if it actually covers the examples
    assert "fact-f" in gated and "jit-source" in gated
    _RESULTS["paper_examples"] = rows

"""Fig 4 (control-flow diagram of Fig 3): regenerate the jump-level table
and check each arrow, register state, and stack state against the figure."""

from repro.analysis.trace import control_flow_table, format_table
from repro.papers_examples.fig3_call_to_call import build
from repro.tal.machine import run_component

#: The figure's arrows: (kind, target, r1-if-shown, stack depth).
FIG4_ARROWS = [
    ("call", "l1", None, 0),      # f -> l1,  ra=l1ret, empty stack
    ("call", "l2", None, 1),      # l1 -> l2, ra=l2ret, l1ret :: nil
    ("jmp", "l2aux", "1", 1),     # r1=1, l1ret :: nil
    ("ret", "l2ret", "2", 1),     # r1=2, l1ret :: nil
    ("ret", "l1ret", "2", 0),     # r1=2, empty stack
    ("halt", "", "2", 0),         # r1=2, empty stack
]


def _rows():
    _, machine = run_component(build(), trace=True)
    return control_flow_table(machine.trace)


def test_fig04_arrows(record):
    rows = _rows()
    record(format_table(rows, title="fig 4 control flow"))
    assert len(rows) == len(FIG4_ARROWS)
    for row, (kind, target, r1, depth) in zip(rows, FIG4_ARROWS):
        assert row.kind == kind
        assert row.target == target
        assert len(row.stack) == depth
        if r1 is not None:
            assert dict(row.regs).get("r1") == r1


def test_fig04_continuation_registers(record):
    rows = _rows()
    # at the first call ra holds l1ret; at the second, l2ret instantiated
    assert dict(rows[0].regs)["ra"].startswith("l1ret")
    assert dict(rows[1].regs)["ra"].startswith("l2ret")
    record("fig4 continuation registers match the figure")


def test_bench_fig04_trace_reconstruction(benchmark):
    def regenerate():
        _, machine = run_component(build(), trace=True)
        return control_flow_table(machine.trace)

    rows = benchmark(regenerate)
    assert [r.kind for r in rows] == [k for k, *_ in FIG4_ARROWS]

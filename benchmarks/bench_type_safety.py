"""Type safety at scale (the metatheory behind every figure): batteries of
random well-typed programs never get stuck on either machine."""

from repro.errors import MachineError
from repro.f.eval import evaluate
from repro.f.syntax import IntE
from repro.tal.machine import run_component
from repro.tal.syntax import TInt, WInt
from repro.tal.typecheck import check_program

from tests.strategies import random_f_int_expr, random_t_program


def test_safety_battery_f(record):
    for seed in range(200):
        value = evaluate(random_f_int_expr(seed, depth=4), fuel=100_000)
        assert isinstance(value, IntE)
    record("type safety: 200/200 random F programs ran to int values")


def test_safety_battery_t(record):
    for seed in range(200):
        comp = random_t_program(seed, length=15)
        check_program(comp, TInt())
        halted, machine = run_component(comp, fuel=50_000)
        assert isinstance(halted.word, WInt)
        assert machine.memory.depth == 0
    record("type safety: 200/200 random T programs typechecked and "
           "halted cleanly")


def test_bench_safety_pipeline_t(benchmark):
    def pipeline():
        comp = random_t_program(12345, length=15)
        check_program(comp, TInt())
        halted, _ = run_component(comp)
        return halted

    halted = benchmark(pipeline)
    assert isinstance(halted.word, WInt)


def test_bench_safety_pipeline_f(benchmark):
    def pipeline():
        return evaluate(random_f_int_expr(999, depth=4), fuel=100_000)

    assert isinstance(benchmark(pipeline), IntE)

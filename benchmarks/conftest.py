"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates its paper artifact (asserting the *shape*
matches the figure) and reports timing via pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only

The ``record`` fixture collects the reproduced rows so a bench run doubles
as the data source for EXPERIMENTS.md.

The ``benchmark`` fixture is wrapped: after the (uninstrumented) timing
rounds, the workload runs once more under :mod:`repro.obs` metrics and the
per-benchmark counter deltas -- machine steps, boundary crossings, JIT
cache activity -- are written to ``BENCH_obs.json`` at the repository
root.  Timings are never taken with instrumentation on; the artifact gives
future PRs a step/crossing trajectory to diff against.
"""

import json
import pathlib

import pytest

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
_BENCH_OBS_PATH = _REPO_ROOT / "BENCH_obs.json"

#: benchmark node name -> {counter: value} for one instrumented run.
_OBS_RESULTS = {}

#: The headline counters summarized per benchmark (full counter dumps stay
#: in the "counters" key).
_SUMMARY_KEYS = (
    "t.machine.steps", "f.machine.steps",
    "ft.boundary.f_to_t", "ft.boundary.t_to_f",
)


@pytest.fixture
def obs_results():
    """The mutable ``BENCH_obs.json`` payload.  Benchmarks that gate on
    observability behavior itself (e.g. the disabled-path overhead
    check) add their own top-level entries here; the session-finish hook
    writes everything out together."""
    return _OBS_RESULTS


@pytest.fixture
def record(capsys):
    """Print reproduced figure rows (visible with -s), returning a sink."""

    lines = []

    def emit(*parts):
        line = " ".join(str(p) for p in parts)
        lines.append(line)
        print(line)

    emit.lines = lines
    return emit


def _record_obs_run(node_name, fn, args, kwargs):
    """Replay ``fn`` once under metrics-only instrumentation."""
    from repro import obs

    obs.reset()
    obs.enable(record=False)            # metrics only; no event retention
    try:
        fn(*args, **kwargs)
    finally:
        obs.disable()
    counters = obs.OBS.metrics.snapshot()["counters"]
    obs.reset()
    entry = {k: counters[k] for k in _SUMMARY_KEYS if k in counters}
    entry["counters"] = counters
    _OBS_RESULTS[node_name] = entry


@pytest.fixture
def benchmark(benchmark, request):
    """pytest-benchmark's fixture, plus one instrumented run for counts.

    The override requests the plugin fixture of the same name and swaps the
    instance into a subclass whose ``__call__`` replays the workload once
    under ``repro.obs`` after the (uninstrumented) timing rounds.  The
    object stays a ``BenchmarkFixture``, which the plugin's report hook
    insists on.
    """
    node_name = request.node.name

    class _InstrumentedBenchmark(type(benchmark)):
        def __call__(self, fn, *args, **kwargs):
            result = super().__call__(fn, *args, **kwargs)
            _record_obs_run(node_name, fn, args, kwargs)
            return result

    benchmark.__class__ = _InstrumentedBenchmark
    return benchmark


def pytest_sessionfinish(session, exitstatus):
    if not _OBS_RESULTS:
        return
    payload = {name: _OBS_RESULTS[name] for name in sorted(_OBS_RESULTS)}
    _BENCH_OBS_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")

"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates its paper artifact (asserting the *shape*
matches the figure) and reports timing via pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only

The ``record`` fixture collects the reproduced rows so a bench run doubles
as the data source for EXPERIMENTS.md.
"""

import pytest


@pytest.fixture
def record(capsys):
    """Print reproduced figure rows (visible with -s), returning a sink."""

    lines = []

    def emit(*parts):
        line = " ".join(str(p) for p in parts)
        lines.append(line)
        print(line)

    emit.lines = lines
    return emit

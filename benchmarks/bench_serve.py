"""Serving-layer benchmarks: batch throughput vs the sequential baseline,
and result-cache effectiveness on resubmission.

Writes ``BENCH_serve.json`` at the repository root (alongside
``BENCH_obs.json``) so CI can archive the serving trajectory:

* ``throughput`` -- the same job list run (a) sequentially in-process
  (the ``funtal examples --run`` baseline) and (b) through a 4-worker
  :class:`~repro.serve.pool.WorkerPool` batch, with the measured speedup
  and the host's CPU count.  The ISSUE's >= 2x acceptance bound is only
  *asserted* when the host actually has >= 4 CPUs -- a single-core
  container cannot express parallel speedup, but the numbers are
  recorded either way so a multi-core CI run enforces it.
* ``cache`` -- a cold batch vs an identical resubmitted batch; the
  resubmission must be >= 90% cache-served (asserted unconditionally,
  it is deterministic).
"""

import json
import os
import pathlib
import time
import warnings

import pytest

from repro.serve.cache import ResultCache
from repro.serve.executor import execute_job
from repro.serve.pool import WorkerPool
from repro.serve.protocol import Job, JobOptions

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
_BENCH_SERVE_PATH = _REPO_ROOT / "BENCH_serve.json"

_RESULTS = {}

REPEATS = 20          # example set x repeats = the benchmark batch
WORKERS = 4


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:      # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _example_jobs(repeats: int, no_cache: bool = False):
    from repro.papers_examples import example_entries

    return [Job("run", id=f"{name}#{rep}", example=name,
                options=JobOptions(no_cache=no_cache))
            for rep in range(repeats)
            for name in example_entries()]


@pytest.fixture(scope="module", autouse=True)
def write_artifact():
    """Collect every benchmark's rows, then write the JSON artifact."""
    yield
    if _RESULTS:
        _RESULTS["cpus"] = _cpus()
        _BENCH_SERVE_PATH.write_text(
            json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")


def _speedup_history(current: float, keep: int = 20):
    """The speedup trajectory across benchmark runs: previous artifact's
    history plus this run, newest last.  A slide toward (or below) 1.0
    is then visible in the archived JSON, not just in one run's number."""
    history = []
    if _BENCH_SERVE_PATH.exists():
        try:
            prev = json.loads(_BENCH_SERVE_PATH.read_text(encoding="utf-8"))
            history = list(prev.get("throughput", {}).get(
                "speedup_history", []))
            prev_speedup = prev.get("throughput", {}).get("speedup")
            if not history and prev_speedup is not None:
                history = [prev_speedup]
        except (ValueError, OSError):
            history = []
    history.append(round(current, 3))
    return history[-keep:]


def test_batch_throughput_vs_sequential(record):
    from repro import obs

    jobs = _example_jobs(REPEATS, no_cache=True)

    # Warm the in-process machinery, then time the sequential baseline.
    execute_job(jobs[0])
    start = time.perf_counter()
    seq_results = [execute_job(job) for job in jobs]
    sequential_s = time.perf_counter() - start
    assert all(r.ok for r in seq_results)

    # The batch runs under the metrics layer (no event recording) so the
    # artifact archives per-job latency quantiles, not just the wall time.
    obs.reset()
    obs.enable(record=False)
    try:
        with WorkerPool(WORKERS) as pool:
            # One warm-up round trip so worker spawn cost is not billed
            # to the steady-state batch measurement.
            pool.submit(Job("run", example="fig17",
                            options=JobOptions(no_cache=True))).wait(30.0)
            start = time.perf_counter()
            results = pool.run_batch(jobs, timeout=300.0)
            batch_s = time.perf_counter() - start
        job_ms = obs.OBS.metrics.snapshot()["histograms"].get(
            "serve.job.ms", {})
    finally:
        obs.disable()
        obs.reset()
    assert all(r.ok for r in results)

    cpus = _cpus()
    speedup = sequential_s / batch_s if batch_s else float("inf")
    _RESULTS["throughput"] = {
        "jobs": len(jobs),
        "workers": WORKERS,
        "sequential_s": round(sequential_s, 4),
        "batch_s": round(batch_s, 4),
        "speedup": round(speedup, 3),
        "speedup_history": _speedup_history(speedup),
        "jobs_per_s_batch": round(len(jobs) / batch_s, 1),
        "p50_ms": job_ms.get("p50"),
        "p99_ms": job_ms.get("p99"),
        "speedup_asserted": cpus >= WORKERS,
    }
    record(f"serve: {len(jobs)} jobs sequential={sequential_s:.3f}s "
           f"batch({WORKERS}w)={batch_s:.3f}s speedup={speedup:.2f}x "
           f"p50={job_ms.get('p50')}ms p99={job_ms.get('p99')}ms "
           f"(cpus={cpus})")
    if speedup < 1.0:
        # A pool slower than the sequential baseline is a regression on
        # any host, cores or not -- say so loudly instead of quietly
        # recording speedup_asserted: false, AND write it into the
        # artifact as a first-class known_regressions entry so the
        # trajectory diff cannot miss it (first observed at 0.379x on
        # the 1-CPU CI host, where the speedup assertion is skipped).
        msg = (f"serve batch REGRESSION: {WORKERS}-worker pool is "
               f"{speedup:.2f}x the sequential baseline (slower!) on a "
               f"{cpus}-CPU host; history {_RESULTS['throughput']['speedup_history']}")
        record(msg)
        warnings.warn(msg, stacklevel=1)
        _RESULTS.setdefault("known_regressions", []).append({
            "name": "batch_parallelism",
            "metric": "throughput.speedup",
            "value": round(speedup, 3),
            "threshold": 1.0,
            "asserted": cpus >= WORKERS,
            "cpus": cpus,
            "first_observed": 0.379,
            "cause": "dispatch/IPC overhead dominates on hosts with "
                     "fewer CPUs than workers; the >=2x assertion only "
                     "arms when cpus >= workers",
        })
    if cpus >= WORKERS:
        # The ISSUE acceptance bound; meaningless without the cores.
        assert speedup >= 2.0, (
            f"batch on {WORKERS} workers only {speedup:.2f}x faster "
            f"than sequential on a {cpus}-CPU host")


def test_cache_resubmission_hit_rate(record):
    jobs = _example_jobs(REPEATS)
    with WorkerPool(WORKERS, cache=ResultCache(4096)) as pool:
        start = time.perf_counter()
        cold = pool.run_batch(jobs, timeout=300.0)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm = pool.run_batch(jobs, timeout=300.0)
        warm_s = time.perf_counter() - start
    assert all(r.ok for r in cold) and all(r.ok for r in warm)

    hit_rate = sum(r.cached for r in warm) / len(warm)
    _RESULTS["cache"] = {
        "jobs": len(jobs),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "warm_speedup": round(cold_s / warm_s, 2) if warm_s else None,
        "hit_rate": round(hit_rate, 3),
    }
    record(f"serve: resubmitted batch hit rate {hit_rate:.0%} "
           f"cold={cold_s:.3f}s warm={warm_s:.3f}s")
    assert hit_rate >= 0.9


def test_single_job_latency(record):
    """Round-trip latency through the pool for one tiny job, cold cache
    vs cache-served -- the interactive-use numbers."""
    job = Job("run", source="((2 + 3) * 10)")
    with WorkerPool(1, cache=ResultCache(64)) as pool:
        pool.submit(Job("run", example="fig17")).wait(30.0)   # warm-up
        start = time.perf_counter()
        fresh = pool.submit(job).wait(30.0)
        fresh_ms = (time.perf_counter() - start) * 1000.0
        start = time.perf_counter()
        served = pool.submit(job).wait(30.0)
        served_ms = (time.perf_counter() - start) * 1000.0
    assert fresh.ok and served.ok and served.cached
    _RESULTS["latency"] = {
        "fresh_ms": round(fresh_ms, 3),
        "cached_ms": round(served_ms, 3),
    }
    record(f"serve: single-job latency fresh={fresh_ms:.2f}ms "
           f"cached={served_ms:.3f}ms")
    assert served_ms < fresh_ms

"""Fig 10 (boundary value translation): base values, tuples, mu, and both
function directions, including typechecking the generated wrapper code."""

from repro.f.syntax import (
    App, BinOp, FArrow, FInt, Fold, FRec, FTupleT, IntE, Lam, TupleE, Var,
)
from repro.ft.boundary import (
    build_lambda_wrapper, f_to_t, t_to_f,
)
from repro.ft.machine import FTMachine
from repro.ft.translate import type_translation
from repro.ft.typecheck import FTTypechecker
from repro.tal.equality import psis_equal
from repro.tal.heap import Memory
from repro.tal.syntax import WInt

INT_ARROW = FArrow((FInt(),), FInt())


def test_fig10_first_order_clauses(record):
    mem = Memory()
    mu = FRec("a", FInt())
    cases = [
        (IntE(5), FInt()),
        (TupleE((IntE(1), IntE(2))), FTupleT((FInt(), FInt()))),
        (Fold(mu, IntE(1)), mu),
    ]
    for v, ty in cases:
        w = f_to_t(v, ty, mem)
        back = t_to_f(w, ty, mem)
        record(f"fig10 {ty}: {v}  |->  {w}  |->  {back}")
        assert back == v


def test_fig10_lambda_becomes_fig10_block(record):
    lam = Lam((("x", FInt()),), BinOp("+", Var("x"), IntE(1)))
    block = build_lambda_wrapper(lam, INT_ARROW)
    ops = [type(i).__name__ for i in block.instrs.instrs]
    record(f"fig10 wrapper body: {ops} then {type(block.instrs.term).__name__}")
    # salloc 1; sst 0, ra; import ...; sld ra, 0; sfree n+1; ret ra {r1}
    assert ops == ["Salloc", "Sst", "Import", "Sld", "Sfree"]
    FTTypechecker().check_heap_value(block)
    assert psis_equal(block.code_type, type_translation(INT_ARROW).psi)
    record("fig10: wrapper typechecks at the Fig 9 translation type")


def test_fig10_function_round_trip_behaviour(record):
    machine = FTMachine()
    lam = Lam((("x", FInt()),), BinOp("*", Var("x"), IntE(5)))
    w = f_to_t(lam, INT_ARROW, machine.memory)
    back = t_to_f(w, INT_ARROW, machine.memory)
    result = machine.eval_fexpr(App(back, (IntE(8),)))
    record(f"fig10: (TF then FT)(x*5) applied to 8 = {result}")
    assert result == IntE(40)


def test_bench_fig10_wrapper_generation(benchmark):
    lam = Lam((("x", FInt()),), BinOp("+", Var("x"), IntE(1)))

    def generate():
        return build_lambda_wrapper(lam, INT_ARROW)

    block = benchmark(generate)
    assert psis_equal(block.code_type, type_translation(INT_ARROW).psi)


def test_bench_fig10_round_trip_call(benchmark):
    machine = FTMachine(fuel=10**9)
    lam = Lam((("x", FInt()),), BinOp("+", Var("x"), IntE(1)))
    w = f_to_t(lam, INT_ARROW, machine.memory)
    back = t_to_f(w, INT_ARROW, machine.memory)

    def call():
        return machine.eval_fexpr(App(back, (IntE(1),)))

    assert benchmark(call) == IntE(2)

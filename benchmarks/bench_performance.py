"""Artifact-parity performance: parser, typechecker, and machine
throughput on scaled synthetic workloads (no paper counterpart -- the
authors' artifact ran in a browser; these numbers document ours)."""

from repro.f.eval import evaluate
from repro.f.syntax import App, BinOp, FArrow, FInt, IntE, Lam, Var
from repro.ft.machine import evaluate_ft
from repro.surface.parser import parse_component, parse_fexpr
from repro.tal.machine import run_component
from repro.tal.syntax import (
    Aop, Bnz, Component, DeltaBind, Halt, HCode, Jmp, KIND_EPS, KIND_ZETA,
    Loc, Mv, NIL_STACK, QEnd, RegFileTy, RegOp, StackTy, TInt, TyApp, WInt,
    WLoc, seq,
)
from repro.tal.typecheck import check_program


def _countdown_component(n: int) -> Component:
    """A T loop counting r3 from n to 0 (2n+3 machine steps)."""
    loop = Loc("loop")
    end_marker = QEnd(TInt(), NIL_STACK)
    block = HCode(
        (), RegFileTy.of(r3=TInt(), r7=TInt()), NIL_STACK, end_marker,
        seq(
            Aop("sub", "r3", "r3", WInt(1)),
            Aop("add", "r7", "r7", WInt(1)),
            Bnz("r3", WLoc(loop)),
            Mv("r1", RegOp("r7")),
            Halt(TInt(), NIL_STACK, "r1"),
        ))
    return Component(seq(
        Mv("r3", WInt(n)),
        Mv("r7", WInt(0)),
        Jmp(WLoc(loop)),
    ), ((loop, block),))


def _adder_chain(n: int):
    """n nested F applications of (lam x. x + 1)."""
    inc = Lam((("x", FInt()),), BinOp("+", Var("x"), IntE(1)))
    e = IntE(0)
    for _ in range(n):
        e = App(inc, (e,))
    return e


def test_workloads_are_correct(record):
    halted, machine = run_component(_countdown_component(500))
    assert halted.word == WInt(500)
    record(f"perf: countdown(500) took {machine.steps} machine steps")
    assert evaluate(_adder_chain(200)) == IntE(200)
    record("perf: adder-chain(200) evaluates correctly")


def test_bench_t_machine_throughput(benchmark):
    comp = _countdown_component(1_000)

    def run():
        halted, _ = run_component(comp, fuel=10**7)
        return halted

    assert benchmark(run).word == WInt(1_000)


def test_bench_t_typechecker_throughput(benchmark):
    comp = _countdown_component(1)

    def check():
        return check_program(comp, TInt())

    benchmark(check)


def test_bench_f_machine_throughput(benchmark):
    prog = _adder_chain(300)

    def run():
        return evaluate(prog, fuel=10**6)

    assert benchmark(run) == IntE(300)


def test_bench_ft_machine_throughput(benchmark):
    prog = _adder_chain(150)

    def run():
        value, _ = evaluate_ft(prog, fuel=10**6)
        return value

    assert benchmark(run) == IntE(150)


def test_bench_parser_throughput(benchmark):
    source = str(_countdown_component(1))

    def parse():
        return parse_component(source)

    benchmark(parse)


def test_bench_f_parser_throughput(benchmark):
    source = str(_adder_chain(60))

    def parse():
        return parse_fexpr(source)

    benchmark(parse)

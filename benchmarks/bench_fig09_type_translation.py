"""Fig 9 (boundary type translation): each clause, checked against the
figure's displayed forms, plus throughput on deeply nested arrows."""

from repro.f.syntax import FArrow, FInt, FRec, FTupleT, FTVar, FUnit
from repro.ft.syntax import FStackArrow
from repro.ft.translate import type_translation
from repro.tal.syntax import TInt
from repro.tal.wellformed import check_type_wf


FIG9_CASES = [
    ("unit", FUnit(), "unit"),
    ("int", FInt(), "int"),
    ("alpha", FTVar("a"), "a"),
    ("mu", FRec("a", FTVar("a")), "mu a. a"),
    ("tuple", FTupleT((FInt(), FInt())), "box <int, int>"),
    ("arrow", FArrow((FInt(),), FInt()),
     "box forall[zeta z, eps e].{ra: box forall[].{r1: int; z} e; "
     "int :: z} ra"),
    ("stack arrow", FStackArrow((FInt(),), FUnit(), (), (TInt(),)),
     "box forall[zeta z, eps e].{ra: box forall[].{r1: unit; int :: z} e; "
     "int :: z} ra"),
]


def test_fig09_each_clause(record):
    for name, source, expected in FIG9_CASES:
        translated = type_translation(source)
        record(f"fig9 {name}: {source}  |->  {translated}")
        assert str(translated) == expected


def test_fig09_translations_are_closed(record):
    for name, source, _ in FIG9_CASES:
        if name == "alpha":
            continue
        check_type_wf((), type_translation(source))
    record("fig9: every translated closed type is well-formed")


def _nested_arrow(depth: int) -> FArrow:
    ty = FArrow((FInt(),), FInt())
    for _ in range(depth):
        ty = FArrow((ty,), ty)
    return ty


def test_bench_fig09_nested_translation(benchmark):
    ty = _nested_arrow(6)

    def translate():
        return type_translation(ty)

    out = benchmark(translate)
    check_type_wf((), out)

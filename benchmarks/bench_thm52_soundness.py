"""Theorem 5.2 (soundness & completeness wrt contextual equivalence),
testable shadow:

* *soundness of refutation* -- every seeded INequivalent pair is refuted
  by some context (a counterexample is a real distinguishing context);
* *no false refutation* -- the paper's proven-equivalent pairs are never
  refuted, at any budget we can afford.
"""

from repro.equiv.checker import check_equivalence
from repro.f.syntax import App, BinOp, FArrow, FInt, If0, IntE, Lam, Var
from repro.papers_examples import fig16_two_blocks, fig17_factorial

INT_ARROW = FArrow((FInt(),), FInt())


def lam_int(body):
    return Lam((("x", FInt()),), body)


#: Pairs that differ somewhere; each must be caught.
INEQUIVALENT_PAIRS = [
    ("off-by-one", lam_int(Var("x")),
     lam_int(BinOp("+", Var("x"), IntE(1)))),
    ("only-at-negatives", lam_int(BinOp("*", Var("x"), Var("x"))),
     lam_int(If0(Var("x"), IntE(0),
                 If0(BinOp("+", Var("x"), IntE(1)), IntE(-1),
                     BinOp("*", Var("x"), Var("x")))))),
    ("only-at-17", lam_int(Var("x")),
     lam_int(If0(BinOp("-", Var("x"), IntE(7)), IntE(0), Var("x")))),
    ("constant-vs-echo", lam_int(IntE(0)), lam_int(Var("x"))),
]

EQUIVALENT_PAIRS = [
    ("fig16", fig16_two_blocks.build_f1(), fig16_two_blocks.build_f2(),
     fig16_two_blocks.ARROW),
    ("fig17", fig17_factorial.build_fact_f(),
     fig17_factorial.build_fact_t(), fig17_factorial.ARROW),
    ("commuted-add", lam_int(BinOp("+", Var("x"), IntE(3))),
     lam_int(BinOp("+", IntE(3), Var("x"))), INT_ARROW),
]


def test_thm52_inequivalent_pairs_refuted(record):
    for name, left, right in INEQUIVALENT_PAIRS:
        report = check_equivalence(left, right, INT_ARROW, fuel=20_000)
        record(f"thm5.2 {name}: {report}")
        assert not report.equivalent, name


def test_thm52_equivalent_pairs_never_refuted(record):
    for entry in EQUIVALENT_PAIRS:
        name, left, right, ty = entry
        report = check_equivalence(left, right, ty, fuel=20_000)
        record(f"thm5.2 {name}: {report}")
        assert report.equivalent, name


def test_bench_thm52_refutation_speed(benchmark):
    left, right = INEQUIVALENT_PAIRS[0][1], INEQUIVALENT_PAIRS[0][2]

    def refute():
        return check_equivalence(left, right, INT_ARROW, fuel=10_000)

    report = benchmark(refute)
    assert not report.equivalent

"""Theorem 5.1 (Fundamental Property), testable shadow: every well-typed
term is contextually equivalent to itself.  Checked over the paper corpus
and a random-program battery."""

from repro.equiv.checker import check_equivalence
from repro.f.syntax import FInt
from repro.papers_examples import fig16_two_blocks, fig17_factorial

from tests.strategies import random_f_int_expr


CORPUS = [
    ("f1", fig16_two_blocks.build_f1, fig16_two_blocks.ARROW),
    ("f2", fig16_two_blocks.build_f2, fig16_two_blocks.ARROW),
    ("factF", fig17_factorial.build_fact_f, fig17_factorial.ARROW),
    ("factT", fig17_factorial.build_fact_t, fig17_factorial.ARROW),
]


def test_thm51_paper_corpus(record):
    for name, build, ty in CORPUS:
        report = check_equivalence(build(), build(), ty, fuel=20_000,
                                   max_contexts=10)
        record(f"thm5.1 {name} ~ {name}: {report}")
        assert report.equivalent


def test_thm51_random_battery(record):
    confirmed = 0
    for seed in range(25):
        e = random_f_int_expr(seed, depth=3)
        report = check_equivalence(e, e, FInt(), fuel=20_000,
                                   typecheck=False)
        assert report.equivalent
        confirmed += 1
    record(f"thm5.1: {confirmed}/25 random well-typed terms self-related")


def test_bench_thm51_self_equivalence(benchmark):
    build, ty = fig16_two_blocks.build_f1, fig16_two_blocks.ARROW
    candidate = build()

    def check():
        return check_equivalence(candidate, candidate, ty, fuel=15_000,
                                 max_contexts=6)

    assert benchmark(check).equivalent

"""Adaptive-tiering benchmarks: the ISSUE acceptance gate.

Writes ``BENCH_tiering.json`` at the repository root:

* ``throughput`` -- one mixed hot/cold corpus (T-dominated countdown
  loops plus trivial arithmetic) run twice through a worker pool: (a)
  always-interpreter baseline (tiering off) and (b) steady-state under
  ``--tiering auto`` after the controller promoted the hot digests.
  The gate asserts the auto-tiered steady state is **>= 2x** the
  baseline -- this is per-job work reduction (reference TAL engine vs
  the promoted fast tier), so it holds regardless of host core count.
* ``validated_once`` -- each hot digest is validated exactly once
  fleet-wide: the first promotion pays for typecheck + translation
  validation + the differential trial and signs a receipt; every later
  promotion of the same digest is a ``tiering.validate.receipt_hit``
  with zero validation work performed.
"""

import json
import pathlib
import time

import pytest

from repro import obs
from repro.f.syntax import App, IntE
from repro.papers_examples.fig17_factorial import build_count_t
from repro.serve.executor import execute_job
from repro.serve.pool import WorkerPool
from repro.serve.protocol import Job, JobOptions
from repro.tiering.policy import TieringPolicy, set_active_policy
from repro.tiering.promote import program_digest

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
_BENCH_PATH = _REPO_ROOT / "BENCH_tiering.json"

_RESULTS = {}

WORKERS = 4
HOT_NS = (30_000, 30_001)       # two distinct hot digests
HOT_REPEATS = 4
COLD_SOURCES = tuple(f"(({i} + {i + 1}) * {i + 2})" for i in range(8))


def hot_source(n: int) -> str:
    """A T-dominated countdown loop (countT n == n): ~3 T steps per
    iteration, so one run is tens of thousands of fast-tier steps."""
    return str(App(build_count_t(), (IntE(n),)))


def corpus_jobs():
    jobs = [Job("run", id=f"hot-{n}#{rep}", source=hot_source(n),
                options=JobOptions(no_cache=True))
            for rep in range(HOT_REPEATS) for n in HOT_NS]
    jobs += [Job("run", id=f"cold-{i}", source=src,
                 options=JobOptions(no_cache=True))
             for i, src in enumerate(COLD_SOURCES)]
    return jobs


@pytest.fixture(scope="module", autouse=True)
def write_artifact():
    yield
    if _RESULTS:
        _BENCH_PATH.write_text(
            json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")


def _wait_promoted(pool, digests, timeout=180.0):
    controller = pool._tiering.controller
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(controller.state(d) == "promoted" for d in digests):
            return
        time.sleep(0.05)
    raise AssertionError("hot digests never promoted: "
                         f"{ {d: controller.state(d) for d in digests} }")


def test_auto_tiered_throughput_vs_interpreter(tmp_path_factory, record):
    store = str(tmp_path_factory.mktemp("tierstore"))
    jobs = corpus_jobs()
    hot_digests = [program_digest(hot_source(n), None) for n in HOT_NS]

    # Phase A: always-interpreter baseline -- no policy, no coordinator.
    set_active_policy(None)
    with WorkerPool(WORKERS, cache=None, default_timeout=120.0) as pool:
        pool.submit(Job("run", source=hot_source(50),
                        options=JobOptions(no_cache=True))).wait(60.0)
        start = time.perf_counter()
        baseline = pool.run_batch(jobs, timeout=600.0)
        baseline_s = time.perf_counter() - start
    assert all(r.ok for r in baseline)
    baseline_values = {r.id: r.output["value"] for r in baseline}

    # Phase B: auto tiering.  The warm-up batch makes the hot digests
    # cross the threshold and promote in the background; the measured
    # batch is the steady state.
    policy = TieringPolicy(mode="auto", promote_threshold=1_000,
                           store=store)
    set_active_policy(policy)
    try:
        with WorkerPool(WORKERS, cache=None, default_timeout=120.0,
                        tiering=policy) as pool:
            warm = pool.run_batch(jobs, timeout=600.0)
            assert all(r.ok for r in warm)
            _wait_promoted(pool, hot_digests)
            start = time.perf_counter()
            tiered = pool.run_batch(jobs, timeout=600.0)
            tiered_s = time.perf_counter() - start
            stats = pool.stats()["tiering"]
    finally:
        set_active_policy(None)
    assert all(r.ok for r in tiered)

    # Zero wrong answers: the tiered corpus reproduces the baseline.
    for r in tiered:
        assert r.output["value"] == baseline_values[r.id], r.id
    # Every hot job was actually served at the promoted fast tier.
    hot_tiers = [r.output["tier"] for r in tiered
                 if r.id.startswith("hot-")]
    assert hot_tiers and all(
        t["promoted"] and t["tal_engine"] == "fast" for t in hot_tiers)

    speedup = baseline_s / tiered_s if tiered_s else float("inf")
    _RESULTS["throughput"] = {
        "jobs": len(jobs),
        "hot_jobs": len(hot_tiers),
        "workers": WORKERS,
        "interpreter_s": round(baseline_s, 4),
        "tiered_s": round(tiered_s, 4),
        "jobs_per_s_interpreter": round(len(jobs) / baseline_s, 1),
        "jobs_per_s_tiered": round(len(jobs) / tiered_s, 1),
        "speedup": round(speedup, 3),
        "promoted_digests": stats["states"].get("promoted", 0),
        "receipts_held": stats["receipts_held"],
    }
    record(f"tiering: {len(jobs)}-job mixed corpus interpreter="
           f"{baseline_s:.3f}s auto-tiered={tiered_s:.3f}s "
           f"speedup={speedup:.2f}x "
           f"(promoted={stats['states'].get('promoted', 0)})")
    # The ISSUE gate: steady-state auto-tiered serve throughput must be
    # at least 2x the always-interpreter baseline on this corpus.
    assert speedup >= 2.0, (
        f"auto-tiered steady state only {speedup:.2f}x the interpreter "
        f"baseline (gate: >= 2x)")


def test_hot_digest_validated_exactly_once(tmp_path, record):
    store = str(tmp_path)
    set_active_policy(TieringPolicy(mode="auto", store=store))
    try:
        # First fleet member: pays for validation, signs the receipts.
        first_s = 0.0
        for n in HOT_NS:
            start = time.perf_counter()
            result = execute_job(Job(
                "promote", id="p", source=hot_source(n),
                options=JobOptions(store=store)))
            first_s += time.perf_counter() - start
            assert result.ok, result.error
            assert result.output["receipt_cached"] is False

        # Every later member: receipt hit, no validation work.
        obs.reset()
        obs.enable(record=False)
        try:
            reuse_s = 0.0
            for n in HOT_NS:
                start = time.perf_counter()
                result = execute_job(Job(
                    "promote", id="p", source=hot_source(n),
                    options=JobOptions(store=store)))
                reuse_s += time.perf_counter() - start
                assert result.ok and result.output["receipt_cached"]
            counters = obs.OBS.metrics.snapshot()["counters"]
        finally:
            obs.disable()
            obs.reset()
    finally:
        set_active_policy(None)

    assert counters["tiering.validate.receipt_hit"] == len(HOT_NS)
    assert "tiering.validate.performed" not in counters

    _RESULTS["validated_once"] = {
        "hot_digests": len(HOT_NS),
        "first_validation_s": round(first_s, 4),
        "receipt_reuse_s": round(reuse_s, 4),
        "reuse_speedup": round(first_s / reuse_s, 1) if reuse_s else None,
        "receipt_hits": counters["tiering.validate.receipt_hit"],
        "validations_performed": counters.get(
            "tiering.validate.performed", 0),
    }
    record(f"tiering: {len(HOT_NS)} digests validated once in "
           f"{first_s:.3f}s; fleet-wide reuse {reuse_s:.4f}s "
           f"({counters['tiering.validate.receipt_hit']} receipt hits, "
           f"0 revalidations)")

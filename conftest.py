"""Root conftest: make the repository root importable so the benchmark
harness can reuse the generators in ``tests.strategies`` regardless of how
pytest is invoked."""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

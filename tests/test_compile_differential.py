"""Differential lockstep suite: source F (CEK) vs whole-F compiled T.

The general tier's correctness claim is the paper's contextual
equivalence ``E[e_S] ~ E[FT e_T]``; the executable enforcement here is
*observational* lockstep over the generator of
:func:`tests.strategies.random_full_f_expr` -- closed, well-typed terms
spanning the whole language (escaping closures, multi-argument and
higher-order lambdas, tuples, unit, fold/unfold):

* **values**: source and compiled runs halt with the same canonical
  value (120 seeded cases; ISSUE acceptance asks for >= 100);
* **fuel verdicts**: under a shared :class:`Budget` whose fuel is below
  *both* sides' measured consumption, both report ``FuelExhausted`` --
  the observation relation's "both still running after k steps";
* **depth verdicts**: same construction for the stack-depth governor.

What is deliberately *not* asserted: equality of resource profiles.
Compilation changes them by design -- T code makes F applications into
jumps (so compiled depth is typically far *below* source depth) and
materializes closures/tuples in the T heap (so compiled heap is above
the source's, which for pure F terms is zero).  The asymmetry tests pin
that direction down so a regression in either direction is loud; the
cost model is documented in ``docs/performance.md``.
"""

import pytest

from repro.errors import (
    FuelExhausted, HeapExhausted, ResourceExhausted, StackDepthExhausted,
)
from repro.f.syntax import FInt, IntE, Proj, TupleE
from repro.f.typecheck import typecheck as f_typecheck
from repro.compile.pipeline import TIER_GENERAL, compile_term
from repro.equiv.observation import canonical_value
from repro.ft.machine import FTMachine
from repro.resilience.budget import Budget
from tests.strategies import random_full_f_expr

#: seeds for the value-agreement sweep (the >= 100-case acceptance bar)
VALUE_SEEDS = range(120)
#: seeds for the (more expensive, re-running) starvation sweeps
STARVE_SEEDS = range(40)


def _term(seed: int):
    # alternate depths so both shallow and deeper shapes are in the mix
    return random_full_f_expr(seed, depth=3 + seed % 2)


def _run(e, budget=None):
    """(value, spent-dict) for one FT-machine run of a closed term."""
    machine = FTMachine(budget=budget or Budget())
    value = machine.evaluate(e)
    return value, machine.budget.spent()


class TestValueAgreement:
    """Source term and compiled replacement halt with the same value."""

    @pytest.mark.parametrize("seed", VALUE_SEEDS)
    def test_lockstep_value(self, seed):
        source = _term(seed)
        result = compile_term(source)
        src_value, _ = _run(source)
        cmp_value, _ = _run(result.wrapped)
        assert canonical_value(cmp_value) == canonical_value(src_value), (
            seed, source)

    def test_generator_is_well_typed_and_general(self):
        """The input distribution really is whole-F: every term
        typechecks at int, and a healthy share leaves the arithmetic
        fragment (escaping closures, tuples, fold)."""
        general = 0
        for seed in VALUE_SEEDS:
            source = _term(seed)
            assert f_typecheck(source) == FInt()
            if compile_term(source).tier == TIER_GENERAL:
                general += 1
        assert general >= len(VALUE_SEEDS) // 2


class TestFuelStarvationLockstep:
    """A shared fuel budget below both sides' usage starves both."""

    @pytest.mark.parametrize("seed", STARVE_SEEDS)
    def test_both_exhaust(self, seed):
        source = _term(seed)
        result = compile_term(source)
        _, src_spent = _run(source)
        _, cmp_spent = _run(result.wrapped)
        fuel = min(src_spent["fuel_used"], cmp_spent["fuel_used"]) - 1
        if fuel < 1:
            pytest.skip("term halts in under two steps on one side")
        for program in (source, result.wrapped):
            with pytest.raises(FuelExhausted):
                FTMachine(budget=Budget(fuel=fuel)).evaluate(program)


class TestDepthStarvationLockstep:
    """A shared depth ceiling below both high-water marks starves both."""

    @pytest.mark.parametrize("seed", STARVE_SEEDS)
    def test_both_exhaust(self, seed):
        source = _term(seed)
        result = compile_term(source)
        _, src_spent = _run(source)
        _, cmp_spent = _run(result.wrapped)
        depth = min(src_spent["depth_high_water"],
                    cmp_spent["depth_high_water"]) - 1
        if depth < 1:
            pytest.skip("one side never nests")
        for program in (source, result.wrapped):
            with pytest.raises((StackDepthExhausted, ResourceExhausted)):
                FTMachine(budget=Budget(depth=depth)).evaluate(program)


class TestResourceProfileAsymmetry:
    """Compilation preserves observations, not resource profiles; pin
    the direction of the change so regressions are loud."""

    def test_compiled_heap_exceeds_source_heap(self):
        """Pure F tuples cost no heap interpreted, but the compiled code
        allocates them as T heap tuples -- so a zero heap budget is a
        verdict splitter, by design."""
        source = Proj(0, TupleE((IntE(1), IntE(2))))
        result = compile_term(source)
        src_value, src_spent = _run(source, Budget(heap=0))
        assert src_value == IntE(1)
        assert src_spent["heap_used"] == 0
        with pytest.raises(HeapExhausted):
            FTMachine(budget=Budget(heap=0)).evaluate(result.wrapped)

    def test_random_terms_source_heap_is_zero(self):
        for seed in range(20):
            _, spent = _run(_term(seed))
            assert spent["heap_used"] == 0

    def test_compiled_depth_is_flattened(self):
        """F application chains become T jumps: compiled depth high
        water stays constant while the source's grows with the chain."""
        from repro.f.syntax import App, BinOp, Lam, Var

        inc = Lam((("x", FInt()),),
                  BinOp("+", Var("x"), IntE(1)))
        expr = IntE(0)
        for _ in range(40):
            expr = App(inc, (expr,))
        _, src_spent = _run(expr)
        _, cmp_spent = _run(compile_term(expr).wrapped)
        assert src_spent["depth_high_water"] >= 39
        assert cmp_spent["depth_high_water"] <= 4

"""Tests for the analysis tooling: static CFGs and trace tables."""

import networkx as nx

from repro.analysis.cfg import component_cfg, DYNAMIC, ENTRY, EXIT
from repro.analysis.trace import control_flow_table, FlowRow, format_table
from repro.papers_examples import fig3_call_to_call, fig11_jit
from repro.tal.machine import run_component


class TestCfg:
    def test_fig3_nodes(self):
        graph = component_cfg(fig3_call_to_call.build())
        for label in ("l1", "l1ret", "l2", "l2aux", "l2ret"):
            assert label in graph.nodes

    def test_fig3_edges(self):
        graph = component_cfg(fig3_call_to_call.build())
        assert graph.has_edge(ENTRY, "l1")
        assert graph.edges[ENTRY, "l1"]["kind"] == "call"
        assert graph.has_edge("l2", "l2aux")
        assert graph.edges["l2", "l2aux"]["kind"] == "jmp"
        assert graph.has_edge("l2aux", EXIT)
        assert graph.edges["l2aux", EXIT]["kind"] == "ret"

    def test_dynamic_call_goes_to_dynamic_node(self):
        jit = fig11_jit.build_jit()
        comp = jit.fn.comp
        graph = component_cfg(comp)
        # l calls through register r1 (the interpreted g)
        assert graph.has_edge("l", DYNAMIC)

    def test_fig3_entry_reaches_exit(self):
        graph = component_cfg(fig3_call_to_call.build())
        assert nx.has_path(graph, ENTRY, EXIT)

    def test_loop_shows_self_edge(self):
        from repro.papers_examples.fig17_factorial import build_fact_t

        comp = build_fact_t().body.fn.comp
        graph = component_cfg(comp)
        assert graph.has_edge("lloop", "lloop")
        assert graph.edges["lloop", "lloop"]["kind"] == "bnz"


class TestTraceTable:
    def _rows(self):
        _, machine = run_component(fig3_call_to_call.build(), trace=True)
        return control_flow_table(machine.trace)

    def test_row_count_matches_fig4(self):
        rows = self._rows()
        # 5 transfers + halt (the enter event is not a diagram arrow)
        assert len(rows) == 6

    def test_labels_are_pretty(self):
        rows = self._rows()
        assert rows[0].target == "l1"  # freshness suffix stripped

    def test_register_filter(self):
        _, machine = run_component(fig3_call_to_call.build(), trace=True)
        rows = control_flow_table(machine.trace, registers=("r1",))
        for row in rows:
            assert all(r == "r1" for r, _ in row.regs)

    def test_kind_filter(self):
        _, machine = run_component(fig3_call_to_call.build(), trace=True)
        rows = control_flow_table(machine.trace, kinds=("ret",))
        assert [r.kind for r in rows] == ["ret", "ret"]

    def test_format_table_contains_rows(self):
        text = format_table(self._rows(), title="fig 4")
        assert "fig 4" in text
        assert "call -> l1" in text
        assert "halt" in text

    def test_flow_row_str(self):
        row = FlowRow("call", "l1", (("ra", "l1ret"),), ("x",), "detail")
        assert "call -> l1" in str(row)

"""Unit tests for T type substitution and instantiation (repro.tal.subst)."""

import pytest

from repro.tal.subst import (
    delta_subst, free_type_vars, instantiate_code_block,
    instantiate_code_type, Subst, subst_chi, subst_instr_seq, subst_q,
    subst_stack, subst_ty,
)
from repro.tal.syntax import (
    CodeType, DeltaBind, Fold, Halt, HCode, InstrSeq, Jmp, KIND_ALPHA,
    KIND_EPS, KIND_ZETA, Loc, Mv, NIL_STACK, Pack, QEnd, QEps, QIdx, QReg,
    RegFileTy, RegOp, seq, StackTy, TBox, TExists, TInt, TRec, TRef,
    TupleTy, TUnit, TVar, TyApp, UnfoldI, Unpack, WInt, WLoc,
)

ALPHA = lambda name, ty: Subst.single(KIND_ALPHA, name, ty)
ZETA = lambda name, sigma: Subst.single(KIND_ZETA, name, sigma)
EPS = lambda name, q: Subst.single(KIND_EPS, name, q)


class TestSubstConstruction:
    def test_kind_checked(self):
        with pytest.raises(TypeError):
            Subst({(KIND_ALPHA, "a"): NIL_STACK})
        with pytest.raises(TypeError):
            Subst({(KIND_ZETA, "z"): TInt()})
        with pytest.raises(TypeError):
            Subst({(KIND_EPS, "e"): TInt()})

    def test_empty(self):
        assert Subst().is_empty()


class TestTypeSubst:
    def test_var_hit(self):
        assert subst_ty(TVar("a"), ALPHA("a", TInt())) == TInt()

    def test_var_miss(self):
        assert subst_ty(TVar("b"), ALPHA("a", TInt())) == TVar("b")

    def test_under_ref(self):
        assert subst_ty(TRef((TVar("a"),)), ALPHA("a", TInt())) == \
            TRef((TInt(),))

    def test_shadowed_binder(self):
        ty = TExists("a", TVar("a"))
        assert subst_ty(ty, ALPHA("a", TInt())) == ty

    def test_capture_avoided_in_exists(self):
        # (exists b. a)[b/a] must rename the binder
        ty = TExists("b", TVar("a"))
        out = subst_ty(ty, ALPHA("a", TVar("b")))
        assert isinstance(out, TExists)
        assert out.var != "b"
        assert out.body == TVar("b")

    def test_mu_substitution(self):
        ty = TRec("a", TRef((TVar("a"), TVar("b"))))
        out = subst_ty(ty, ALPHA("b", TInt()))
        assert out == TRec("a", TRef((TVar("a"), TInt())))


class TestStackSubst:
    def test_tail_replaced(self):
        sigma = StackTy((TInt(),), "z")
        out = subst_stack(sigma, ZETA("z", StackTy((TUnit(),), None)))
        assert out == StackTy((TInt(), TUnit()), None)

    def test_tail_replaced_by_variable_stack(self):
        sigma = StackTy((), "z")
        out = subst_stack(sigma, ZETA("z", StackTy((TInt(),), "w")))
        assert out == StackTy((TInt(),), "w")

    def test_prefix_types_substituted(self):
        sigma = StackTy((TVar("a"),), "z")
        out = subst_stack(sigma, ALPHA("a", TInt()))
        assert out == StackTy((TInt(),), "z")


class TestMarkerSubst:
    def test_eps_hit(self):
        assert subst_q(QEps("e"), EPS("e", QIdx(2))) == QIdx(2)

    def test_eps_to_end(self):
        end = QEnd(TInt(), NIL_STACK)
        assert subst_q(QEps("e"), EPS("e", end)) == end

    def test_end_components_substituted(self):
        q = QEnd(TVar("a"), StackTy((), "z"))
        s = Subst({(KIND_ALPHA, "a"): TInt(),
                   (KIND_ZETA, "z"): NIL_STACK})
        assert subst_q(q, s) == QEnd(TInt(), NIL_STACK)

    def test_reg_and_idx_inert(self):
        assert subst_q(QReg("ra"), EPS("e", QIdx(0))) == QReg("ra")
        assert subst_q(QIdx(1), EPS("e", QIdx(0))) == QIdx(1)


class TestCodeTypeSubst:
    def test_bound_vars_shielded(self):
        ct = CodeType((DeltaBind(KIND_ZETA, "z"),), RegFileTy(),
                      StackTy((), "z"), QEnd(TInt(), StackTy((), "z")))
        boxed = TBox(ct)
        out = subst_ty(boxed, ZETA("z", NIL_STACK))
        assert out == boxed

    def test_binder_renamed_on_capture(self):
        # forall[zeta z].{r1: a; z}end{int; z} with a := box forall[].{;z'}...
        # where the replacement mentions a *free* z: binder must rename.
        ct = CodeType((DeltaBind(KIND_ZETA, "z"),),
                      RegFileTy.of(r1=TVar("a")), StackTy((), "z"),
                      QEnd(TInt(), StackTy((), "z")))
        replacement = TBox(CodeType((), RegFileTy(), StackTy((), "z"),
                                    QEnd(TInt(), StackTy((), "z"))))
        out = subst_ty(TBox(ct), ALPHA("a", replacement))
        assert isinstance(out, TBox) and isinstance(out.psi, CodeType)
        new_binder = out.psi.delta[0].name
        assert new_binder != "z"
        # the replacement's free z must still be free (not captured)
        assert (KIND_ZETA, "z") in free_type_vars(out)


class TestInstrSeqSubst:
    def test_halt_annotations(self):
        iseq = seq(Halt(TVar("a"), StackTy((), "z"), "r1"))
        s = Subst({(KIND_ALPHA, "a"): TInt(), (KIND_ZETA, "z"): NIL_STACK})
        out = subst_instr_seq(iseq, s)
        assert out == seq(Halt(TInt(), NIL_STACK, "r1"))

    def test_operand_tyapp(self):
        iseq = seq(Mv("ra", TyApp(WLoc(Loc("l")), (StackTy((), "z"),
                                                   QEps("e")))),
                   Halt(TInt(), NIL_STACK, "r1"))
        s = Subst({(KIND_ZETA, "z"): NIL_STACK,
                   (KIND_EPS, "e"): QEnd(TInt(), NIL_STACK)})
        out = subst_instr_seq(iseq, s)
        mv = out.instrs[0]
        assert mv == Mv("ra", TyApp(WLoc(Loc("l")),
                                    (NIL_STACK, QEnd(TInt(), NIL_STACK))))

    def test_unpack_shadows_rest(self):
        # unpack <a, r1> u; halt a...  -- the alpha in the rest is bound.
        iseq = seq(Unpack("a", "r1", RegOp("r2")),
                   Halt(TVar("a"), NIL_STACK, "r1"))
        out = subst_instr_seq(iseq, ALPHA("a", TInt()))
        assert out.term == Halt(TVar("a"), NIL_STACK, "r1")

    def test_unpack_renames_on_capture(self):
        # substituting a := <something mentioning b> through unpack <b, ..>
        iseq = seq(Unpack("b", "r1", RegOp("r2")),
                   Halt(TRef((TVar("a"), TVar("b"))), NIL_STACK, "r1"))
        out = subst_instr_seq(iseq, ALPHA("a", TVar("b")))
        unpack = out.instrs[0]
        assert isinstance(unpack, Unpack)
        assert unpack.alpha != "b"
        halt = out.term
        assert halt.ty == TRef((TVar("b"), TVar(unpack.alpha)))


class TestInstantiation:
    CT = CodeType(
        (DeltaBind(KIND_ALPHA, "a"), DeltaBind(KIND_ZETA, "z"),
         DeltaBind(KIND_EPS, "e")),
        RegFileTy.of(r1=TVar("a")), StackTy((TVar("a"),), "z"), QEps("e"))

    def test_full_instantiation(self):
        out = instantiate_code_type(
            self.CT, (TInt(), NIL_STACK, QEnd(TInt(), NIL_STACK)))
        assert out.delta == ()
        assert out.chi.get("r1") == TInt()
        assert out.sigma == StackTy((TInt(),), None)
        assert out.q == QEnd(TInt(), NIL_STACK)

    def test_partial_instantiation(self):
        out = instantiate_code_type(self.CT, (TInt(),))
        assert len(out.delta) == 2
        assert out.sigma == StackTy((TInt(),), "z")

    def test_kind_mismatch_rejected(self):
        with pytest.raises(TypeError):
            instantiate_code_type(self.CT, (NIL_STACK,))

    def test_too_many_rejected(self):
        with pytest.raises(ValueError):
            delta_subst((), (TInt(),))

    def test_block_instantiation_rewrites_body(self):
        block = HCode(
            (DeltaBind(KIND_ZETA, "z"),), RegFileTy.of(r1=TInt()),
            StackTy((), "z"), QEnd(TInt(), StackTy((), "z")),
            seq(Halt(TInt(), StackTy((), "z"), "r1")))
        out = instantiate_code_block(block, (NIL_STACK,))
        assert out.delta == ()
        assert out.instrs == seq(Halt(TInt(), NIL_STACK, "r1"))


class TestFreeTypeVars:
    def test_code_type_binds(self):
        ct = TestInstantiation.CT
        assert free_type_vars(ct) == set()

    def test_free_in_stack(self):
        assert free_type_vars(StackTy((TVar("a"),), "z")) == \
            {(KIND_ALPHA, "a"), (KIND_ZETA, "z")}

    def test_free_in_marker(self):
        assert free_type_vars(QEps("e")) == {(KIND_EPS, "e")}
        assert free_type_vars(QEnd(TVar("a"), NIL_STACK)) == \
            {(KIND_ALPHA, "a")}

    def test_pack_operand(self):
        ex = TExists("a", TVar("a"))
        pack = Pack(TVar("b"), WInt(1), ex)
        assert free_type_vars(pack) == {(KIND_ALPHA, "b")}

"""Integration tests: every paper example typechecks and reproduces the
figure's behaviour end-to-end (the per-figure index of DESIGN.md)."""

import pytest

from repro.analysis.trace import control_flow_table
from repro.equiv.checker import check_equivalence
from repro.errors import FTTypeError, FuelExhausted
from repro.f.eval import evaluate
from repro.f.syntax import App, IntE
from repro.ft.machine import evaluate_ft, run_ft_component
from repro.ft.typecheck import check_ft_expr
from repro.papers_examples import (
    fig3_call_to_call, fig11_jit, fig16_two_blocks, fig17_factorial,
    import_example, push7, sec3_sequences,
)
from repro.tal.machine import run_component
from repro.tal.syntax import TInt, WInt
from repro.tal.typecheck import check_program


class TestFig3And4:
    def test_typechecks(self):
        check_program(fig3_call_to_call.build(), TInt())

    def test_runs_to_two(self):
        halted, _ = run_component(fig3_call_to_call.build())
        assert halted.word == WInt(2)

    def test_fig4_arrow_sequence(self):
        _, machine = run_component(fig3_call_to_call.build(), trace=True)
        rows = control_flow_table(machine.trace)
        arrows = [(r.kind, r.target) for r in rows if r.kind != "enter"]
        assert arrows == [
            ("call", "l1"), ("call", "l2"), ("jmp", "l2aux"),
            ("ret", "l2ret"), ("ret", "l1ret"), ("halt", ""),
        ]

    def test_fig4_final_state(self):
        _, machine = run_component(fig3_call_to_call.build(), trace=True)
        final = control_flow_table(machine.trace)[-1]
        assert ("r1", "2") in final.regs
        assert final.stack == ()


class TestSec3Snippets:
    def test_sequence_table(self):
        states = sec3_sequences.sequence_example_states()
        assert str(states[1][1].chi) == "r1: int"
        assert str(states[2][1].sigma) == "unit :: nil"
        assert str(states[3][1].sigma) == "int :: nil"

    def test_all_snippet_programs_run(self):
        for build, expected in (
                (sec3_sequences.build_sequence_program, WInt(42)),
                (sec3_sequences.build_call_program, WInt(10))):
            halted, _ = run_component(build())
            assert halted.word == expected


class TestSec42Examples:
    def test_import_example_judgment(self):
        from repro.ft.typecheck import FTTypechecker
        from repro.tal.syntax import NIL_STACK, RegFileTy
        from repro.tal.typecheck import InstrState

        checker = FTTypechecker()
        st = InstrState((), RegFileTy(), NIL_STACK, import_example.MARKER)
        out = checker.step_instruction(
            st, import_example.build_import_instruction())
        # the paper's postcondition:  . ; r1: int ; nil ; end{int; nil}
        assert out.chi.registers() == ("r1",)
        assert out.chi.get("r1") == TInt()
        assert out.q == import_example.MARKER

    def test_import_example_runs(self):
        halted, _ = run_ft_component(import_example.build())
        assert halted.word == WInt(2)

    def test_push7_typechecks_as_stack_lambda(self):
        ty, _ = check_ft_expr(push7.build())
        assert str(ty) == "(int) [; int] -> unit"

    def test_push7_rejected_as_plain_lambda(self):
        with pytest.raises(FTTypeError):
            check_ft_expr(push7.build_ill_typed())


class TestFig11And12:
    def test_source_and_jit_agree(self):
        assert evaluate(fig11_jit.build_source()) == IntE(2)
        value, _ = evaluate_ft(fig11_jit.build_jit())
        assert value == IntE(2)

    def test_jit_typechecks_at_int(self):
        ty, _ = check_ft_expr(fig11_jit.build_jit())
        assert str(ty) == "int"

    def test_fig12_callback_depth(self):
        """Fig 12's nesting: F -> T(l) -> F(g) -> T(lh) crossings appear
        in the trace."""
        _, machine = evaluate_ft(fig11_jit.build_jit(), trace=True)
        boundary_events = [ev for ev in machine.trace
                           if ev.kind == "boundary"]
        assert len(boundary_events) >= 4  # two crossings each way


class TestFig16:
    def test_both_typecheck(self):
        for build in (fig16_two_blocks.build_f1, fig16_two_blocks.build_f2):
            ty, _ = check_ft_expr(build())
            assert str(ty) == "(int) -> int"

    def test_pointwise_behaviour(self):
        f1, f2 = fig16_two_blocks.build_f1(), fig16_two_blocks.build_f2()
        for n in (-2, 0, 1, 9):
            v1, _ = evaluate_ft(App(f1, (IntE(n),)))
            v2, _ = evaluate_ft(App(f2, (IntE(n),)))
            assert v1 == v2 == IntE(n + 2)

    def test_block_structure_differs(self):
        """The point of the figure: same behaviour, different block count."""
        f1, f2 = fig16_two_blocks.build_f1(), fig16_two_blocks.build_f2()
        b1 = f1.body.fn.comp
        b2 = f2.body.fn.comp
        assert len(b1.heap) == 1
        assert len(b2.heap) == 2

    def test_equivalence_confirmed(self):
        report = check_equivalence(
            fig16_two_blocks.build_f1(), fig16_two_blocks.build_f2(),
            fig16_two_blocks.ARROW, fuel=20_000)
        assert report.equivalent
        assert report.trials >= 10


class TestFig17:
    def test_agreement_on_naturals(self):
        ff = fig17_factorial.build_fact_f()
        ft = fig17_factorial.build_fact_t()
        for n in range(0, 8):
            vf, _ = evaluate_ft(App(ff, (IntE(n),)))
            assert vf == IntE(fig17_factorial.expected(n))
            vt, _ = evaluate_ft(App(ft, (IntE(n),)))
            assert vt == IntE(fig17_factorial.expected(n))

    @pytest.mark.parametrize("build", [fig17_factorial.build_fact_f,
                                       fig17_factorial.build_fact_t])
    def test_divergence_on_negatives(self, build):
        with pytest.raises(FuelExhausted):
            evaluate_ft(App(build(), (IntE(-2),)), fuel=5_000)

    def test_equivalence_confirmed(self):
        report = check_equivalence(
            fig17_factorial.build_fact_f(), fig17_factorial.build_fact_t(),
            fig17_factorial.ARROW, fuel=20_000)
        assert report.equivalent

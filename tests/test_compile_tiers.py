"""Tier compatibility: the arithmetic tier is the historical JIT.

Satellite obligation of the compiler PR: routing the JIT facade
(:mod:`repro.jit.compiler`) through the tiered pipeline must not change
what the JIT emits.  The differential test below compiles the same
lambdas through the facade and through :func:`repro.compile.arith
.compile_arith` directly and asserts *identical components* -- same
Fig 16-style multi-block ``if0`` splitting, same instruction sequences
modulo the deterministic per-compilation name supply (which makes them
literally equal).  Also pinned: the facade's default tier set is arith
only (general is opt-in), and the tier knob threads through
``jit_rewrite`` and the resilience safety net.
"""

import pytest

from repro.errors import CompileError
from repro.f.syntax import (
    App, BinOp, FArrow, FInt, FUnit, If0, IntE, Lam, Var,
)
from repro.ft.machine import evaluate_ft
from repro.jit.compiler import (
    ALL_TIERS, JIT_TIERS, TIER_ARITH, compile_function, is_compilable,
    jit_rewrite,
)
from repro.compile.arith import compile_arith, is_arith_compilable
from repro.compile.names import NameSupply
from repro.compile.pipeline import clear_compile_cache, compile_term


def lam1(body):
    return Lam((("x", FInt()),), body)


ARITH_CASES = [
    ("identity", lam1(Var("x"))),
    ("affine", lam1(BinOp("+", BinOp("*", Var("x"), IntE(3)), IntE(7)))),
    ("branch", lam1(If0(Var("x"), IntE(100), Var("x")))),
    ("nested-branch",
     lam1(If0(Var("x"), If0(Var("x"), IntE(1), IntE(2)), IntE(3)))),
    ("two-args", Lam((("x", FInt()), ("y", FInt())),
                     BinOp("-", Var("x"), Var("y")))),
]


class TestArithTierIsTheOldJit:
    """Facade output == direct arith-emitter output, component for
    component."""

    @pytest.mark.parametrize("name,source", ARITH_CASES,
                             ids=[n for n, _ in ARITH_CASES])
    def test_component_identical(self, name, source):
        clear_compile_cache()
        via_facade = compile_function(source).body.fn.comp
        direct = compile_arith(source, NameSupply())
        assert via_facade == direct

    def test_fig16_block_shape_preserved(self):
        """The historical shape: straight line = 1 block, one ``if0`` =
        3 blocks, nested ``if0`` = 5 blocks."""
        counts = {
            "identity": 1, "affine": 1, "branch": 3, "nested-branch": 5,
        }
        for name, source in ARITH_CASES:
            if name not in counts:
                continue
            comp = compile_function(source).body.fn.comp
            assert len(comp.heap) == counts[name], name

    def test_pipeline_reports_arith_tier(self):
        for _, source in ARITH_CASES:
            assert compile_term(source).tier == TIER_ARITH


class TestFacadeDefaults:
    """The JIT facade keeps the historical contract: arith only."""

    def test_default_tier_set(self):
        assert JIT_TIERS == (TIER_ARITH,)
        assert JIT_TIERS != ALL_TIERS

    def test_is_compilable_is_the_arith_predicate(self):
        ho = Lam((("g", FArrow((FInt(),), FInt())),),
                 App(Var("g"), (IntE(5),)))
        assert is_compilable(lam1(Var("x")))
        assert not is_compilable(ho)
        assert is_arith_compilable(lam1(Var("x")))

    def test_non_arith_still_raises_by_default(self):
        with pytest.raises(CompileError):
            compile_function(Lam((("u", FUnit()),), IntE(1)))

    def test_general_tier_is_opt_in(self):
        ho = Lam((("g", FArrow((FInt(),), FInt())),),
                 App(Var("g"), (IntE(5),)))
        compiled = compile_function(ho, tiers=ALL_TIERS)
        assert isinstance(compiled, Lam)
        inc = lam1(BinOp("+", Var("x"), IntE(1)))
        got, _ = evaluate_ft(App(compiled, (inc,)))
        assert got == IntE(6)


class TestRewriteTierThreading:
    def test_default_rewrite_skips_general_lambdas(self):
        ho = Lam((("g", FArrow((FInt(),), FInt())),),
                 App(Var("g"), (IntE(5),)))
        prog = App(ho, (lam1(BinOp("+", Var("x"), IntE(1))),))
        rewritten = jit_rewrite(prog)
        # the arith argument lambda compiled; the higher-order one did not
        assert "FT[(int) -> int]" in str(rewritten)
        assert "FT[((int) -> int) -> int]" not in str(rewritten)

    def test_all_tiers_rewrite_compiles_the_outer_lambda(self):
        ho = Lam((("g", FArrow((FInt(),), FInt())),),
                 App(Var("g"), (IntE(5),)))
        prog = App(ho, (lam1(BinOp("+", Var("x"), IntE(1))),))
        rewritten = jit_rewrite(prog, tiers=ALL_TIERS)
        assert "FT[((int) -> int) -> int]" in str(rewritten)
        got, _ = evaluate_ft(rewritten)
        assert got == IntE(6)

    def test_safety_net_threads_tiers(self):
        from repro.resilience.safety_net import Quarantine, run_guarded

        ho = Lam((("g", FArrow((FInt(),), FInt())),),
                 App(Var("g"), (IntE(5),)))
        prog = App(ho, (lam1(BinOp("+", Var("x"), IntE(1))),))
        q = Quarantine()
        value, _, report = run_guarded(prog, quarantine=q)
        assert value == IntE(6) and report.jitted == 1
        value, _, report = run_guarded(prog, quarantine=q,
                                       tiers=ALL_TIERS)
        assert value == IntE(6) and report.jitted == 2
        assert not report.fell_back

"""Tests for the serving layer's LRU and content-addressed result cache."""

from repro.serve.cache import LRUCache, ResultCache, job_cache_key
from repro.serve.protocol import Job, JobOptions, JobResult


class TestLRUCache:
    def test_hit_miss_accounting(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert (cache.hits, cache.misses) == (1, 1)

    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")            # refresh a; b becomes the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)        # rewrite refreshes too
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_clear_and_stats(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        stats = cache.stats()
        assert stats["size"] == 0 and stats["maxsize"] == 4

    def test_mirrors_counters_when_obs_enabled(self):
        from repro import obs

        cache = LRUCache(4, metric_prefix="test.lru")
        obs.enable(record=False)
        try:
            cache.get("nope")
            cache.put("a", 1)
            cache.get("a")
            snapshot = obs.OBS.metrics.snapshot()
        finally:
            obs.disable()
            obs.reset()
        assert snapshot["counters"]["test.lru.miss"] == 1
        assert snapshot["counters"]["test.lru.hit"] == 1


class TestJobCacheKey:
    def test_id_is_not_part_of_the_address(self):
        a = Job("run", id="first", source="(1 + 1)")
        b = Job("run", id="second", source="(1 + 1)")
        assert job_cache_key(a) == job_cache_key(b)

    def test_operational_options_are_not_part_of_the_address(self):
        a = Job("run", source="(1 + 1)", options=JobOptions(timeout=1.0))
        b = Job("run", source="(1 + 1)", options=JobOptions(timeout=9.0))
        assert job_cache_key(a) == job_cache_key(b)

    def test_semantic_options_are(self):
        a = Job("run", source="(1 + 1)", options=JobOptions(fuel=10))
        b = Job("run", source="(1 + 1)", options=JobOptions(fuel=20))
        assert job_cache_key(a) != job_cache_key(b)

    def test_kind_and_source_are(self):
        run = Job("run", source="(1 + 1)")
        parse = Job("parse", source="(1 + 1)")
        other = Job("run", source="(1 + 2)")
        assert len({job_cache_key(j) for j in (run, parse, other)}) == 3


class TestResultCache:
    def _ok(self, job, value="2"):
        return JobResult(id=job.id, kind=job.kind, status="ok",
                         output={"value": value}, duration_ms=1.5)

    def test_hit_is_a_flagged_copy_with_the_callers_id(self):
        cache = ResultCache()
        job = Job("run", id="orig", source="(1 + 1)")
        cache.put(job, self._ok(job))
        again = Job("run", id="resubmit", source="(1 + 1)")
        hit = cache.get(again)
        assert hit is not None
        assert hit.cached and hit.id == "resubmit" and hit.attempts == 0
        assert hit.output == {"value": "2"}
        # the stored record is untouched
        assert cache.get(job).id == "orig"

    def test_only_ok_results_are_stored(self):
        cache = ResultCache()
        job = Job("run", id="j", source="(1 / 0)")
        cache.put(job, JobResult.failure(job, "error", "boom"))
        cache.put(job, JobResult.failure(job, "crashed", "boom"))
        assert cache.get(job) is None and len(cache) == 0

    def test_no_cache_jobs_always_miss(self):
        cache = ResultCache()
        cached_job = Job("run", id="a", source="(1 + 1)")
        cache.put(cached_job, self._ok(cached_job))
        bypass = Job("run", id="b", source="(1 + 1)",
                     options=JobOptions(no_cache=True))
        assert cache.get(bypass) is None
        cache.put(bypass, self._ok(bypass))
        assert len(cache) == 1            # the bypass was not stored either

    def test_stats_shape(self):
        cache = ResultCache(maxsize=8)
        assert set(cache.stats()) == {"size", "maxsize", "hits", "misses",
                                      "evictions"}

"""Tests for the unified resource governor (:mod:`repro.resilience.budget`).

One :class:`Budget` replaces the three ad-hoc fuel parameters: fuel
(machine steps), heap cells, and evaluation/stack depth all live behind
one object threaded through the F, T, and FT machines.
"""

import pickle

import pytest

from repro.errors import (
    FuelExhausted, HeapExhausted, ResourceExhausted, StackDepthExhausted,
)
from repro.resilience.budget import (
    Budget, DEFAULT_BUDGET, DEFAULT_DEPTH, DEFAULT_FUEL, DEFAULT_HEAP,
)


class TestDefaults:
    def test_one_unified_default(self):
        # The old split (F at 100k, TAL/FT at 1M) is gone: one constant.
        assert DEFAULT_FUEL == DEFAULT_HEAP == DEFAULT_DEPTH == 1_000_000
        b = Budget()
        assert b.max_fuel == DEFAULT_FUEL
        assert b.max_heap == DEFAULT_HEAP
        assert b.max_depth == DEFAULT_DEPTH

    def test_machines_share_the_default(self):
        from repro.f.eval import FEvaluator
        from repro.ft.machine import FTMachine
        from repro.tal.machine import TalMachine
        from repro.f.syntax import IntE

        assert FEvaluator(IntE(1)).budget.max_fuel == DEFAULT_FUEL
        assert TalMachine().budget.max_fuel == DEFAULT_FUEL
        assert FTMachine().budget.max_fuel == DEFAULT_FUEL

    def test_of_passes_through_an_existing_budget(self):
        b = Budget(fuel=7)
        assert Budget.of(budget=b) is b
        assert Budget.of(fuel=9).max_fuel == 9

    def test_default_budget_constant(self):
        assert DEFAULT_BUDGET.max_fuel == DEFAULT_FUEL


class TestGovernors:
    def test_fuel_exhaustion(self):
        b = Budget(fuel=3)
        b.consume_fuel()
        b.consume_fuel()
        b.consume_fuel()
        with pytest.raises(FuelExhausted) as exc:
            b.consume_fuel()
        assert exc.value.resource == "fuel"
        assert exc.value.limit == 3

    def test_heap_exhaustion(self):
        b = Budget(heap=2)
        b.charge_heap(2)
        with pytest.raises(HeapExhausted) as exc:
            b.charge_heap(1)
        assert exc.value.resource == "heap"

    def test_depth_exhaustion(self):
        b = Budget(depth=10)
        b.check_depth(10)
        with pytest.raises(StackDepthExhausted):
            b.check_depth(11)

    def test_depth_high_water_tracks_maximum(self):
        b = Budget()
        b.check_depth(3)
        b.check_depth(7)
        b.check_depth(2)
        assert b.depth_high_water == 7

    def test_one_catch_covers_every_dimension(self):
        # The structured hierarchy: callers that do not care which
        # governor tripped catch the one parent type.
        for tripped in (Budget(fuel=0), Budget(heap=0), Budget(depth=0)):
            with pytest.raises(ResourceExhausted):
                tripped.consume_fuel()
                tripped.charge_heap()
                tripped.check_depth(1)

    def test_spent_summary(self):
        b = Budget(fuel=100, heap=50, depth=20)
        b.consume_fuel(4)
        b.charge_heap(3)
        b.check_depth(2)
        spent = b.spent()
        assert spent["fuel_used"] == 4
        assert spent["heap_used"] == 3
        assert spent["depth_high_water"] == 2
        assert spent["fuel_max"] == 100

    def test_refill_resets_fuel_only(self):
        b = Budget(fuel=5, heap=100)
        b.consume_fuel(5)
        b.charge_heap(7)
        b.refill()
        assert b.fuel_used == 0
        assert b.heap_used == 7         # heap charges persist across slices
        b.refill(fuel=9)
        assert b.max_fuel == 9


class TestSoftLimits:
    def test_soft_warning_fires_once_per_resource(self):
        from repro import obs

        obs.reset()
        obs.enable(record=False)
        try:
            b = Budget(fuel=10)
            for _ in range(9):
                b.consume_fuel()
            snapshot = obs.OBS.metrics.snapshot()
        finally:
            obs.disable()
        assert snapshot["counters"].get("resilience.soft_limit.fuel") == 1

    def test_exhaustion_metric(self):
        from repro import obs

        obs.reset()
        obs.enable(record=False)
        try:
            b = Budget(heap=1)
            with pytest.raises(HeapExhausted):
                b.charge_heap(5)
            snapshot = obs.OBS.metrics.snapshot()
        finally:
            obs.disable()
        assert snapshot["counters"].get("resilience.exhausted.heap") == 1


class TestPickling:
    def test_budget_roundtrips(self):
        b = Budget(fuel=100, heap=50, depth=20)
        b.consume_fuel(12)
        b.charge_heap(5)
        b.check_depth(9)
        clone = pickle.loads(pickle.dumps(b))
        assert clone.fuel_used == 12
        assert clone.heap_used == 5
        assert clone.depth_high_water == 9
        assert clone.max_fuel == 100
        # And the clone keeps governing.
        with pytest.raises(FuelExhausted):
            clone.consume_fuel(100)


class TestMachineIntegration:
    def test_f_deep_application_is_a_verdict_not_a_crash(self):
        # Satellite fix: deep F applications used to die with a raw
        # Python RecursionError before fuel ever ran out.
        from repro.f.eval import evaluate
        from repro.f.syntax import (
            App, FArrow, FInt, IntE, Lam, Var, BinOp,
        )

        f = Lam((("x", FInt()),), BinOp("+", Var("x"), IntE(1)))
        expr = IntE(0)
        for _ in range(6000):
            expr = App(f, (expr,))
        value = evaluate(expr)
        assert value == IntE(6000)

    def test_f_depth_ceiling_surfaces_structured(self):
        from repro.f.eval import evaluate
        from repro.f.syntax import App, FInt, IntE, Lam, Var, BinOp

        f = Lam((("x", FInt()),), BinOp("+", Var("x"), IntE(1)))
        expr = IntE(0)
        for _ in range(100):
            expr = App(f, (expr,))
        with pytest.raises(StackDepthExhausted):
            evaluate(expr, depth=10)

    def test_tal_heap_governor(self):
        from repro.errors import HeapExhausted as HE
        from repro.serve.protocol import Job, JobOptions
        from repro.serve.executor import execute_job

        result = execute_job(Job("run", example="fact-t",
                                 options=JobOptions(heap=1)))
        assert result.status == "resource_exhausted"
        assert result.output["resource"] == "heap"

    def test_ft_fuel_governor(self):
        from repro.ft.machine import evaluate_ft
        from repro.papers_examples import resolve_example

        _, build = resolve_example("fact-f")
        with pytest.raises(FuelExhausted):
            evaluate_ft(build(), fuel=3)

"""Tests for the ``funtal jit`` subcommand."""

import pytest

from repro.cli import main


@pytest.fixture
def fn_file(tmp_path):
    def write(source):
        path = tmp_path / "fn.ft"
        path.write_text(source)
        return str(path)

    return write


class TestJitCommand:
    def test_compiles_and_prints_blocks(self, fn_file, capsys):
        path = fn_file("lam (x: int). (x * 3)")
        assert main(["jit", path]) == 0
        out = capsys.readouterr().out
        assert "component:" in out
        assert "ret ra {r1}" in out

    def test_branching_lambda_shows_blocks(self, fn_file, capsys):
        path = fn_file("lam (x: int). if0 x {1} {2}")
        assert main(["jit", path]) == 0
        out = capsys.readouterr().out
        assert "_else" in out and "_join" in out

    def test_check_flag_discharges_obligation(self, fn_file, capsys):
        path = fn_file("lam (x: int). (x + 1)")
        assert main(["jit", path, "--check", "--fuel", "10000"]) == 0
        assert "indistinguishable" in capsys.readouterr().out

    def test_optimize_flag_shrinks(self, fn_file, capsys):
        path = fn_file("lam (x: int). ((x * 2) + 1)")
        assert main(["jit", path]) == 0
        plain = capsys.readouterr().out
        assert main(["jit", path, "--optimize"]) == 0
        optimized = capsys.readouterr().out
        assert optimized.count(";") < plain.count(";")

    def test_optimized_and_checked(self, fn_file, capsys):
        path = fn_file("lam (x: int). ((x * 2) + 1)")
        assert main(["jit", path, "--optimize", "--check",
                     "--fuel", "10000"]) == 0

    def test_ineligible_rejected(self, fn_file, capsys):
        path = fn_file("lam (u: unit). 1")
        assert main(["jit", path]) == 2
        assert "not a compilable" in capsys.readouterr().err

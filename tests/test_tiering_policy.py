"""Tests for :mod:`repro.tiering.policy` -- the unified promotion knobs.

Satellite 1 of the tiering ISSUE: ``FUNTAL_TAL_JIT_THRESHOLD``,
``funtal top --promote-threshold`` and ``FUNTAL_TAL_PROMOTE`` became
fields of one :class:`TieringPolicy` with documented precedence
``env < config < cli``; the old environment spellings survive as
deprecated aliases that warn.
"""

import dataclasses
import warnings

import pytest

from repro.compile.pipeline import ALL_TIERS, TIER_ARITH
from repro.tiering.policy import (
    TIERING_MODES, TieringPolicy, active_policy, resolve_tiers,
    set_active_policy,
)


@pytest.fixture(autouse=True)
def _restore_active_policy():
    yield
    set_active_policy(None)


class TestPolicyBasics:
    def test_default_is_off(self):
        policy = TieringPolicy()
        assert policy.mode == "off"
        assert not policy.enabled

    def test_modes_enumerated(self):
        assert TIERING_MODES == ("off", "auto", "aggressive")
        for mode in TIERING_MODES:
            assert TieringPolicy(mode=mode).mode == mode

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            TieringPolicy(mode="turbo")

    @pytest.mark.parametrize("field,value", [
        ("promote_threshold", 0),
        ("tal_jit_threshold", 0),
        ("max_inflight_promotions", 0),
        ("demote_after", 0),
    ])
    def test_bad_thresholds_rejected(self, field, value):
        with pytest.raises(ValueError):
            TieringPolicy(**{field: value})

    def test_frozen(self):
        policy = TieringPolicy()
        with pytest.raises(dataclasses.FrozenInstanceError):
            policy.mode = "auto"

    def test_effective_threshold_hysteresis(self):
        assert TieringPolicy(
            mode="auto", promote_threshold=1000).effective_threshold() \
            == 1000
        assert TieringPolicy(
            mode="aggressive",
            promote_threshold=1000).effective_threshold() == 100
        # Never collapses to zero.
        assert TieringPolicy(
            mode="aggressive", promote_threshold=5).effective_threshold() \
            == 1

    def test_jit_tiers_by_mode(self):
        assert TieringPolicy(mode="off").jit_tiers() == (TIER_ARITH,)
        assert TieringPolicy(mode="auto").jit_tiers() == (TIER_ARITH,)
        assert TieringPolicy(mode="aggressive").jit_tiers() == ALL_TIERS

    def test_to_dict_round_trips(self):
        policy = TieringPolicy(mode="auto", tal_promote=("aa", "bb"))
        as_dict = policy.to_dict()
        assert as_dict["tal_promote"] == ["aa", "bb"]
        as_dict["tal_promote"] = tuple(as_dict["tal_promote"])
        assert TieringPolicy(**as_dict) == policy


class TestEnvResolution:
    def test_from_env_reads_new_spellings(self):
        policy = TieringPolicy.from_env({
            "FUNTAL_TIERING": "auto",
            "FUNTAL_TIERING_THRESHOLD": "123",
            "FUNTAL_TIERING_TAL_JIT_THRESHOLD": "7",
            "FUNTAL_TIERING_PROMOTE": "aa, bb",
            "FUNTAL_TIERING_STORE": "/tmp/s",
        })
        assert policy.mode == "auto"
        assert policy.promote_threshold == 123
        assert policy.tal_jit_threshold == 7
        assert policy.tal_promote == ("aa", "bb")
        assert policy.store == "/tmp/s"

    def test_env_fields_audited(self):
        # Every env var maps to a real policy field.
        names = {f.name for f in dataclasses.fields(TieringPolicy)}
        for var, (target, parse) in TieringPolicy.ENV_FIELDS.items():
            assert var.startswith("FUNTAL_TIERING")
            assert target in names
            assert callable(parse)
        for old, new in TieringPolicy.DEPRECATED_ENV.items():
            assert new in TieringPolicy.ENV_FIELDS

    def test_deprecated_aliases_warn_and_apply(self):
        with pytest.warns(DeprecationWarning, match="FUNTAL_TAL_PROMOTE"):
            policy = TieringPolicy.from_env({
                "FUNTAL_TAL_PROMOTE": "cc",
            })
        assert policy.tal_promote == ("cc",)
        with pytest.warns(DeprecationWarning,
                          match="FUNTAL_TAL_JIT_THRESHOLD"):
            policy = TieringPolicy.from_env({
                "FUNTAL_TAL_JIT_THRESHOLD": "3",
            })
        assert policy.tal_jit_threshold == 3

    def test_new_spelling_wins_over_deprecated(self):
        with pytest.warns(DeprecationWarning):
            policy = TieringPolicy.from_env({
                "FUNTAL_TAL_JIT_THRESHOLD": "3",
                "FUNTAL_TIERING_TAL_JIT_THRESHOLD": "9",
            })
        assert policy.tal_jit_threshold == 9

    def test_bad_env_value_is_structured(self):
        with pytest.raises(ValueError, match="FUNTAL_TIERING_THRESHOLD"):
            TieringPolicy.from_env({"FUNTAL_TIERING_THRESHOLD": "lots"})

    def test_resolve_precedence_env_config_cli(self):
        env = {"FUNTAL_TIERING": "auto",
               "FUNTAL_TIERING_THRESHOLD": "100"}
        config = {"promote_threshold": 200, "tal_jit_threshold": 5}
        cli = {"promote_threshold": 300, "mode": None}
        policy = TieringPolicy.resolve(env, config, cli)
        assert policy.mode == "auto"            # env (cli None ignored)
        assert policy.promote_threshold == 300  # cli beats config
        assert policy.tal_jit_threshold == 5    # config beats env default

    def test_resolve_ignores_none_layers(self):
        policy = TieringPolicy.resolve({}, None, {"mode": None})
        assert policy == TieringPolicy()


class TestActivePolicy:
    def test_set_and_clear(self):
        policy = TieringPolicy(mode="auto")
        set_active_policy(policy)
        assert active_policy() is policy
        set_active_policy(None)
        assert active_policy().mode in TIERING_MODES

    def test_env_derived_when_unset(self, monkeypatch):
        set_active_policy(None)
        monkeypatch.setenv("FUNTAL_TIERING", "aggressive")
        assert active_policy().mode == "aggressive"
        monkeypatch.delenv("FUNTAL_TIERING")
        assert active_policy().mode == "off"


class TestResolveTiers:
    def test_explicit_request_wins(self):
        set_active_policy(TieringPolicy(mode="off"))
        assert resolve_tiers("general", "jit") == ("general",)
        assert resolve_tiers(("arith", "general")) == ("arith", "general")

    def test_jit_context_follows_policy(self):
        set_active_policy(TieringPolicy(mode="auto"))
        assert resolve_tiers(None, "jit") == (TIER_ARITH,)
        set_active_policy(TieringPolicy(mode="aggressive"))
        assert resolve_tiers(None, "jit") == ALL_TIERS

    def test_compile_and_promote_contexts_get_all_tiers(self):
        set_active_policy(TieringPolicy(mode="off"))
        assert resolve_tiers(None, "compile") == ALL_TIERS
        assert resolve_tiers(None, "promote") == ALL_TIERS

    def test_explicit_policy_argument(self):
        aggressive = TieringPolicy(mode="aggressive")
        assert resolve_tiers(None, "jit", aggressive) == ALL_TIERS

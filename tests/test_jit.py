"""Tests for the JIT-style F-to-T compiler (paper section 6, executable).

The correctness criterion is the paper's: the source lambda and its
compiled replacement are contextually equivalent in FT."""

import pytest

from repro.equiv.checker import check_equivalence
from repro.errors import FTTypeError
from repro.f.eval import evaluate
from repro.f.syntax import (
    App, BinOp, FArrow, FInt, FUnit, If0, IntE, Lam, UnitE, Var,
)
from repro.ft.machine import evaluate_ft
from repro.ft.syntax import Boundary
from repro.ft.typecheck import check_ft_expr
from repro.jit.compiler import (
    compile_function, CompileError, is_compilable, jit_rewrite,
)

from tests.strategies import random_f_int_expr


def lam1(body):
    return Lam((("x", FInt()),), body)


class TestEligibility:
    def test_arithmetic_lambda(self):
        assert is_compilable(lam1(BinOp("+", Var("x"), IntE(1))))

    def test_branching_lambda(self):
        assert is_compilable(lam1(If0(Var("x"), IntE(1), Var("x"))))

    def test_non_int_param_rejected(self):
        assert not is_compilable(Lam((("u", FUnit()),), IntE(1)))

    def test_free_variable_rejected(self):
        assert not is_compilable(lam1(Var("y")))

    def test_higher_order_body_rejected(self):
        assert not is_compilable(lam1(App(lam1(Var("x")), (IntE(1),))))

    def test_stack_lambda_rejected(self):
        from repro.papers_examples.push7 import build

        assert not is_compilable(build())

    def test_compile_ineligible_raises(self):
        with pytest.raises(CompileError):
            compile_function(Lam((("u", FUnit()),), IntE(1)))


class TestCompiledStructure:
    def test_replacement_shape(self):
        compiled = compile_function(lam1(Var("x")))
        assert isinstance(compiled, Lam)
        assert isinstance(compiled.body, App)
        assert isinstance(compiled.body.fn, Boundary)

    def test_straight_line_is_single_block(self):
        compiled = compile_function(lam1(BinOp("*", Var("x"), IntE(2))))
        assert len(compiled.body.fn.comp.heap) == 1

    def test_branch_makes_three_blocks(self):
        compiled = compile_function(
            lam1(If0(Var("x"), IntE(1), IntE(2))))
        assert len(compiled.body.fn.comp.heap) == 3

    def test_nested_branches_make_five_blocks(self):
        compiled = compile_function(
            lam1(If0(Var("x"), If0(Var("x"), IntE(1), IntE(2)), IntE(3))))
        assert len(compiled.body.fn.comp.heap) == 5

    def test_compiled_code_typechecks(self):
        for body in (Var("x"),
                     BinOp("-", IntE(10), Var("x")),
                     If0(Var("x"), IntE(0), BinOp("*", Var("x"),
                                                  Var("x")))):
            ty, _ = check_ft_expr(compile_function(lam1(body)))
            assert str(ty) == "(int) -> int"


class TestCompiledBehaviour:
    CASES = [
        ("identity", lam1(Var("x"))),
        ("affine", lam1(BinOp("+", BinOp("*", Var("x"), IntE(3)),
                              IntE(7)))),
        ("branch", lam1(If0(Var("x"), IntE(100), Var("x")))),
        ("nested-branch",
         lam1(If0(Var("x"), IntE(0),
                  If0(BinOp("-", Var("x"), IntE(1)), IntE(1),
                      BinOp("*", Var("x"), Var("x")))))),
    ]

    @pytest.mark.parametrize("name,source",
                             CASES, ids=[n for n, _ in CASES])
    def test_pointwise_agreement(self, name, source):
        compiled = compile_function(source)
        for n in (-5, -1, 0, 1, 2, 9):
            want = evaluate(App(source, (IntE(n),)))
            got, _ = evaluate_ft(App(compiled, (IntE(n),)))
            assert got == want

    def test_two_arguments(self):
        source = Lam((("x", FInt()), ("y", FInt())),
                     BinOp("-", Var("x"), Var("y")))
        compiled = compile_function(source)
        got, _ = evaluate_ft(App(compiled, (IntE(10), IntE(3))))
        assert got == IntE(7)   # argument order preserved

    def test_three_arguments(self):
        source = Lam((("a", FInt()), ("b", FInt()), ("c", FInt())),
                     BinOp("-", BinOp("*", Var("a"), Var("b")), Var("c")))
        compiled = compile_function(source)
        got, _ = evaluate_ft(App(compiled, (IntE(2), IntE(3), IntE(4))))
        assert got == IntE(2)

    def test_equivalence_checker_confirms(self):
        source = lam1(If0(Var("x"), IntE(1), BinOp("*", Var("x"),
                                                   IntE(2))))
        report = check_equivalence(source, compile_function(source),
                                   FArrow((FInt(),), FInt()),
                                   fuel=20_000)
        assert report.equivalent

    def test_miscompilation_would_be_caught(self):
        """Sanity: the obligation is not vacuous -- a wrong 'compiler'
        output is refuted."""
        source = lam1(BinOp("+", Var("x"), IntE(1)))
        wrong = compile_function(lam1(BinOp("+", Var("x"), IntE(2))))
        report = check_equivalence(source, wrong,
                                   FArrow((FInt(),), FInt()),
                                   fuel=20_000)
        assert not report.equivalent


class TestJitRewrite:
    def test_whole_program(self):
        prog = App(lam1(BinOp("*", Var("x"), IntE(3))), (IntE(14),))
        rewritten = jit_rewrite(prog)
        got, _ = evaluate_ft(rewritten)
        assert got == IntE(42)

    def test_rewrite_descends_into_higher_order(self):
        apply_fn = Lam((("g", FArrow((FInt(),), FInt())),),
                       App(Var("g"), (IntE(5),)))
        prog = App(apply_fn, (lam1(BinOp("+", Var("x"), IntE(1))),))
        rewritten = jit_rewrite(prog)
        # the argument lambda was compiled (a boundary appeared)
        assert "FT[" in str(rewritten)
        got, _ = evaluate_ft(rewritten)
        assert got == IntE(6)

    def test_rewrite_preserves_ineligible_code(self):
        prog = App(Lam((("u", FUnit()),), IntE(1)), (UnitE(),))
        assert jit_rewrite(prog) == prog

    def test_random_compilable_bodies(self):
        hits = 0
        for seed in range(30):
            body = random_f_int_expr(seed, depth=2)
            lam = lam1(body)
            if not is_compilable(lam):
                continue
            hits += 1
            compiled = compile_function(lam)
            for n in (-2, 0, 3):
                want = evaluate(App(lam, (IntE(n),)))
                got, _ = evaluate_ft(App(compiled, (IntE(n),)))
                assert got == want
        assert hits >= 5

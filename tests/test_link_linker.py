"""Tests for :mod:`repro.link.linker` and :mod:`repro.link.interface`.

The headline property: a >=3-component program -- compiled F components
across both tiers plus a hand-written T component (Fig 17's factT) --
links into a closed program that typechecks and evaluates to the same
value as the whole-program compile of the inlined source.
"""

import json

import pytest

from repro import obs
from repro.compile import compile_term
from repro.errors import LinkError
from repro.f.syntax import FArrow, FInt, IntE, Lam, Var, ftype_equal
from repro.ft.machine import evaluate_ft
from repro.ft.syntax import FStackArrow
from repro.ft.typecheck import check_ft_expr
from repro.link import (
    ComponentInterface, LinkUnit, build_and_link, check_import,
    collect_labels, imports_compatible, link_components, parse_manifest,
)

ARROW = FArrow((FInt(),), FInt())


def manifest(main="quad (fact 3)"):
    return parse_manifest(json.dumps({
        "components": {
            "double": "lam (x: int). (x + x)",
            "quad": "lam (x: int). double (double x)",
            "fact": {"builtin": "fact-t"},
        },
        "main": main,
    }))


def unit(name, term, ty=ARROW, imports=()):
    return LinkUnit(iface=ComponentInterface(name=name, ty=ty,
                                             imports=imports),
                    term=term)


class TestLinkEndToEnd:
    def test_three_components_link_check_and_run(self):
        report, linked = build_and_link(manifest())
        assert linked.order == ("double", "fact", "quad")
        assert {r.tier for r in report.records} \
            == {"arith", "general", "handwritten"}
        ty, _ = check_ft_expr(linked.program)   # closed, well-typed
        assert isinstance(ty, FInt)
        value, _ = evaluate_ft(linked.program)
        assert value == IntE(24)                # quad (3!) = 4 * 6

    def test_differential_vs_whole_program_compile(self):
        """Separate compilation + linking computes exactly what the
        whole-program pipeline computes on the inlined source."""
        _, linked = build_and_link(manifest(main="quad (double 5)"))
        linked_value, _ = evaluate_ft(linked.program)

        whole = ("(lam (x: int). "
                 "((lam (y: int). (y + y)) ((lam (y: int). (y + y)) x)))")
        from repro.surface.parser import parse_fexpr
        from repro.f.syntax import App
        result = compile_term(parse_fexpr(whole))
        whole_value, _ = evaluate_ft(App(result.wrapped, (IntE(10),)))
        assert linked_value == whole_value == IntE(40)

    def test_renamed_labels_globally_unique(self):
        _, linked = build_and_link(manifest())
        labels = collect_labels(linked.program)
        assert linked.labels_renamed == len(labels) > 0
        # Per-unit stems keep provenance readable in traces.
        stems = {label.name.split("$")[0] for label in labels}
        assert stems == {"double", "quad", "fact"}

    def test_linking_is_deterministic(self):
        _, first = build_and_link(manifest())
        _, second = build_and_link(manifest())
        assert first.program == second.program

    def test_metrics(self):
        obs.disable()
        obs.reset()
        obs.enable(record=False)
        try:
            build_and_link(manifest())
            counters = obs.OBS.metrics.snapshot()["counters"]
            assert counters.get("link.link") == 1
            assert counters.get("link.components") == 3
            assert counters.get("link.labels_renamed", 0) > 0
        finally:
            obs.disable()
            obs.reset()


class TestLinkErrors:
    def test_duplicate_export(self):
        units = [unit("f", Lam((("x", FInt()),), Var("x"))),
                 unit("f", Lam((("x", FInt()),), Var("x")))]
        with pytest.raises(LinkError, match="duplicate export"):
            link_components(units, IntE(0))

    def test_unresolved_unit_import(self):
        open_unit = unit("g", Lam((("x", FInt()),),
                                  Var("x")),
                         imports=(("missing", ARROW),))
        with pytest.raises(LinkError, match="no linked component exports"):
            link_components([open_unit], IntE(0))

    def test_unresolved_main_import(self):
        with pytest.raises(LinkError, match="main expression imports"):
            link_components([], Var("nope"))

    def test_import_cycle_rejected(self):
        from repro.f.syntax import App
        a = unit("a", Lam((("x", FInt()),), App(Var("b"), (Var("x"),))),
                 imports=(("b", ARROW),))
        b = unit("b", Lam((("x", FInt()),), App(Var("a"), (Var("x"),))),
                 imports=(("a", ARROW),))
        with pytest.raises(LinkError, match="cycle"):
            link_components([a, b], IntE(0))

    def test_interface_mismatch(self):
        provider = unit("f", Lam((("x", FInt()),), Var("x")))
        consumer = unit(
            "g", Lam((("x", FInt()),), Var("x")),
            imports=(("f", FArrow((FInt(), FInt()), FInt())),))
        with pytest.raises(LinkError, match="interface"):
            link_components([provider, consumer], IntE(0))


class TestInterfaceCompatibility:
    def test_alpha_equal_accepts(self):
        assert imports_compatible(ARROW, FArrow((FInt(),), FInt()))

    def test_arity_mismatch_rejects(self):
        assert not imports_compatible(FArrow((FInt(), FInt()), FInt()),
                                      ARROW)
        assert not imports_compatible(ARROW, FInt())

    def test_tal_convention_admits_empty_prefix_stack_arrow(self):
        """FStackArrow with empty prefixes is a *different F type* from
        FArrow (when compared structurally) but translates to the same
        TAL calling convention, so linking accepts it -- the check is
        genuinely at the T level, not F-syntactic."""
        stacky = FStackArrow((FInt(),), FInt(), (), ())
        assert imports_compatible(ARROW, stacky)
        assert imports_compatible(stacky, ARROW)

    def test_nonempty_prefix_rejected(self):
        from repro.tal.syntax import TInt
        needy = FStackArrow((FInt(),), FInt(), (TInt(),), (TInt(),))
        assert not imports_compatible(ARROW, needy)

    def test_check_import_raises_structured(self):
        provider = ComponentInterface(name="p", ty=FInt())
        with pytest.raises(LinkError) as err:
            check_import("consumer", "p", ARROW, provider)
        assert "interface" in str(err.value)
        assert "consumer" in str(err.value)

    def test_interface_str_and_import_sorting(self):
        iface = ComponentInterface(
            name="g", ty=ARROW,
            imports=(("z", ARROW), ("a", ARROW)))
        assert [n for n, _ in iface.imports] == ["a", "z"]
        assert str(iface).startswith("g : {a: ")

"""Unit tests for the boundary value translations (paper Fig 10):
``TFtau`` (F to T), ``tauFT`` (T to F), the generated wrappers, and the
round trips between them.  Critically, the generated wrapper code must
itself typecheck -- that is what makes Fig 10 type-preserving."""

import pytest

from repro.errors import MachineError
from repro.f.syntax import (
    App, BinOp, FArrow, FInt, Fold as FFold, FRec, FTupleT, FUnit, IntE,
    Lam, TupleE, UnitE, Var,
)
from repro.ft.boundary import (
    build_call_back_lambda, build_lambda_wrapper, build_stack_lambda_wrapper,
    f_to_t, t_to_f,
)
from repro.ft.machine import FTMachine
from repro.ft.syntax import FStackArrow, StackLam
from repro.ft.translate import type_translation
from repro.ft.typecheck import check_ft_expr, FTTypechecker
from repro.tal.equality import psis_equal
from repro.tal.heap import Memory
from repro.tal.syntax import (
    BOX, Fold as TFold, HTuple, Loc, TInt, WInt, WLoc, WUnit,
)

INT_ARROW = FArrow((FInt(),), FInt())


class TestFirstOrderTranslations:
    def test_int_round_trip(self):
        mem = Memory()
        w = f_to_t(IntE(5), FInt(), mem)
        assert w == WInt(5)
        assert t_to_f(w, FInt(), mem) == IntE(5)

    def test_unit_round_trip(self):
        mem = Memory()
        w = f_to_t(UnitE(), FUnit(), mem)
        assert w == WUnit()
        assert t_to_f(w, FUnit(), mem) == UnitE()

    def test_type_mismatch_rejected(self):
        with pytest.raises(MachineError):
            f_to_t(UnitE(), FInt(), Memory())
        with pytest.raises(MachineError):
            t_to_f(WUnit(), FInt(), Memory())

    def test_non_value_rejected(self):
        with pytest.raises(MachineError, match="non-value"):
            f_to_t(BinOp("+", IntE(1), IntE(1)), FInt(), Memory())

    def test_tuple_allocates_boxed(self):
        mem = Memory()
        ty = FTupleT((FInt(), FUnit()))
        w = f_to_t(TupleE((IntE(1), UnitE())), ty, mem)
        assert isinstance(w, WLoc)
        cell = mem.lookup(w.loc)
        assert cell.nu == BOX
        assert cell.value == HTuple((WInt(1), WUnit()))

    def test_tuple_reads_back(self):
        mem = Memory()
        ty = FTupleT((FInt(), FInt()))
        w = f_to_t(TupleE((IntE(1), IntE(2))), ty, mem)
        assert t_to_f(w, ty, mem) == TupleE((IntE(1), IntE(2)))

    def test_nested_tuple(self):
        mem = Memory()
        ty = FTupleT((FTupleT((FInt(),)),))
        v = TupleE((TupleE((IntE(9),)),))
        assert t_to_f(f_to_t(v, ty, mem), ty, mem) == v

    def test_tuple_width_mismatch_detected(self):
        mem = Memory()
        w = f_to_t(TupleE((IntE(1),)), FTupleT((FInt(),)), mem)
        with pytest.raises(MachineError, match="width"):
            t_to_f(w, FTupleT((FInt(), FInt())), mem)

    def test_mu_translation(self):
        mem = Memory()
        mu = FRec("a", FInt())
        v = FFold(mu, IntE(3))
        w = f_to_t(v, mu, mem)
        assert isinstance(w, TFold)
        assert w.body == WInt(3)
        assert t_to_f(w, mu, mem) == v


class TestGeneratedWrappersTypecheck:
    def test_lambda_wrapper_block_typechecks(self):
        lam = Lam((("x", FInt()),), BinOp("+", Var("x"), IntE(1)))
        block = build_lambda_wrapper(lam, INT_ARROW)
        FTTypechecker().check_heap_value(block)

    def test_wrapper_type_is_the_translation(self):
        lam = Lam((("x", FInt()),), Var("x"))
        block = build_lambda_wrapper(lam, INT_ARROW)
        expected = type_translation(INT_ARROW)
        assert psis_equal(block.code_type, expected.psi)

    def test_two_arg_wrapper_typechecks(self):
        arrow = FArrow((FInt(), FInt()), FInt())
        lam = Lam((("x", FInt()), ("y", FInt())),
                  BinOp("-", Var("x"), Var("y")))
        block = build_lambda_wrapper(lam, arrow)
        FTTypechecker().check_heap_value(block)
        assert psis_equal(block.code_type, type_translation(arrow).psi)

    def test_higher_order_wrapper_typechecks(self):
        arrow = FArrow((INT_ARROW,), FInt())
        lam = Lam((("f", INT_ARROW),), App(Var("f"), (IntE(1),)))
        block = build_lambda_wrapper(lam, arrow)
        FTTypechecker().check_heap_value(block)

    def test_stack_lambda_wrapper_typechecks(self):
        from repro.tal.syntax import TInt as TI

        arrow = FStackArrow((FInt(),), FUnit(), (), (TI(),))
        from repro.papers_examples.push7 import build

        block = build_stack_lambda_wrapper(build(), arrow)
        FTTypechecker().check_heap_value(block)

    def test_stack_lambda_register_budget_enforced(self):
        arrow = FStackArrow(
            tuple([FInt()] * 6), FUnit(), (TInt(), TInt()), ())
        lam = StackLam(tuple((f"x{i}", FInt()) for i in range(6)),
                       UnitE(), (TInt(), TInt()), ())
        with pytest.raises(MachineError, match="register budget"):
            build_stack_lambda_wrapper(lam, arrow)

    def test_callback_lambda_typechecks(self):
        # wrap a code pointer (from f_to_t) back into F and typecheck it
        mem = Memory()
        lam = Lam((("x", FInt()),), Var("x"))
        w = f_to_t(lam, INT_ARROW, mem)
        wrapped = build_call_back_lambda(w, INT_ARROW, mem)
        # the wrapper references heap locations; expose them to the checker
        from repro.tal.syntax import HeapTy
        from repro.tal.typecheck import TalTypechecker

        entries = {}
        checker = FTTypechecker()
        for loc, cell in mem.heap.items():
            entries[loc] = (cell.nu, checker.check_heap_value(cell.value))
        ty, _ = check_ft_expr(wrapped, psi=HeapTy.of(entries))
        assert str(ty) == "(int) -> int"


class TestFunctionRoundTrip:
    def test_lambda_survives_the_boundary(self):
        machine = FTMachine()
        lam = Lam((("x", FInt()),), BinOp("*", Var("x"), IntE(3)))
        w = f_to_t(lam, INT_ARROW, machine.memory)
        wrapped = t_to_f(w, INT_ARROW, machine.memory)
        result = machine.eval_fexpr(App(wrapped, (IntE(7),)))
        assert result == IntE(21)

    def test_double_round_trip(self):
        machine = FTMachine()
        lam = Lam((("x", FInt()),), BinOp("+", Var("x"), IntE(1)))
        w1 = f_to_t(lam, INT_ARROW, machine.memory)
        back1 = t_to_f(w1, INT_ARROW, machine.memory)
        w2 = f_to_t(back1, INT_ARROW, machine.memory)
        back2 = t_to_f(w2, INT_ARROW, machine.memory)
        result = machine.eval_fexpr(App(back2, (IntE(10),)))
        assert result == IntE(11)

    def test_higher_order_round_trip(self):
        arrow = FArrow((INT_ARROW,), FInt())
        machine = FTMachine()
        apply_to_2 = Lam((("f", INT_ARROW),), App(Var("f"), (IntE(2),)))
        w = f_to_t(apply_to_2, arrow, machine.memory)
        wrapped = t_to_f(w, arrow, machine.memory)
        double = Lam((("x", FInt()),), BinOp("*", Var("x"), IntE(2)))
        result = machine.eval_fexpr(App(wrapped, (double,)))
        assert result == IntE(4)

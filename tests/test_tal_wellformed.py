"""Unit tests for the T well-formedness and marker-restriction judgments."""

import pytest

from repro.errors import FTTypeError
from repro.tal.retmarker import (
    continuation_parts, is_continuation_type, ret_addr_type, ret_type,
)
from repro.tal.syntax import (
    CodeType, DeltaBind, KIND_ALPHA, KIND_EPS, KIND_ZETA, NIL_STACK, QEnd,
    QEps, QIdx, QOut, QReg, RegFileTy, StackTy, TBox, TExists, TInt, TRec,
    TRef, TupleTy, TUnit, TVar,
)
from repro.tal.wellformed import (
    check_chi_minus_q_wf, check_chi_wf, check_delta_wf, check_psi_wf,
    check_q_restriction, check_q_wf, check_stack_wf, check_type_wf,
)

ZBIND = DeltaBind(KIND_ZETA, "z")
EBIND = DeltaBind(KIND_EPS, "e")
ABIND = DeltaBind(KIND_ALPHA, "a")


def cont(tail="z"):
    return TBox(CodeType((), RegFileTy.of(r1=TInt()),
                         StackTy((), tail), QEps("e")))


class TestTypeWf:
    def test_base(self):
        check_type_wf((), TInt())
        check_type_wf((), TUnit())

    def test_bound_var_ok(self):
        check_type_wf((ABIND,), TVar("a"))

    def test_unbound_var_fails(self):
        with pytest.raises(FTTypeError, match="unbound"):
            check_type_wf((), TVar("a"))

    def test_binder_introduces(self):
        check_type_wf((), TExists("a", TVar("a")))
        check_type_wf((), TRec("a", TRef((TVar("a"),))))

    def test_zeta_not_a_type_var(self):
        with pytest.raises(FTTypeError):
            check_type_wf((ZBIND,), TVar("z"))


class TestStackWf:
    def test_nil(self):
        check_stack_wf((), NIL_STACK)

    def test_bound_tail(self):
        check_stack_wf((ZBIND,), StackTy((TInt(),), "z"))

    def test_unbound_tail_fails(self):
        with pytest.raises(FTTypeError, match="stack variable"):
            check_stack_wf((), StackTy((), "z"))

    def test_prefix_checked(self):
        with pytest.raises(FTTypeError):
            check_stack_wf((ZBIND,), StackTy((TVar("a"),), "z"))


class TestDeltaAndChiWf:
    def test_duplicate_delta_rejected(self):
        with pytest.raises(FTTypeError, match="duplicate"):
            check_delta_wf((ABIND, ABIND))

    def test_chi_entries_checked(self):
        with pytest.raises(FTTypeError):
            check_chi_wf((), RegFileTy.of(r1=TVar("a")))

    def test_psi_code_type(self):
        ct = CodeType((ZBIND, EBIND), RegFileTy.of(ra=cont()),
                      StackTy((), "z"), QReg("ra"))
        check_psi_wf((), ct)

    def test_psi_code_type_leaky_var_fails(self):
        ct = CodeType((ZBIND,), RegFileTy.of(r1=TVar("a")),
                      StackTy((), "z"), QOut())
        with pytest.raises(FTTypeError):
            check_psi_wf((), ct)

    def test_psi_tuple(self):
        check_psi_wf((), TupleTy((TInt(), TUnit())))


class TestQWf:
    def test_eps_bound(self):
        check_q_wf((EBIND,), QEps("e"))

    def test_eps_unbound_fails(self):
        with pytest.raises(FTTypeError, match="unbound return-marker"):
            check_q_wf((), QEps("e"))

    def test_end_checks_components(self):
        with pytest.raises(FTTypeError):
            check_q_wf((), QEnd(TVar("a"), NIL_STACK))

    def test_out_always_ok(self):
        check_q_wf((), QOut())


class TestQRestriction:
    def test_register_marker_needs_entry(self):
        with pytest.raises(FTTypeError, match="absent"):
            check_q_restriction((), RegFileTy(), NIL_STACK, QReg("ra"))

    def test_register_marker_needs_continuation_shape(self):
        chi = RegFileTy.of(ra=TInt())
        with pytest.raises(FTTypeError, match="not.*continuation"):
            check_q_restriction((), chi, NIL_STACK, QReg("ra"))

    def test_register_marker_ok(self):
        chi = RegFileTy.of(ra=cont())
        check_q_restriction((ZBIND, EBIND), chi, StackTy((), "z"),
                            QReg("ra"))

    def test_index_marker_must_be_exposed(self):
        with pytest.raises(FTTypeError, match="not exposed"):
            check_q_restriction((), RegFileTy(), NIL_STACK, QIdx(0))

    def test_index_marker_ok(self):
        sigma = StackTy((cont(),), "z")
        check_q_restriction((ZBIND, EBIND), RegFileTy(), sigma, QIdx(0))

    def test_index_marker_needs_continuation_slot(self):
        sigma = StackTy((TInt(),), None)
        with pytest.raises(FTTypeError, match="continuation"):
            check_q_restriction((), RegFileTy(), sigma, QIdx(0))

    def test_eps_marker_needs_binding(self):
        with pytest.raises(FTTypeError, match="abstract"):
            check_q_restriction((), RegFileTy(), NIL_STACK, QEps("e"))
        check_q_restriction((EBIND,), RegFileTy(), NIL_STACK, QEps("e"))

    def test_end_and_out_ok(self):
        check_q_restriction((), RegFileTy(), NIL_STACK,
                            QEnd(TInt(), NIL_STACK))
        check_q_restriction((), RegFileTy(), NIL_STACK, QOut())


class TestChiMinusQ:
    def test_marker_entry_exempt(self):
        # chi \ ra may mention free variables only in the ra entry.
        chi = RegFileTy.of(ra=cont("z"), r1=TInt())
        check_chi_minus_q_wf((), chi, QReg("ra"))

    def test_other_entries_not_exempt(self):
        chi = RegFileTy.of(ra=cont("z"), r1=TVar("a"))
        with pytest.raises(FTTypeError):
            check_chi_minus_q_wf((), chi, QReg("ra"))


class TestRetTypeMetafunctions:
    def test_continuation_shape_recognized(self):
        assert is_continuation_type(cont())
        assert not is_continuation_type(TInt())
        assert not is_continuation_type(TBox(TupleTy((TInt(),))))

    def test_two_register_chi_is_not_continuation(self):
        ct = CodeType((), RegFileTy.of(r1=TInt(), r2=TInt()), NIL_STACK,
                      QOut())
        assert not is_continuation_type(TBox(ct))

    def test_leftover_binders_not_continuation(self):
        ct = CodeType((ZBIND,), RegFileTy.of(r1=TInt()), StackTy((), "z"),
                      QEps("e"))
        assert not is_continuation_type(TBox(ct))

    def test_parts(self):
        reg, ty, sigma, q = continuation_parts(cont())
        assert reg == "r1" and ty == TInt()
        assert sigma == StackTy((), "z") and q == QEps("e")

    def test_ret_type_from_register(self):
        chi = RegFileTy.of(ra=cont())
        ty, sigma = ret_type(QReg("ra"), chi, NIL_STACK)
        assert ty == TInt() and sigma == StackTy((), "z")

    def test_ret_type_from_stack(self):
        sigma = StackTy((cont(),), "z")
        ty, out = ret_type(QIdx(0), RegFileTy(), sigma)
        assert ty == TInt()

    def test_ret_type_from_end(self):
        ty, sigma = ret_type(QEnd(TUnit(), NIL_STACK), RegFileTy(),
                             NIL_STACK)
        assert ty == TUnit() and sigma == NIL_STACK

    def test_ret_type_undefined_for_eps(self):
        with pytest.raises(FTTypeError, match="undefined"):
            ret_type(QEps("e"), RegFileTy(), NIL_STACK)

    def test_ret_addr_type(self):
        chi = RegFileTy.of(ra=cont())
        ct = ret_addr_type(QReg("ra"), chi, NIL_STACK)
        assert isinstance(ct, CodeType)
        assert ct.q == QEps("e")

    def test_ret_addr_type_undefined_for_end(self):
        with pytest.raises(FTTypeError, match="undefined"):
            ret_addr_type(QEnd(TInt(), NIL_STACK), RegFileTy(), NIL_STACK)

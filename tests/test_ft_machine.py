"""Unit tests for the FT mixed-language machine (paper Fig 8):
boundary reductions, import/protect execution, shared fuel, traces."""

import pytest

from repro.errors import FuelExhausted, MachineError
from repro.f.syntax import (
    App, BinOp, FArrow, FInt, FUnit, If0, IntE, Lam, TupleE, UnitE, Var,
)
from repro.ft.machine import evaluate_ft, FTMachine, run_ft_component
from repro.ft.syntax import Boundary, Import, Protect, StackDelta
from repro.papers_examples import (
    fig11_jit, fig16_two_blocks, fig17_factorial, import_example, push7,
)
from repro.tal.syntax import (
    Component, Halt, Mv, NIL_STACK, QEnd, Salloc, seq, Sst, StackTy, TInt,
    TUnit, WInt, WUnit,
)


class TestImportInstruction:
    def test_import_evaluates_and_translates(self):
        halted, machine = run_ft_component(import_example.build())
        assert halted.word == WInt(import_example.EXPECTED_RESULT)

    def test_import_may_run_nested_assembly(self):
        inner = Boundary(FInt(), Component(seq(
            Mv("r1", WInt(21)),
            Halt(TInt(), NIL_STACK, "r1"))))
        comp = Component(seq(
            Import("r1", NIL_STACK, FInt(), BinOp("*", inner, IntE(2))),
            Halt(TInt(), NIL_STACK, "r1")))
        halted, _ = run_ft_component(comp)
        assert halted.word == WInt(42)

    def test_protect_is_runtime_noop(self):
        comp = Component(seq(
            Protect((), "z"),
            Mv("r1", WInt(1)),
            Halt(TInt(), StackTy((), "z"), "r1")))
        halted, _ = run_ft_component(comp)
        assert halted.word == WInt(1)


class TestBoundaryReduction:
    def test_boundary_of_int(self):
        b = Boundary(FInt(), Component(seq(
            Mv("r1", WInt(5)), Halt(TInt(), NIL_STACK, "r1"))))
        value, _ = evaluate_ft(b)
        assert value == IntE(5)

    def test_boundary_inside_arithmetic(self):
        b = Boundary(FInt(), Component(seq(
            Mv("r1", WInt(5)), Halt(TInt(), NIL_STACK, "r1"))))
        value, _ = evaluate_ft(BinOp("+", IntE(1), b))
        assert value == IntE(6)

    def test_boundary_as_branch(self):
        b = Boundary(FInt(), Component(seq(
            Mv("r1", WInt(5)), Halt(TInt(), NIL_STACK, "r1"))))
        value, _ = evaluate_ft(If0(IntE(1), IntE(0), b))
        assert value == IntE(5)

    def test_stack_lambda_pushes(self):
        lam = push7.build()
        machine = FTMachine()
        value = machine.eval_fexpr(App(lam, (IntE(0),)))
        assert value == UnitE()
        assert machine.memory.snapshot_stack() == (WInt(7),)

    def test_mistranslated_boundary_is_stuck(self):
        # component halts with unit but the boundary claims int
        b = Boundary(FInt(), Component(seq(
            Mv("r1", WUnit()), Halt(TUnit(), NIL_STACK, "r1"))))
        with pytest.raises(MachineError):
            evaluate_ft(b)


class TestSharedFuel:
    def test_fuel_spans_languages(self):
        # a T loop inside an F context exhausts the same budget
        from repro.tal.syntax import HCode, Jmp, Loc, QEnd, RegFileTy, WLoc

        target = Loc("spin")
        block = HCode((), RegFileTy(), NIL_STACK, QEnd(TInt(), NIL_STACK),
                      seq(Jmp(WLoc(target))))
        spin = Boundary(FInt(), Component(seq(Jmp(WLoc(target))),
                                          ((target, block),)))
        with pytest.raises(FuelExhausted):
            evaluate_ft(BinOp("+", IntE(1), spin), fuel=2_000)

    def test_f_divergence_exhausts(self):
        fact = fig17_factorial.build_fact_f()
        with pytest.raises(FuelExhausted):
            evaluate_ft(App(fact, (IntE(-1),)), fuel=5_000)

    def test_t_divergence_exhausts(self):
        fact = fig17_factorial.build_fact_t()
        with pytest.raises(FuelExhausted):
            evaluate_ft(App(fact, (IntE(-1),)), fuel=5_000)


class TestPaperPrograms:
    def test_fig16_both_variants(self):
        for build in (fig16_two_blocks.build_f1, fig16_two_blocks.build_f2):
            for n in (0, 3, -4):
                value, _ = evaluate_ft(App(build(), (IntE(n),)))
                assert value == IntE(n + 2)

    def test_fig17_factorials_agree(self):
        ff = fig17_factorial.build_fact_f()
        ft = fig17_factorial.build_fact_t()
        for n in range(0, 7):
            vf, _ = evaluate_ft(App(ff, (IntE(n),)))
            vt, _ = evaluate_ft(App(ft, (IntE(n),)))
            assert vf == vt == IntE(fig17_factorial.expected(n))

    def test_fig11_jit_result(self):
        value, _ = evaluate_ft(fig11_jit.build_jit())
        assert value == IntE(fig11_jit.EXPECTED_RESULT)

    def test_fig11_source_result(self):
        from repro.f.eval import evaluate

        assert evaluate(fig11_jit.build_source()) == \
            IntE(fig11_jit.EXPECTED_RESULT)


class TestTraces:
    def test_boundary_events_emitted(self):
        b = Boundary(FInt(), Component(seq(
            Mv("r1", WInt(5)), Halt(TInt(), NIL_STACK, "r1"))))
        _, machine = evaluate_ft(b, trace=True)
        kinds = [ev.kind for ev in machine.trace]
        assert "boundary" in kinds and "halt" in kinds

    def test_fig12_shape(self):
        """The Fig 12 control flow: the call into g's wrapper, the callback
        call into lh, and the two shim returns."""
        _, machine = evaluate_ft(fig11_jit.build_jit(), trace=True)
        control = [(ev.kind, ev.pretty_label()) for ev in machine.trace
                   if ev.kind in ("call", "ret", "jmp")]
        # l calls g (wrapped), the wrapper calls back into lh, lh returns
        # to the wrapper's lend, then lgret and lend unwind.
        kinds = [k for k, _ in control]
        assert kinds == ["call", "call", "call", "ret", "ret", "ret"]
        targets = [t for _, t in control]
        assert targets[0] == "l"
        assert "lh" in targets
        assert "lgret" in targets
        assert targets.count("lend") == 2


class TestRunComponentEntry:
    def test_fuel_override(self):
        machine = FTMachine(fuel=10)
        comp = import_example.build()
        halted = machine.run_component(comp, fuel=100_000)
        assert halted.word == WInt(2)

"""Unit tests for F abstract syntax: construction, printing, free
variables, substitution, and alpha-equivalence (paper Fig 5)."""

import pytest

from repro.f.syntax import (
    App, BinOp, FArrow, FInt, Fold, FRec, FTupleT, FTVar, FUnit, free_tvars,
    free_vars, ftype_equal, If0, IntE, is_value, iter_subexprs, Lam, Proj,
    subst_expr, subst_ftype, TupleE, Unfold, UnitE, Var,
)


class TestTypeConstruction:
    def test_base_types_print(self):
        assert str(FUnit()) == "unit"
        assert str(FInt()) == "int"
        assert str(FTVar("a")) == "a"

    def test_arrow_prints_n_ary(self):
        arrow = FArrow((FInt(), FUnit()), FInt())
        assert str(arrow) == "(int, unit) -> int"

    def test_mu_prints(self):
        assert str(FRec("a", FTVar("a"))) == "mu a. a"

    def test_tuple_prints(self):
        assert str(FTupleT((FInt(), FInt()))) == "<int, int>"

    def test_types_are_hashable_and_structural(self):
        assert FArrow((FInt(),), FInt()) == FArrow((FInt(),), FInt())
        assert hash(FInt()) == hash(FInt())
        assert FInt() != FUnit()

    def test_arrow_params_coerced_to_tuple(self):
        arrow = FArrow([FInt()], FInt())
        assert isinstance(arrow.params, tuple)


class TestFreeTvars:
    def test_var_is_free(self):
        assert free_tvars(FTVar("a")) == {"a"}

    def test_mu_binds(self):
        assert free_tvars(FRec("a", FTVar("a"))) == set()

    def test_mu_keeps_other_vars_free(self):
        ty = FRec("a", FArrow((FTVar("b"),), FTVar("a")))
        assert free_tvars(ty) == {"b"}

    def test_base_types_closed(self):
        assert free_tvars(FInt()) == set()
        assert free_tvars(FUnit()) == set()

    def test_tuple_collects(self):
        assert free_tvars(FTupleT((FTVar("a"), FTVar("b")))) == {"a", "b"}


class TestSubstFtype:
    def test_substitutes_var(self):
        assert subst_ftype(FTVar("a"), "a", FInt()) == FInt()

    def test_leaves_other_vars(self):
        assert subst_ftype(FTVar("b"), "a", FInt()) == FTVar("b")

    def test_shadowed_binder_blocks(self):
        ty = FRec("a", FTVar("a"))
        assert subst_ftype(ty, "a", FInt()) == ty

    def test_capture_avoidance_renames(self):
        # (mu b. a)[b/a] must not capture: the bound b gets renamed.
        ty = FRec("b", FTVar("a"))
        result = subst_ftype(ty, "a", FTVar("b"))
        assert isinstance(result, FRec)
        assert result.var != "b"
        assert result.body == FTVar("b")

    def test_unroll_is_substitution(self):
        mu = FRec("a", FArrow((FTVar("a"),), FInt()))
        unrolled = mu.unroll()
        assert unrolled == FArrow((mu,), FInt())


class TestFtypeEqual:
    def test_alpha_equivalent_mus(self):
        left = FRec("a", FArrow((FTVar("a"),), FInt()))
        right = FRec("b", FArrow((FTVar("b"),), FInt()))
        assert ftype_equal(left, right)

    def test_structurally_different(self):
        assert not ftype_equal(FInt(), FUnit())

    def test_arity_mismatch(self):
        assert not ftype_equal(FArrow((FInt(),), FInt()),
                               FArrow((FInt(), FInt()), FInt()))

    def test_free_vars_compare_by_name(self):
        assert ftype_equal(FTVar("a"), FTVar("a"))
        assert not ftype_equal(FTVar("a"), FTVar("b"))

    def test_nested_binders(self):
        left = FRec("a", FRec("b", FTupleT((FTVar("a"), FTVar("b")))))
        right = FRec("x", FRec("y", FTupleT((FTVar("x"), FTVar("y")))))
        assert ftype_equal(left, right)

    def test_swapped_binders_not_equal(self):
        left = FRec("a", FRec("b", FTupleT((FTVar("a"), FTVar("b")))))
        right = FRec("a", FRec("b", FTupleT((FTVar("b"), FTVar("a")))))
        assert not ftype_equal(left, right)


class TestValues:
    def test_literals_are_values(self):
        assert is_value(UnitE())
        assert is_value(IntE(3))
        assert is_value(Lam((("x", FInt()),), Var("x")))

    def test_fold_of_value(self):
        mu = FRec("a", FInt())
        assert is_value(Fold(mu, IntE(1)))
        assert not is_value(Fold(mu, BinOp("+", IntE(1), IntE(1))))

    def test_tuple_of_values(self):
        assert is_value(TupleE((IntE(1), UnitE())))
        assert not is_value(TupleE((IntE(1), Var("x"))))

    def test_redexes_are_not_values(self):
        assert not is_value(BinOp("+", IntE(1), IntE(2)))
        assert not is_value(App(Lam((("x", FInt()),), Var("x")),
                                (IntE(1),)))
        assert not is_value(Unfold(Fold(FRec("a", FInt()), IntE(1))))


class TestFreeVars:
    def test_var(self):
        assert free_vars(Var("x")) == {"x"}

    def test_lambda_binds(self):
        lam = Lam((("x", FInt()),), BinOp("+", Var("x"), Var("y")))
        assert free_vars(lam) == {"y"}

    def test_multi_param_binds_all(self):
        lam = Lam((("x", FInt()), ("y", FInt())),
                  BinOp("+", Var("x"), Var("y")))
        assert free_vars(lam) == set()

    def test_app_collects(self):
        assert free_vars(App(Var("f"), (Var("a"), Var("b")))) == \
            {"f", "a", "b"}

    def test_if0_collects(self):
        assert free_vars(If0(Var("c"), Var("t"), Var("e"))) == \
            {"c", "t", "e"}


class TestSubstExpr:
    def test_basic(self):
        assert subst_expr(Var("x"), "x", IntE(1)) == IntE(1)

    def test_shadowing(self):
        lam = Lam((("x", FInt()),), Var("x"))
        assert subst_expr(lam, "x", IntE(1)) == lam

    def test_capture_avoidance(self):
        # (lam(y). x)[y/x]: the binder y must be renamed, not capture.
        lam = Lam((("y", FInt()),), Var("x"))
        result = subst_expr(lam, "x", Var("y"))
        assert isinstance(result, Lam)
        (name, _), = result.params
        assert name != "y"
        assert result.body == Var("y")

    def test_descends_everywhere(self):
        e = If0(Var("x"), TupleE((Var("x"),)), Proj(0, Var("x")))
        out = subst_expr(e, "x", IntE(0))
        assert free_vars(out) == set()

    def test_invalid_binop_rejected(self):
        with pytest.raises(ValueError):
            BinOp("/", IntE(1), IntE(2))


class TestIterSubexprs:
    def test_counts_nodes(self):
        e = BinOp("+", IntE(1), BinOp("*", IntE(2), IntE(3)))
        assert len(list(iter_subexprs(e))) == 5

    def test_includes_lambda_bodies(self):
        e = Lam((("x", FInt()),), Var("x"))
        assert Var("x") in list(iter_subexprs(e))

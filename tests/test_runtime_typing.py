"""Tests for runtime typing (``Psi |- w : tau``, ``Psi |- M``) -- the
judgments behind the preservation property."""

import pytest

from repro.errors import FTTypeError
from repro.tal.heap import Memory
from repro.tal.machine import run_component, TalMachine
from repro.tal.syntax import (
    BOX, CodeType, Fold, HeapTy, HTuple, Loc, NIL_STACK, Pack, QEnd, REF,
    RegFileTy, StackTy, TBox, TExists, TInt, TRec, TRef, TupleTy, TUnit,
    TVar, WInt, WLoc, WUnit,
)
from repro.tal.typecheck import check_memory, type_of_word


class TestWordTyping:
    def test_literals(self):
        assert type_of_word(HeapTy(), WInt(3)) == TInt()
        assert type_of_word(HeapTy(), WUnit()) == TUnit()

    def test_box_location(self):
        loc = Loc("l")
        psi = HeapTy.of({loc: (BOX, TupleTy((TInt(),)))})
        assert type_of_word(psi, WLoc(loc)) == TBox(TupleTy((TInt(),)))

    def test_ref_location(self):
        loc = Loc("l")
        psi = HeapTy.of({loc: (REF, TupleTy((TInt(),)))})
        assert type_of_word(psi, WLoc(loc)) == TRef((TInt(),))

    def test_pack_word(self):
        ex = TExists("a", TVar("a"))
        assert type_of_word(HeapTy(), Pack(TInt(), WInt(1), ex)) == ex

    def test_fold_word(self):
        mu = TRec("a", TInt())
        assert type_of_word(HeapTy(), Fold(mu, WInt(1))) == mu

    def test_dangling_rejected(self):
        with pytest.raises(FTTypeError):
            type_of_word(HeapTy(), WLoc(Loc("nowhere")))


class TestMemoryTyping:
    def _memory(self):
        mem = Memory()
        loc = mem.alloc(HTuple((WInt(1), WUnit())), REF)
        mem.set_reg("r1", WInt(5))
        mem.push(WInt(9), WLoc(loc))
        return mem, loc

    def test_consistent_memory_accepted(self):
        mem, loc = self._memory()
        psi = HeapTy.of({loc: (REF, TupleTy((TInt(), TUnit())))})
        chi = RegFileTy.of(r1=TInt())
        sigma = StackTy((TInt(), TRef((TInt(), TUnit()))), None)
        check_memory(
            psi, [(loc, REF, mem.heap[loc].value)], mem.regs, chi,
            mem.stack, sigma)

    def test_register_type_mismatch_detected(self):
        mem, loc = self._memory()
        psi = HeapTy.of({loc: (REF, TupleTy((TInt(), TUnit())))})
        chi = RegFileTy.of(r1=TUnit())
        with pytest.raises(FTTypeError, match="register r1"):
            check_memory(psi, [], mem.regs, chi, mem.stack, NIL_STACK)

    def test_missing_register_detected(self):
        mem, _ = self._memory()
        chi = RegFileTy.of(r2=TInt())
        with pytest.raises(FTTypeError, match="unset"):
            check_memory(HeapTy(), [], mem.regs, chi, mem.stack,
                         NIL_STACK)

    def test_stack_slot_mismatch_detected(self):
        mem, loc = self._memory()
        psi = HeapTy.of({loc: (REF, TupleTy((TInt(), TUnit())))})
        sigma = StackTy((TUnit(),), None)
        with pytest.raises(FTTypeError, match="slot 0"):
            check_memory(psi, [], mem.regs, RegFileTy(), mem.stack, sigma)

    def test_stack_depth_shortfall_detected(self):
        sigma = StackTy((TInt(),), None)
        with pytest.raises(FTTypeError, match="exposes"):
            check_memory(HeapTy(), [], {}, RegFileTy(), [], sigma)

    def test_mutability_mismatch_detected(self):
        mem, loc = self._memory()
        psi = HeapTy.of({loc: (BOX, TupleTy((TInt(), TUnit())))})
        with pytest.raises(FTTypeError, match="mutability"):
            check_memory(psi, [(loc, REF, mem.heap[loc].value)], {},
                         RegFileTy(), [], NIL_STACK)


class TestPreservationAtHalt:
    """After running well-typed programs, the observable memory satisfies
    the halt annotation -- preservation, observed."""

    def test_fig3_final_memory(self):
        from repro.papers_examples.fig3_call_to_call import build

        halted, machine = run_component(build())
        # the halt promised: int in r1, empty stack
        assert type_of_word(HeapTy(), halted.word) == TInt()
        assert machine.memory.depth == 0

    def test_random_programs_preserve_annotations(self):
        from tests.strategies import random_t_program

        for seed in range(40):
            comp = random_t_program(seed)
            halted, machine = run_component(comp)
            assert type_of_word(HeapTy(), halted.word) == halted.ty
            assert machine.memory.depth == len(halted.sigma.prefix)

"""Per-rule unit tests for T instruction typing (paper Fig 2).

Each class covers one instruction, including the return-marker bookkeeping
that is the paper's central contribution: the two ``mv`` cases, the
``sld``/``sst`` marker moves, the index shifts of stack allocation, and
the never-clobber-the-marker guards.
"""

import pytest

from repro.errors import FTTypeError
from repro.tal.syntax import (
    Aop, Balloc, Bnz, BOX, CodeType, DeltaBind, HeapTy, KIND_ALPHA,
    KIND_EPS, KIND_ZETA, Ld, Loc, Mv, NIL_STACK, Pack, QEnd, QEps, QIdx,
    QReg, Ralloc, REF, RegFileTy, RegOp, Salloc, Sfree, Sld, Sst, St,
    StackTy, TBox, TExists, TInt, TRec, TRef, TupleTy, TUnit, TVar, TyApp,
    UnfoldI, Unpack, WInt, WLoc, WUnit,
)
from repro.tal.typecheck import InstrState, TalTypechecker

ZE = (DeltaBind(KIND_ZETA, "z"), DeltaBind(KIND_EPS, "e"))
END_INT = QEnd(TInt(), NIL_STACK)


def cont(tail="z"):
    return TBox(CodeType((), RegFileTy.of(r1=TInt()),
                         StackTy((), tail), QEps("e")))


@pytest.fixture
def checker():
    return TalTypechecker()


def state(chi=None, sigma=NIL_STACK, q=END_INT, delta=()):
    return InstrState(delta, chi if chi is not None else RegFileTy(),
                      sigma, q)


class TestOperandTyping:
    def test_literals(self, checker):
        assert checker.type_of_operand((), RegFileTy(), WUnit()) == TUnit()
        assert checker.type_of_operand((), RegFileTy(), WInt(3)) == TInt()

    def test_register(self, checker):
        chi = RegFileTy.of(r1=TInt())
        assert checker.type_of_operand((), chi, RegOp("r1")) == TInt()

    def test_unset_register_fails(self, checker):
        with pytest.raises(FTTypeError, match="not in chi"):
            checker.type_of_operand((), RegFileTy(), RegOp("r1"))

    def test_box_location(self):
        psi = HeapTy.of({Loc("l"): (BOX, TupleTy((TInt(),)))})
        ty = TalTypechecker(psi).type_of_operand(
            (), RegFileTy(), WLoc(Loc("l")))
        assert ty == TBox(TupleTy((TInt(),)))

    def test_ref_location(self):
        psi = HeapTy.of({Loc("l"): (REF, TupleTy((TInt(),)))})
        ty = TalTypechecker(psi).type_of_operand(
            (), RegFileTy(), WLoc(Loc("l")))
        assert ty == TRef((TInt(),))

    def test_dangling_location_fails(self, checker):
        with pytest.raises(FTTypeError, match="not in Psi"):
            checker.type_of_operand((), RegFileTy(), WLoc(Loc("l")))

    def test_pack(self, checker):
        ex = TExists("a", TVar("a"))
        ty = checker.type_of_operand((), RegFileTy(),
                                     Pack(TInt(), WInt(1), ex))
        assert ty == ex

    def test_pack_body_mismatch(self, checker):
        ex = TExists("a", TVar("a"))
        with pytest.raises(FTTypeError, match="pack body"):
            checker.type_of_operand((), RegFileTy(),
                                    Pack(TUnit(), WInt(1), ex))

    def test_pack_non_existential_annotation(self, checker):
        with pytest.raises(FTTypeError, match="not existential"):
            checker.type_of_operand((), RegFileTy(),
                                    Pack(TInt(), WInt(1), TInt()))

    def test_fold(self, checker):
        from repro.tal.syntax import Fold

        mu = TRec("a", TInt())
        ty = checker.type_of_operand((), RegFileTy(), Fold(mu, WInt(1)))
        assert ty == mu

    def test_tyapp_partial(self):
        ct = CodeType(ZE, RegFileTy.of(ra=cont()), StackTy((), "z"),
                      QReg("ra"))
        psi = HeapTy.of({Loc("l"): (BOX, ct)})
        u = TyApp(WLoc(Loc("l")), (NIL_STACK,))
        ty = TalTypechecker(psi).type_of_operand((), RegFileTy(), u)
        assert isinstance(ty, TBox) and isinstance(ty.psi, CodeType)
        assert len(ty.psi.delta) == 1

    def test_tyapp_to_non_code_fails(self, checker):
        with pytest.raises(FTTypeError, match="non-code"):
            checker.type_of_operand((), RegFileTy(),
                                    TyApp(WInt(1), (TInt(),)))

    def test_tyapp_too_many_fails(self):
        ct = CodeType((), RegFileTy(), NIL_STACK, END_INT)
        psi = HeapTy.of({Loc("l"): (BOX, ct)})
        with pytest.raises(FTTypeError, match="too many"):
            TalTypechecker(psi).type_of_operand(
                (), RegFileTy(), TyApp(WLoc(Loc("l")), (TInt(),)))


class TestMv:
    def test_ordinary_move(self, checker):
        out = checker.step_instruction(state(), Mv("r1", WInt(5)))
        assert out.chi.get("r1") == TInt()
        assert out.q == END_INT

    def test_moving_the_marker_relocates_it(self, checker):
        chi = RegFileTy.of(ra=cont())
        st = state(chi, StackTy((), "z"), QReg("ra"), ZE)
        out = checker.step_instruction(st, Mv("r3", RegOp("ra")))
        assert out.q == QReg("r3")
        assert out.chi.get("r3") == cont()

    def test_clobbering_the_marker_fails(self, checker):
        chi = RegFileTy.of(ra=cont())
        st = state(chi, StackTy((), "z"), QReg("ra"), ZE)
        with pytest.raises(FTTypeError, match="overwrite the return marker"):
            checker.step_instruction(st, Mv("ra", WInt(1)))

    def test_self_move_of_marker_keeps_it(self, checker):
        chi = RegFileTy.of(ra=cont())
        st = state(chi, StackTy((), "z"), QReg("ra"), ZE)
        out = checker.step_instruction(st, Mv("ra", RegOp("ra")))
        assert out.q == QReg("ra")


class TestAop:
    def test_basic(self, checker):
        chi = RegFileTy.of(r2=TInt())
        out = checker.step_instruction(state(chi),
                                       Aop("add", "r1", "r2", WInt(1)))
        assert out.chi.get("r1") == TInt()

    def test_register_operand(self, checker):
        chi = RegFileTy.of(r2=TInt(), r3=TInt())
        out = checker.step_instruction(state(chi),
                                       Aop("mul", "r1", "r2", RegOp("r3")))
        assert out.chi.get("r1") == TInt()

    def test_source_must_be_int(self, checker):
        chi = RegFileTy.of(r2=TUnit())
        with pytest.raises(FTTypeError, match="expected int"):
            checker.step_instruction(state(chi),
                                     Aop("add", "r1", "r2", WInt(1)))

    def test_operand_must_be_int(self, checker):
        chi = RegFileTy.of(r2=TInt())
        with pytest.raises(FTTypeError, match="expected int"):
            checker.step_instruction(state(chi),
                                     Aop("add", "r1", "r2", WUnit()))

    def test_cannot_target_marker(self, checker):
        chi = RegFileTy.of(ra=cont(), r2=TInt())
        st = state(chi, StackTy((), "z"), QReg("ra"), ZE)
        with pytest.raises(FTTypeError, match="overwrite"):
            checker.step_instruction(st, Aop("add", "ra", "r2", WInt(1)))


class TestBnz:
    def _target_psi(self, q):
        ct = CodeType((), RegFileTy.of(r1=TInt()), NIL_STACK, q)
        return HeapTy.of({Loc("l"): (BOX, ct)})

    def test_same_marker_ok(self):
        checker = TalTypechecker(self._target_psi(END_INT))
        chi = RegFileTy.of(r1=TInt())
        out = checker.step_instruction(state(chi),
                                       Bnz("r1", WLoc(Loc("l"))))
        assert out == state(chi)

    def test_marker_mismatch_fails(self):
        checker = TalTypechecker(self._target_psi(QEnd(TUnit(), NIL_STACK)))
        chi = RegFileTy.of(r1=TInt())
        with pytest.raises(FTTypeError, match="intra-component"):
            checker.step_instruction(state(chi), Bnz("r1", WLoc(Loc("l"))))

    def test_scrutinee_must_be_int(self):
        checker = TalTypechecker(self._target_psi(END_INT))
        chi = RegFileTy.of(r1=TUnit())
        with pytest.raises(FTTypeError, match="scrutinee"):
            checker.step_instruction(state(chi), Bnz("r1", WLoc(Loc("l"))))

    def test_register_subtyping_allows_extra(self):
        checker = TalTypechecker(self._target_psi(END_INT))
        chi = RegFileTy.of(r1=TInt(), r5=TUnit())
        checker.step_instruction(state(chi), Bnz("r1", WLoc(Loc("l"))))

    def test_missing_required_register_fails(self):
        ct = CodeType((), RegFileTy.of(r1=TInt(), r2=TInt()), NIL_STACK,
                      END_INT)
        checker = TalTypechecker(HeapTy.of({Loc("l"): (BOX, ct)}))
        chi = RegFileTy.of(r1=TInt())
        with pytest.raises(FTTypeError, match="required at type"):
            checker.step_instruction(state(chi), Bnz("r1", WLoc(Loc("l"))))

    def test_uninstantiated_target_fails(self):
        ct = CodeType(ZE, RegFileTy.of(r1=TInt()), StackTy((), "z"),
                      QEps("e"))
        checker = TalTypechecker(HeapTy.of({Loc("l"): (BOX, ct)}))
        chi = RegFileTy.of(r1=TInt())
        with pytest.raises(FTTypeError, match="instantiate"):
            checker.step_instruction(state(chi), Bnz("r1", WLoc(Loc("l"))))


class TestLdSt:
    def test_ld_from_ref(self, checker):
        chi = RegFileTy.of(r2=TRef((TInt(), TUnit())))
        out = checker.step_instruction(state(chi), Ld("r1", "r2", 1))
        assert out.chi.get("r1") == TUnit()

    def test_ld_from_box(self, checker):
        chi = RegFileTy.of(r2=TBox(TupleTy((TInt(),))))
        out = checker.step_instruction(state(chi), Ld("r1", "r2", 0))
        assert out.chi.get("r1") == TInt()

    def test_ld_index_out_of_range(self, checker):
        chi = RegFileTy.of(r2=TRef((TInt(),)))
        with pytest.raises(FTTypeError, match="out of range"):
            checker.step_instruction(state(chi), Ld("r1", "r2", 1))

    def test_ld_from_non_tuple(self, checker):
        chi = RegFileTy.of(r2=TInt())
        with pytest.raises(FTTypeError, match="tuple"):
            checker.step_instruction(state(chi), Ld("r1", "r2", 0))

    def test_st_to_ref(self, checker):
        chi = RegFileTy.of(r1=TRef((TInt(),)), r2=TInt())
        out = checker.step_instruction(state(chi), St("r1", 0, "r2"))
        assert out.chi == chi

    def test_st_to_box_fails(self, checker):
        chi = RegFileTy.of(r1=TBox(TupleTy((TInt(),))), r2=TInt())
        with pytest.raises(FTTypeError, match="mutable"):
            checker.step_instruction(state(chi), St("r1", 0, "r2"))

    def test_st_type_mismatch(self, checker):
        chi = RegFileTy.of(r1=TRef((TInt(),)), r2=TUnit())
        with pytest.raises(FTTypeError, match="stores"):
            checker.step_instruction(state(chi), St("r1", 0, "r2"))


class TestStackInstructions:
    def test_salloc_pushes_units(self, checker):
        out = checker.step_instruction(state(), Salloc(2))
        assert out.sigma == StackTy((TUnit(), TUnit()), None)

    def test_salloc_shifts_index_marker(self, checker):
        sigma = StackTy((cont(),), "z")
        st = state(RegFileTy(), sigma, QIdx(0), ZE)
        out = checker.step_instruction(st, Salloc(3))
        assert out.q == QIdx(3)

    def test_sfree_pops(self, checker):
        st = state(sigma=StackTy((TInt(), TUnit()), None))
        out = checker.step_instruction(st, Sfree(1))
        assert out.sigma == StackTy((TUnit(),), None)

    def test_sfree_underflow(self, checker):
        with pytest.raises(FTTypeError, match="sfree"):
            checker.step_instruction(state(), Sfree(1))

    def test_sfree_cannot_free_marker(self, checker):
        sigma = StackTy((cont(),), "z")
        st = state(RegFileTy(), sigma, QIdx(0), ZE)
        with pytest.raises(FTTypeError, match="marker"):
            checker.step_instruction(st, Sfree(1))

    def test_sfree_shifts_marker_down(self, checker):
        sigma = StackTy((TInt(), cont()), "z")
        st = state(RegFileTy(), sigma, QIdx(1), ZE)
        out = checker.step_instruction(st, Sfree(1))
        assert out.q == QIdx(0)

    def test_sld_reads_slot(self, checker):
        st = state(sigma=StackTy((TInt(),), None))
        out = checker.step_instruction(st, Sld("r1", 0))
        assert out.chi.get("r1") == TInt()

    def test_sld_unexposed_slot_fails(self, checker):
        st = state(sigma=StackTy((), "z"), delta=ZE)
        with pytest.raises(FTTypeError, match="not exposed"):
            checker.step_instruction(st, Sld("r1", 0))

    def test_sld_of_marker_relocates_it(self, checker):
        sigma = StackTy((cont(),), "z")
        st = state(RegFileTy(), sigma, QIdx(0), ZE)
        out = checker.step_instruction(st, Sld("ra", 0))
        assert out.q == QReg("ra")

    def test_sld_cannot_clobber_marker_register(self, checker):
        chi = RegFileTy.of(ra=cont())
        sigma = StackTy((TInt(),), "z")
        st = state(chi, sigma, QReg("ra"), ZE)
        with pytest.raises(FTTypeError, match="overwrite"):
            checker.step_instruction(st, Sld("ra", 0))

    def test_sst_writes_slot(self, checker):
        chi = RegFileTy.of(r1=TInt())
        st = state(chi, StackTy((TUnit(),), None))
        out = checker.step_instruction(st, Sst(0, "r1"))
        assert out.sigma == StackTy((TInt(),), None)

    def test_sst_of_marker_relocates_it(self, checker):
        chi = RegFileTy.of(ra=cont())
        st = state(chi, StackTy((TUnit(),), "z"), QReg("ra"), ZE)
        out = checker.step_instruction(st, Sst(0, "ra"))
        assert out.q == QIdx(0)
        assert out.sigma.slot(0) == cont()

    def test_sst_cannot_clobber_marker_slot(self, checker):
        chi = RegFileTy.of(r1=TInt())
        sigma = StackTy((cont(),), "z")
        st = state(chi, sigma, QIdx(0), ZE)
        with pytest.raises(FTTypeError, match="overwrite"):
            checker.step_instruction(st, Sst(0, "r1"))


class TestAlloc:
    def test_ralloc_consumes_stack(self, checker):
        st = state(sigma=StackTy((TInt(), TUnit()), None))
        out = checker.step_instruction(st, Ralloc("r1", 2))
        assert out.chi.get("r1") == TRef((TInt(), TUnit()))
        assert out.sigma == NIL_STACK

    def test_balloc_makes_box(self, checker):
        st = state(sigma=StackTy((TInt(),), None))
        out = checker.step_instruction(st, Balloc("r1", 1))
        assert out.chi.get("r1") == TBox(TupleTy((TInt(),)))

    def test_alloc_underflow(self, checker):
        with pytest.raises(FTTypeError, match="exposed"):
            checker.step_instruction(state(), Ralloc("r1", 1))

    def test_alloc_cannot_consume_marker(self, checker):
        sigma = StackTy((cont(),), "z")
        st = state(RegFileTy(), sigma, QIdx(0), ZE)
        with pytest.raises(FTTypeError, match="marker"):
            checker.step_instruction(st, Balloc("r1", 1))

    def test_alloc_shifts_marker(self, checker):
        sigma = StackTy((TInt(), cont()), "z")
        st = state(RegFileTy(), sigma, QIdx(1), ZE)
        out = checker.step_instruction(st, Ralloc("r1", 1))
        assert out.q == QIdx(0)


class TestUnpackUnfold:
    def test_unpack_opens(self, checker):
        ex = TExists("a", TRef((TVar("a"),)))
        chi = RegFileTy.of(r2=ex)
        out = checker.step_instruction(state(chi),
                                       Unpack("b", "r1", RegOp("r2")))
        assert out.chi.get("r1") == TRef((TVar("b"),))
        assert out.delta[-1] == DeltaBind(KIND_ALPHA, "b")

    def test_unpack_non_existential_fails(self, checker):
        chi = RegFileTy.of(r2=TInt())
        with pytest.raises(FTTypeError, match="non-existential"):
            checker.step_instruction(state(chi),
                                     Unpack("b", "r1", RegOp("r2")))

    def test_unpack_shadowing_rejected(self, checker):
        ex = TExists("a", TVar("a"))
        chi = RegFileTy.of(r2=ex)
        st = state(chi, delta=(DeltaBind(KIND_ALPHA, "b"),))
        with pytest.raises(FTTypeError, match="shadows"):
            checker.step_instruction(st, Unpack("b", "r1", RegOp("r2")))

    def test_unfold_unrolls(self, checker):
        mu = TRec("a", TRef((TVar("a"),)))
        chi = RegFileTy.of(r2=mu)
        out = checker.step_instruction(state(chi),
                                       UnfoldI("r1", RegOp("r2")))
        assert out.chi.get("r1") == TRef((mu,))

    def test_unfold_non_mu_fails(self, checker):
        chi = RegFileTy.of(r2=TInt())
        with pytest.raises(FTTypeError, match="non-recursive"):
            checker.step_instruction(state(chi), UnfoldI("r1", RegOp("r2")))

"""Tests for the JSON-lines TCP server and its client library."""

import json
import socket

import pytest

from repro.serve.client import ClientError, ServeClient
from repro.serve.protocol import Job, JobOptions
from repro.serve.server import ServeServer


@pytest.fixture(scope="module")
def server():
    """One shared background server on an ephemeral port."""
    with ServeServer(port=0, workers=2, cache_size=64) as srv:
        yield srv


@pytest.fixture
def client(server):
    with ServeClient(port=server.port) as c:
        yield c


class TestControlOps:
    def test_ping(self, client):
        assert client.ping()

    def test_stats(self, client):
        stats = client.stats()
        assert stats["pool"]["workers"] == 2
        assert "connections" in stats and "metrics" in stats


class TestJobs:
    def test_submit_run(self, client):
        result = client.submit(Job("run", source="((2 + 3) * 10)"))
        assert result.ok and result.output["value"] == "50"

    def test_submit_example(self, client):
        result = client.submit(Job("run", example="fig17"))
        assert result.ok and result.output["value"] == "<720, 720>"

    def test_cache_hit_on_resubmit(self, client):
        job = lambda: Job("run", source="(111 + 222)")
        first = client.submit(job())
        second = client.submit(job())
        assert first.ok and second.ok
        assert second.cached
        assert second.output == first.output

    def test_batch_in_submission_order(self, client):
        jobs = [Job("run", id=f"b{i}", source=f"({i} + 100)")
                for i in range(8)]
        results = client.submit_batch(jobs)
        assert [r.id for r in results] == [f"b{i}" for i in range(8)]
        assert all(r.ok for r in results)

    def test_stream_yields_every_job(self, client):
        jobs = [Job("run", id=f"s{i}", source=f"({i} * 3)")
                for i in range(6)]
        seen = {r.id: r for r in client.stream(jobs)}
        assert set(seen) == {f"s{i}" for i in range(6)}
        assert all(r.ok for r in seen.values())

    def test_error_jobs_come_back_as_results(self, client):
        result = client.submit(Job("typecheck", source="(1 + ())"))
        assert result.status == "error" and result.error

    def test_server_assigns_ids_to_anonymous_jobs(self, server):
        # Raw socket: send a job without an id, check the reply has one.
        with socket.create_connection(("127.0.0.1", server.port)) as sock:
            sock.sendall(b'{"kind": "run", "source": "(4 + 4)"}\n')
            line = sock.makefile("rb").readline()
        reply = json.loads(line)
        assert reply["status"] == "ok"
        assert reply["id"].startswith("srv-")


class TestRejection:
    def test_malformed_json_line(self, server):
        with socket.create_connection(("127.0.0.1", server.port)) as sock:
            sock.sendall(b"this is not json\n")
            reply = json.loads(sock.makefile("rb").readline())
        assert reply["status"] == "rejected"
        assert reply["error_type"] == "ProtocolError"

    def test_unknown_kind_rejected_not_dropped(self, server):
        with socket.create_connection(("127.0.0.1", server.port)) as sock:
            sock.sendall(b'{"kind": "explode", "source": "x"}\n')
            reply = json.loads(sock.makefile("rb").readline())
        assert reply["status"] == "rejected"

    def test_unknown_control_op(self, server):
        with socket.create_connection(("127.0.0.1", server.port)) as sock:
            sock.sendall(b'{"op": "dance"}\n')
            reply = json.loads(sock.makefile("rb").readline())
        assert reply["op"] == "error"


class TestResilienceOverTcp:
    def test_worker_crash_does_not_kill_the_server(self, server, client):
        crash = Job("run", source="(7 + 7)",
                    options=JobOptions(inject_crash=True, no_cache=True))
        result = client.submit(crash)
        assert result.status == "crashed"
        # same connection, next job is fine
        after = client.submit(Job("run", source="(21 + 21)"))
        assert after.ok and after.output["value"] == "42"
        assert client.stats()["pool"]["workers"] == 2


class TestClientErrors:
    def test_connect_refused(self):
        with socket.socket() as probe:     # grab a port nothing listens on
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        with pytest.raises((ClientError, OSError)):
            ServeClient(port=port).ping()

"""CLI tests for the serving layer: funtal batch / submit / serve."""

import json

import pytest

from repro.cli import EXIT_FUEL_EXHAUSTED, EXIT_JOB_FAILED, main


@pytest.fixture
def jobs_file(tmp_path):
    def write(lines, name="jobs.jsonl"):
        path = tmp_path / name
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    return write


class TestBatch:
    def test_examples_batch_all_ok(self, capsys):
        assert main(["batch", "--examples", "--workers", "2"]) == 0
        captured = capsys.readouterr()
        results = [json.loads(line) for line in
                   captured.out.strip().splitlines()]
        assert results and all(r["status"] == "ok" for r in results)
        summary = json.loads(captured.err.split("batch: ", 1)[1])
        assert summary["failed"] == 0
        assert summary["jobs"] == len(results)

    def test_jsonl_file(self, jobs_file, capsys):
        path = jobs_file([
            '{"kind": "run", "id": "a", "source": "(2 + 3)"}',
            '{"kind": "typecheck", "id": "b", '
            '"source": "lam (x: int). (x + 1)"}',
        ])
        assert main(["batch", path, "--workers", "1"]) == 0
        results = {r["id"]: r for r in
                   (json.loads(line) for line in
                    capsys.readouterr().out.strip().splitlines())}
        assert results["a"]["output"]["value"] == "5"
        assert results["b"]["output"]["type"] == "(int) -> int"

    def test_failed_job_sets_exit_code(self, jobs_file, capsys):
        path = jobs_file([
            '{"kind": "run", "id": "good", "source": "(1 + 1)"}',
            '{"kind": "typecheck", "id": "bad", "source": "(1 + ())"}',
        ])
        assert main(["batch", path, "--workers", "1"]) == EXIT_JOB_FAILED
        summary = json.loads(
            capsys.readouterr().err.split("batch: ", 1)[1])
        assert summary == {**summary, "ok": 1, "failed": 1}

    def test_out_file(self, jobs_file, tmp_path, capsys):
        path = jobs_file(['{"kind": "run", "source": "(4 + 4)"}'])
        out = str(tmp_path / "results.jsonl")
        assert main(["batch", path, "--workers", "1", "--out", out]) == 0
        lines = open(out).read().strip().splitlines()
        assert json.loads(lines[0])["output"]["value"] == "8"
        assert capsys.readouterr().out == ""       # stdout stays clean

    def test_repeat_hits_the_cache(self, capsys):
        assert main(["batch", "--examples", "--repeat", "2",
                     "--workers", "2"]) == 0
        summary = json.loads(
            capsys.readouterr().err.split("batch: ", 1)[1])
        # the second round is identical, so at least half the second
        # round's jobs must be cache hits (in practice all of them)
        assert summary["cached"] >= summary["jobs"] // 4

    def test_no_file_and_no_examples_is_an_error(self, capsys):
        assert main(["batch"]) == 1
        assert "error:" in capsys.readouterr().err


class TestSubmitAgainstLiveServer:
    @pytest.fixture(scope="class")
    def server(self):
        from repro.serve.server import ServeServer

        with ServeServer(port=0, workers=1) as srv:
            yield srv

    def test_submit_example(self, server, capsys):
        assert main(["submit", "--example", "fig17",
                     "--port", str(server.port)]) == 0
        reply = json.loads(capsys.readouterr().out)
        assert reply["status"] == "ok"
        assert reply["output"]["value"] == "<720, 720>"

    def test_submit_file(self, server, tmp_path, capsys):
        path = tmp_path / "p.ft"
        path.write_text("((2 + 3) * 10)")
        assert main(["submit", str(path), "--port", str(server.port)]) == 0
        assert json.loads(capsys.readouterr().out)["output"]["value"] == "50"

    def test_fuel_exhaustion_exit_code(self, server, tmp_path, capsys):
        path = tmp_path / "spin.ft"
        path.write_text("(jmp spin, {spin -> code[]{.; nil} "
                        "end{int; nil}. jmp spin})")
        rc = main(["submit", str(path), "--port", str(server.port),
                   "--fuel", "500"])
        assert rc == EXIT_FUEL_EXHAUSTED
        assert json.loads(
            capsys.readouterr().out)["status"] == "fuel_exhausted"

    def test_connection_refused_is_a_clean_error(self, capsys):
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        assert main(["submit", "--example", "fig17",
                     "--port", str(port)]) == 1
        assert "cannot connect" in capsys.readouterr().err


class TestExamplesRun:
    def test_runs_every_example(self, capsys):
        assert main(["examples", "--run"]) == 0
        out = capsys.readouterr().out
        assert "ran 7 examples" in out
        assert "fact-t" in out and "fig17" in out

"""Unit tests for FT syntax: boundaries, stack lambdas, import/protect,
and the cross-language traversals (substitution in both directions)."""

import pytest

from repro.f.syntax import (
    App, BinOp, FArrow, FInt, free_vars, ftype_equal, FUnit, IntE, Lam,
    subst_expr, subst_ftype, Var, free_tvars,
)
from repro.ft.syntax import (
    Boundary, FStackArrow, ft_free_vars, Import, Protect, StackDelta,
    StackLam, subst_tal_in_fexpr, tal_free_type_vars_of_fexpr,
)
from repro.papers_examples.import_example import build as build_import
from repro.tal.subst import free_type_vars, Subst, subst_instr_seq
from repro.tal.syntax import (
    Component, Halt, InstrSeq, KIND_ZETA, Mv, NIL_STACK, QEnd, Salloc, seq,
    Sst, StackTy, TInt, TUnit, TVar, WInt, WUnit,
)


def push_component(tail="z"):
    return Component(seq(
        Protect((), tail),
        Mv("r1", WInt(7)),
        Salloc(1),
        Sst(0, "r1"),
        Mv("r1", WUnit()),
        Halt(TUnit(), StackTy((TInt(),), tail), "r1"),
    ))


class TestStackDelta:
    def test_identity_apply(self):
        sigma = StackTy((TInt(),), "z")
        assert StackDelta().apply(sigma) == sigma

    def test_push_and_pop(self):
        sigma = StackTy((TInt(), TUnit()), "z")
        delta = StackDelta(pops=1, pushes=(TUnit(),))
        assert delta.apply(sigma) == StackTy((TUnit(), TUnit()), "z")

    def test_boundary_prints_delta(self):
        b = Boundary(FUnit(), push_component(),
                     StackDelta(pushes=(TInt(),)))
        assert "; 0; <int>" in str(b)

    def test_identity_boundary_prints_plain(self):
        b = Boundary(FInt(), build_import())
        assert str(b).startswith("FT[int](")


class TestStackArrowType:
    def test_equality_includes_prefixes(self):
        a = FStackArrow((FInt(),), FUnit(), (TInt(),), ())
        b = FStackArrow((FInt(),), FUnit(), (TInt(),), ())
        c = FStackArrow((FInt(),), FUnit(), (), ())
        assert ftype_equal(a, b)
        assert not ftype_equal(a, c)

    def test_not_equal_to_plain_arrow(self):
        a = FStackArrow((FInt(),), FUnit(), (), ())
        b = FArrow((FInt(),), FUnit())
        assert not ftype_equal(a, b)
        assert not ftype_equal(b, a)

    def test_subst_hook(self):
        from repro.f.syntax import FTVar

        a = FStackArrow((FTVar("a"),), FTVar("a"), (TInt(),), ())
        out = subst_ftype(a, "a", FInt())
        assert out == FStackArrow((FInt(),), FInt(), (TInt(),), ())

    def test_ftv_hook(self):
        from repro.f.syntax import FTVar

        a = FStackArrow((FTVar("a"),), FTVar("b"), (TInt(),), ())
        assert free_tvars(a) == {"a", "b"}


class TestStackLam:
    def test_is_lam_subclass(self):
        lam = StackLam((("x", FInt()),), Var("x"), (TInt(),), (TInt(),))
        assert isinstance(lam, Lam)

    def test_prints_prefixes(self):
        lam = StackLam((("x", FInt()),), Var("x"), (TInt(),), ())
        assert str(lam) == "lam[int; ] (x: int). x"

    def test_substitution_preserves_annotations(self):
        lam = StackLam((("x", FInt()),), BinOp("+", Var("x"), Var("y")),
                       (TInt(),), (TInt(),))
        out = subst_expr(lam, "y", IntE(1))
        assert isinstance(out, StackLam)
        assert out.phi_in == (TInt(),)


class TestCrossLanguageFreeVars:
    def test_boundary_component_vars_seen(self):
        comp = Component(seq(
            Import("r1", NIL_STACK, FInt(), Var("x")),
            Halt(TInt(), NIL_STACK, "r1")))
        b = Boundary(FInt(), comp)
        assert ft_free_vars(b) == {"x"}

    def test_lambda_still_binds_through_boundary(self):
        comp = Component(seq(
            Import("r1", NIL_STACK, FInt(), Var("x")),
            Halt(TInt(), NIL_STACK, "r1")))
        lam = Lam((("x", FInt()),), Boundary(FInt(), comp))
        assert ft_free_vars(lam) == set()

    def test_subst_descends_into_import(self):
        comp = Component(seq(
            Import("r1", NIL_STACK, FInt(), Var("x")),
            Halt(TInt(), NIL_STACK, "r1")))
        b = Boundary(FInt(), comp)
        out = subst_expr(b, "x", IntE(9))
        assert ft_free_vars(out) == set()
        imp = out.comp.instrs.instrs[0]
        assert imp.expr == IntE(9)

    def test_subst_reaches_local_blocks(self):
        from repro.tal.syntax import HCode, Jmp, Loc, QEnd, RegFileTy, WLoc

        label = Loc("l")
        block = HCode((), RegFileTy(), NIL_STACK, QEnd(TInt(), NIL_STACK),
                      seq(Import("r1", NIL_STACK, FInt(), Var("x")),
                          Halt(TInt(), NIL_STACK, "r1")))
        comp = Component(seq(Jmp(WLoc(label))), ((label, block),))
        out = subst_expr(Boundary(FInt(), comp), "x", IntE(3))
        assert ft_free_vars(out) == set()


class TestTalSubstThroughF:
    def test_import_annotations_substituted(self):
        iseq = seq(
            Import("r1", StackTy((), "z"), FInt(), IntE(1)),
            Halt(TInt(), StackTy((), "z"), "r1"))
        out = subst_instr_seq(
            iseq, Subst.single(KIND_ZETA, "z", NIL_STACK))
        imp = out.instrs[0]
        assert imp.protected == NIL_STACK
        assert out.term == Halt(TInt(), NIL_STACK, "r1")

    def test_protect_binds_over_rest(self):
        iseq = seq(
            Protect((), "z"),
            Halt(TUnit(), StackTy((), "z"), "r1"))
        # substituting for z must not touch the bound occurrences
        out = subst_instr_seq(
            iseq, Subst.single(KIND_ZETA, "z", NIL_STACK))
        assert out == iseq

    def test_protect_renames_on_capture(self):
        # substituting w := ...z... through protect z must rename z
        iseq = seq(
            Protect((), "z"),
            Halt(TVar("a"), StackTy((), "w"), "r1"))
        out = subst_instr_seq(
            iseq, Subst.single(KIND_ZETA, "w", StackTy((), "z")))
        protect = out.instrs[0]
        assert protect.zeta != "z"
        assert out.term.sigma == StackTy((), "z")

    def test_nested_boundary_substituted(self):
        inner = Boundary(FInt(), Component(seq(
            Mv("r1", WInt(1)),
            Halt(TInt(), StackTy((), "z"), "r1"))))
        iseq = seq(
            Import("r1", StackTy((), "z"), FInt(), inner),
            Halt(TInt(), StackTy((), "z"), "r1"))
        out = subst_instr_seq(
            iseq, Subst.single(KIND_ZETA, "z", NIL_STACK))
        inner_out = out.instrs[0].expr
        assert inner_out.comp.instrs.term == Halt(TInt(), NIL_STACK, "r1")

    def test_tal_ftv_of_fexpr(self):
        b = Boundary(FInt(), Component(seq(
            Mv("r1", WInt(1)),
            Halt(TInt(), StackTy((), "z"), "r1"))))
        assert (KIND_ZETA, "z") in tal_free_type_vars_of_fexpr(b)

    def test_free_type_vars_through_import(self):
        iseq = seq(
            Import("r1", StackTy((), "z"), FInt(), IntE(1)),
            Halt(TInt(), NIL_STACK, "r1"))
        assert (KIND_ZETA, "z") in free_type_vars(iseq)

"""Per-rule unit tests for T terminator typing: halt, jmp, ret, and the
two call rules (paper Fig 2)."""

import pytest

from repro.errors import FTTypeError
from repro.tal.syntax import (
    BOX, Call, CodeType, DeltaBind, Halt, HeapTy, Jmp, KIND_ALPHA,
    KIND_EPS, KIND_ZETA, Loc, NIL_STACK, QEnd, QEps, QIdx, QReg, RegFileTy,
    RegOp, Ret, StackTy, TBox, TInt, TUnit, TVar, WLoc,
)
from repro.tal.typecheck import InstrState, TalTypechecker

ZE = (DeltaBind(KIND_ZETA, "z"), DeltaBind(KIND_EPS, "e"))
END_INT = QEnd(TInt(), NIL_STACK)


def cont(tail="z", val=None):
    return TBox(CodeType((), RegFileTy.of(r1=val or TInt()),
                         StackTy((), tail), QEps("e")))


def callee_type(arg_prefix=(), out_prefix=()):
    """box forall[z, e].{ra: forall[].{r1:int; out_prefix::z} e;
    arg_prefix :: z} ra"""
    cont_ty = TBox(CodeType((), RegFileTy.of(r1=TInt()),
                            StackTy(tuple(out_prefix), "z"), QEps("e")))
    return CodeType(ZE, RegFileTy.of(ra=cont_ty),
                    StackTy(tuple(arg_prefix), "z"), QReg("ra"))


def state(chi=None, sigma=NIL_STACK, q=END_INT, delta=()):
    return InstrState(delta, chi if chi is not None else RegFileTy(),
                      sigma, q)


class TestHalt:
    def test_ok(self):
        chi = RegFileTy.of(r1=TInt())
        TalTypechecker().check_terminator(
            state(chi), Halt(TInt(), NIL_STACK, "r1"))

    def test_requires_end_marker(self):
        chi = RegFileTy.of(r1=TInt(), ra=cont())
        st = state(chi, StackTy((), "z"), QReg("ra"), ZE)
        with pytest.raises(FTTypeError, match="end"):
            TalTypechecker().check_terminator(
                st, Halt(TInt(), StackTy((), "z"), "r1"))

    def test_type_must_match_marker(self):
        chi = RegFileTy.of(r1=TUnit())
        with pytest.raises(FTTypeError, match="promises"):
            TalTypechecker().check_terminator(
                state(chi), Halt(TUnit(), NIL_STACK, "r1"))

    def test_stack_must_match_marker(self):
        chi = RegFileTy.of(r1=TInt())
        st = state(chi, StackTy((TInt(),), None))
        with pytest.raises(FTTypeError, match="stack"):
            TalTypechecker().check_terminator(
                st, Halt(TInt(), StackTy((TInt(),), None), "r1"))

    def test_register_must_hold_announced_type(self):
        chi = RegFileTy.of(r1=TUnit())
        with pytest.raises(FTTypeError):
            TalTypechecker().check_terminator(
                state(chi), Halt(TInt(), NIL_STACK, "r1"))

    def test_register_unset_fails(self):
        with pytest.raises(FTTypeError):
            TalTypechecker().check_terminator(
                state(), Halt(TInt(), NIL_STACK, "r1"))


class TestJmp:
    def _checker(self, ct):
        return TalTypechecker(HeapTy.of({Loc("l"): (BOX, ct)}))

    def test_paper_example(self):
        # l : box forall[].{r2: unit; int::nil} end{unit; nil}
        ct = CodeType((), RegFileTy.of(r2=TUnit()),
                      StackTy((TInt(),), None), QEnd(TUnit(), NIL_STACK))
        chi = RegFileTy.of(r1=TInt(), r2=TUnit())
        st = state(chi, StackTy((TInt(),), None), QEnd(TUnit(), NIL_STACK))
        self._checker(ct).check_terminator(st, Jmp(WLoc(Loc("l"))))

    def test_stack_mismatch(self):
        ct = CodeType((), RegFileTy(), StackTy((TInt(),), None), END_INT)
        with pytest.raises(FTTypeError, match="stack"):
            self._checker(ct).check_terminator(state(), Jmp(WLoc(Loc("l"))))

    def test_marker_mismatch(self):
        ct = CodeType((), RegFileTy(), NIL_STACK, QEnd(TUnit(), NIL_STACK))
        with pytest.raises(FTTypeError, match="intra-component"):
            self._checker(ct).check_terminator(state(), Jmp(WLoc(Loc("l"))))

    def test_non_code_target(self):
        chi = RegFileTy.of(r1=TInt())
        with pytest.raises(FTTypeError, match="non-code"):
            TalTypechecker().check_terminator(state(chi), Jmp(RegOp("r1")))


class TestRet:
    def test_ok(self):
        chi = RegFileTy.of(ra=cont(), r1=TInt())
        st = state(chi, StackTy((), "z"), QReg("ra"), ZE)
        TalTypechecker().check_terminator(st, Ret("ra", "r1"))

    def test_marker_must_be_the_ret_register(self):
        chi = RegFileTy.of(ra=cont(), r2=cont(), r1=TInt())
        st = state(chi, StackTy((), "z"), QReg("ra"), ZE)
        with pytest.raises(FTTypeError, match="marker"):
            TalTypechecker().check_terminator(st, Ret("r2", "r1"))

    def test_marker_on_stack_cannot_ret(self):
        chi = RegFileTy.of(r1=TInt())
        st = state(chi, StackTy((cont(),), "z"), QIdx(0), ZE)
        with pytest.raises(FTTypeError):
            TalTypechecker().check_terminator(st, Ret("ra", "r1"))

    def test_result_register_must_match_continuation(self):
        chi = RegFileTy.of(ra=cont(), r2=TInt())
        st = state(chi, StackTy((), "z"), QReg("ra"), ZE)
        with pytest.raises(FTTypeError, match="expects it in r1"):
            TalTypechecker().check_terminator(st, Ret("ra", "r2"))

    def test_result_type_must_match(self):
        chi = RegFileTy.of(ra=cont(), r1=TUnit())
        st = state(chi, StackTy((), "z"), QReg("ra"), ZE)
        with pytest.raises(FTTypeError, match="continuation expects"):
            TalTypechecker().check_terminator(st, Ret("ra", "r1"))

    def test_stack_must_match_continuation(self):
        chi = RegFileTy.of(ra=cont(), r1=TInt())
        st = state(chi, StackTy((TInt(),), "z"), QReg("ra"), ZE)
        with pytest.raises(FTTypeError, match="stack"):
            TalTypechecker().check_terminator(st, Ret("ra", "r1"))


class TestCallUnderEndMarker:
    """The first call rule: the caller itself ends by halting."""

    def _checker(self, ct=None):
        ct = ct if ct is not None else callee_type()
        return TalTypechecker(HeapTy.of({Loc("l"): (BOX, ct)}))

    def _chi(self):
        # continuation for the callee: halts with int over nil
        k = TBox(CodeType((), RegFileTy.of(r1=TInt()), NIL_STACK, END_INT))
        return RegFileTy.of(ra=k)

    def test_ok(self):
        st = state(self._chi(), NIL_STACK, END_INT)
        self._checker().check_terminator(
            st, Call(WLoc(Loc("l")), NIL_STACK, END_INT))

    def test_q_param_must_equal_current_marker(self):
        st = state(self._chi(), NIL_STACK, END_INT)
        with pytest.raises(FTTypeError, match="must pass that marker"):
            self._checker().check_terminator(
                st, Call(WLoc(Loc("l")), NIL_STACK,
                         QEnd(TUnit(), NIL_STACK)))

    def test_callee_must_abstract_zeta_eps(self):
        ct = CodeType((), RegFileTy.of(ra=cont()), NIL_STACK, QReg("ra"))
        st = state(self._chi(), NIL_STACK, END_INT)
        with pytest.raises(FTTypeError, match="zeta, eps"):
            self._checker(ct).check_terminator(
                st, Call(WLoc(Loc("l")), NIL_STACK, END_INT))

    def test_argument_prefix_checked(self):
        ct = callee_type(arg_prefix=(TInt(),))
        st = state(self._chi(), StackTy((TUnit(),), None), END_INT)
        with pytest.raises(FTTypeError, match="slot 0"):
            self._checker(ct).check_terminator(
                st, Call(WLoc(Loc("l")), NIL_STACK, END_INT))

    def test_protected_tail_must_match(self):
        st = state(self._chi(), StackTy((TInt(),), None), END_INT)
        with pytest.raises(FTTypeError, match="tail"):
            self._checker().check_terminator(
                st, Call(WLoc(Loc("l")), NIL_STACK, END_INT))

    def test_continuation_register_type_checked(self):
        # caller's ra holds a continuation with the wrong value type
        bad_k = TBox(CodeType((), RegFileTy.of(r1=TUnit()), NIL_STACK,
                              END_INT))
        st = state(RegFileTy.of(ra=bad_k), NIL_STACK, END_INT)
        with pytest.raises(FTTypeError):
            self._checker().check_terminator(
                st, Call(WLoc(Loc("l")), NIL_STACK, END_INT))

    def test_marker_in_register_cannot_call(self):
        # there is no call rule for q = register
        chi = self._chi().set("r7", cont())
        st = state(chi, StackTy((), "z"),
                   QReg("r7"), ZE)
        with pytest.raises(FTTypeError, match="end.*or a"):
            self._checker().check_terminator(
                st, Call(WLoc(Loc("l")), StackTy((), "z"), END_INT))


class TestCallUnderIndexMarker:
    """The second call rule: marker on the stack, shifted by i + k - j."""

    def _setup(self, arg_prefix=(TInt(),), out_prefix=()):
        ct = callee_type(arg_prefix, out_prefix)
        checker = TalTypechecker(HeapTy.of({Loc("l"): (BOX, ct)}))
        # current stack: args :: kont :: z ; marker at len(args)
        kont = cont()
        sigma = StackTy(tuple(arg_prefix) + (kont,), "z")
        chi = RegFileTy.of(
            ra=TBox(CodeType((), RegFileTy.of(r1=TInt()),
                             StackTy(tuple(out_prefix) + (kont,), "z"),
                             QIdx(len(out_prefix)))))
        return checker, sigma, chi, kont

    def test_ok_with_shift(self):
        checker, sigma, chi, kont = self._setup()
        st = state(chi, sigma, QIdx(1), ZE)
        checker.check_terminator(
            st, Call(WLoc(Loc("l")), StackTy((kont,), "z"), QIdx(0)))

    def test_wrong_shift_rejected(self):
        checker, sigma, chi, kont = self._setup()
        st = state(chi, sigma, QIdx(1), ZE)
        with pytest.raises(FTTypeError, match="relocate"):
            checker.check_terminator(
                st, Call(WLoc(Loc("l")), StackTy((kont,), "z"), QIdx(1)))

    def test_marker_inside_arguments_rejected(self):
        checker, sigma, chi, kont = self._setup()
        # marker at slot 0, but slot 0 is consumed as the callee's argument
        st = state(chi, StackTy((TInt(), kont), "z"), QIdx(0), ZE)
        with pytest.raises(FTTypeError, match="within"):
            checker.check_terminator(
                st, Call(WLoc(Loc("l")), StackTy((kont,), "z"), QIdx(0)))

"""An abstract data type in pure T: existential packages end-to-end.

The paper's T has existential types but no worked example; this test
builds the classic ADT encoding and pushes it through the whole pipeline:

* a *counter package* ``exists a. box <a, inc(a), get(a)>`` whose hidden
  representation is a mutable tuple ``ref <int>``;
* a client that ``unpack``s the package, calls ``inc`` and then ``get``
  through continuation blocks that are themselves *polymorphic in the
  hidden type* (instantiated with the opened variable at call time);
* the abstraction boundary is enforced: a client that peeks at the
  representation without unpacking -- or after unpacking, at the abstract
  type -- is rejected by the typechecker.

This exercises pack/unpack, ``call`` with abstract stack prefixes,
continuation blocks with value-type binders, and the machine's type
substitution at jump time, all in one program.
"""

import pytest

from repro.errors import FTTypeError
from repro.tal.machine import run_component
from repro.tal.syntax import (
    Aop, Balloc, Call, CodeType, Component, DeltaBind, Halt, HCode,
    KIND_ALPHA, KIND_EPS, KIND_ZETA, Ld, Loc, Mv, NIL_STACK, Pack, QEnd,
    QEps, QReg, Ralloc, RegFileTy, RegOp, Ret, Salloc, seq, Sfree, Sld,
    Sst, St, StackTy, TBox, TExists, TInt, TRef, TupleTy, TUnit, TVar,
    TyApp, Unpack, WInt, WLoc, WUnit,
)
from repro.tal.typecheck import check_program

LINC = Loc("linc")
LGET = Loc("lget")
KONT1 = Loc("kont1")
KONT2 = Loc("kont2")

END_INT = QEnd(TInt(), NIL_STACK)


def _cont(value_ty, tail="z"):
    return TBox(CodeType((), RegFileTy.of(r1=value_ty),
                         StackTy((), tail), QEps("e")))


def _op_type(state_ty, result_ty):
    """box forall[z, e].{ra: forall[].{r1: result; z} e; state :: z} ra"""
    return TBox(CodeType(
        (DeltaBind(KIND_ZETA, "z"), DeltaBind(KIND_EPS, "e")),
        RegFileTy.of(ra=_cont(result_ty)),
        StackTy((state_ty,), "z"), QReg("ra")))


def package_type() -> TExists:
    """exists a. box <a, inc(a), get(a)>"""
    a = TVar("a")
    return TExists("a", TBox(TupleTy((
        a, _op_type(a, TUnit()), _op_type(a, TInt())))))


def _inc_block() -> HCode:
    state = TRef((TInt(),))
    return HCode(
        (DeltaBind(KIND_ZETA, "z"), DeltaBind(KIND_EPS, "e")),
        RegFileTy.of(ra=_cont(TUnit())),
        StackTy((state,), "z"), QReg("ra"),
        seq(
            Sld("r2", 0),
            Sfree(1),
            Ld("r1", "r2", 0),
            Aop("add", "r1", "r1", WInt(1)),
            St("r2", 0, "r1"),
            Mv("r1", WUnit()),
            Ret("ra", "r1"),
        ))


def _get_block() -> HCode:
    state = TRef((TInt(),))
    return HCode(
        (DeltaBind(KIND_ZETA, "z"), DeltaBind(KIND_EPS, "e")),
        RegFileTy.of(ra=_cont(TInt())),
        StackTy((state,), "z"), QReg("ra"),
        seq(
            Sld("r2", 0),
            Sfree(1),
            Ld("r1", "r2", 0),
            Ret("ra", "r1"),
        ))


def _kont1_block() -> HCode:
    """After inc returns: the protected tail holds the (abstract) state
    and the get pointer; call get through them."""
    a1 = TVar("a1")
    sigma = StackTy((a1, _op_type(a1, TInt())), None)
    return HCode(
        (DeltaBind(KIND_ALPHA, "a1"),),
        RegFileTy.of(r1=TUnit()), sigma, END_INT,
        seq(
            Sld("r3", 0),                 # the hidden state
            Sld("r4", 1),                 # the get operation
            Sfree(2),
            Salloc(1),
            Sst(0, "r3"),                 # push the state argument
            Mv("ra", WLoc(KONT2)),
            Call(RegOp("r4"), NIL_STACK, END_INT),
        ))


def _kont2_block() -> HCode:
    return HCode(
        (), RegFileTy.of(r1=TInt()), NIL_STACK, END_INT,
        seq(Halt(TInt(), NIL_STACK, "r1")))


def build_counter_client(initial: int = 0) -> Component:
    pkg_ty = package_type()
    state = TRef((TInt(),))
    entry = seq(
        # allocate the hidden representation
        Mv("r1", WInt(initial)),
        Salloc(1),
        Sst(0, "r1"),
        Ralloc("r2", 1),
        # build and box the package tuple <state, inc, get>
        Mv("r3", WLoc(LINC)),
        Mv("r4", WLoc(LGET)),
        Salloc(3),
        Sst(0, "r2"),
        Sst(1, "r3"),
        Sst(2, "r4"),
        Balloc("r5", 3),
        Mv("r6", Pack(state, RegOp("r5"), pkg_ty)),
        # the client: open the package and use it abstractly
        Unpack("b", "r7", RegOp("r6")),
        Ld("r1", "r7", 0),                # state : b
        Ld("r2", "r7", 1),                # inc : inc(b)
        Ld("r3", "r7", 2),                # get : get(b)
        Salloc(3),
        Sst(0, "r1"),                     # the inc argument
        Sst(1, "r1"),                     # state, protected for kont1
        Sst(2, "r3"),                     # get, protected for kont1
        Mv("ra", TyApp(WLoc(KONT1), (TVar("b"),))),
        Call(RegOp("r2"),
             StackTy((TVar("b"), _op_type(TVar("b"), TInt())), None),
             END_INT),
    )
    return Component(entry, (
        (LINC, _inc_block()), (LGET, _get_block()),
        (KONT1, _kont1_block()), (KONT2, _kont2_block()),
    ))


class TestCounterPackage:
    def test_typechecks_at_int(self):
        ty, sigma = check_program(build_counter_client(), TInt())
        assert ty == TInt() and sigma == NIL_STACK

    @pytest.mark.parametrize("initial", [0, 10, -3])
    def test_runs_to_initial_plus_one(self, initial):
        halted, machine = run_component(build_counter_client(initial))
        assert halted.word == WInt(initial + 1)
        assert machine.memory.depth == 0

    def test_package_type_prints_and_parses(self):
        from repro.surface.parser import parse_ttype

        ty = package_type()
        assert parse_ttype(str(ty)) == ty

    def test_whole_program_parses_back(self):
        from repro.surface.parser import parse_component

        comp = build_counter_client()
        assert parse_component(str(comp)) == comp


class TestAbstractionEnforced:
    def test_peeking_at_the_representation_rejected(self):
        """ld through the opened-but-abstract state must fail: b is not a
        tuple type."""
        comp = build_counter_client()
        instrs = list(comp.instrs.instrs)
        # after `Ld("r1", "r7", 0)` the state is in r1 at type b; try to
        # read through it as if it were the ref tuple
        idx = next(i for i, ins in enumerate(instrs)
                   if isinstance(ins, Ld) and ins.rd == "r1")
        instrs.insert(idx + 1, Ld("r4", "r1", 0))
        from repro.tal.syntax import InstrSeq

        broken = Component(InstrSeq(tuple(instrs), comp.instrs.term),
                           comp.heap)
        with pytest.raises(FTTypeError, match="tuple"):
            check_program(broken, TInt())

    def test_packing_wrong_representation_rejected(self):
        """pack with a hidden type that does not match the body fails."""
        comp = build_counter_client()
        instrs = list(comp.instrs.instrs)
        idx, pack_instr = next(
            (i, ins) for i, ins in enumerate(instrs)
            if isinstance(ins, Mv) and isinstance(ins.u, Pack))
        bad_pack = Pack(TInt(), pack_instr.u.body, pack_instr.u.as_ty)
        instrs[idx] = Mv(pack_instr.rd, bad_pack)
        from repro.tal.syntax import InstrSeq

        broken = Component(InstrSeq(tuple(instrs), comp.instrs.term),
                           comp.heap)
        with pytest.raises(FTTypeError, match="pack body"):
            check_program(broken, TInt())

"""Tests for the per-digest tiering state machine and signed receipts.

The controller (:mod:`repro.tiering.controller`) carries each content
digest through ``cold -> profiling -> promoting -> promoted`` with
``demoted`` (operational hysteresis) and ``quarantined`` (semantic,
terminal) as the demotion backstops; the receipt book
(:mod:`repro.tiering.receipts`) persists the validated-once proof in
the artifact store behind an HMAC signature.
"""

import pytest

from repro import obs
from repro.link.store import ArtifactStore
from repro.obs.events import OBS
from repro.tiering.controller import (
    COLD, DEMOTED, PROFILING, PROMOTED, PROMOTING, QUARANTINED, STATES,
    TieringController,
)
from repro.tiering.policy import TieringPolicy, set_active_policy
from repro.tiering.receipts import (
    RECEIPT_VERSION, ReceiptBook, sign_receipt, verify_receipt,
)


@pytest.fixture(autouse=True)
def _restore_active_policy():
    yield
    set_active_policy(None)


def auto(threshold=100, **overrides):
    return TieringPolicy(mode="auto", promote_threshold=threshold,
                         **overrides)


class TestStateMachine:
    def test_states_enumerated(self):
        assert STATES == (COLD, PROFILING, PROMOTING, PROMOTED, DEMOTED,
                          QUARANTINED)

    def test_unknown_digest_is_cold(self):
        ctl = TieringController(auto())
        assert ctl.state("nope") == COLD
        assert not ctl.is_promoted("nope")

    def test_first_run_starts_profiling(self):
        ctl = TieringController(auto())
        assert ctl.record_steps("d1", 10) is False
        assert ctl.state("d1") == PROFILING

    def test_threshold_crossing_schedules_once(self):
        ctl = TieringController(auto(threshold=100))
        assert ctl.record_steps("d1", 60) is False
        assert ctl.record_steps("d1", 60) is True     # 120 >= 100
        assert ctl.state("d1") == PROMOTING
        # Already promoting: further runs never reschedule.
        assert ctl.record_steps("d1", 500) is False

    def test_disabled_policy_never_schedules(self):
        ctl = TieringController(TieringPolicy(mode="off"))
        assert ctl.record_steps("d1", 10 ** 9) is False
        assert ctl.state("d1") == PROFILING

    def test_aggressive_threshold_divides(self):
        ctl = TieringController(
            TieringPolicy(mode="aggressive", promote_threshold=1000))
        assert ctl.record_steps("d1", 100) is True    # 1000 // 10

    def test_inflight_budget_defers(self):
        ctl = TieringController(auto(threshold=10,
                                     max_inflight_promotions=1))
        assert ctl.record_steps("d1", 50) is True
        assert ctl.record_steps("d2", 50) is False    # budget exhausted
        assert ctl.state("d2") == PROFILING
        ctl.promotion_succeeded("d1")
        assert ctl.record_steps("d2", 1) is True      # slot freed

    def test_success_promotes(self):
        ctl = TieringController(auto(threshold=10))
        ctl.record_steps("d1", 50)
        ctl.promotion_succeeded("d1", "receipt earned")
        assert ctl.is_promoted("d1")

    def test_failure_hysteresis_then_demotion(self):
        ctl = TieringController(auto(threshold=10, demote_after=2))
        ctl.record_steps("d1", 50)
        ctl.promotion_failed("d1", "injected fault")
        # One strike: back to profiling with the step clock reset.
        assert ctl.state("d1") == PROFILING
        assert ctl.record_steps("d1", 5) is False     # clock was reset
        assert ctl.record_steps("d1", 50) is True
        ctl.promotion_failed("d1", "injected fault again")
        assert ctl.state("d1") == DEMOTED

    def test_demoted_is_terminal(self):
        ctl = TieringController(auto(threshold=10, demote_after=1))
        ctl.record_steps("d1", 50)
        ctl.promotion_failed("d1", "boom")
        assert ctl.state("d1") == DEMOTED
        assert ctl.record_steps("d1", 10 ** 9) is False
        ctl.promotion_succeeded("d1")
        assert ctl.state("d1") == DEMOTED

    def test_aborted_returns_to_profiling_without_strike(self):
        ctl = TieringController(auto(threshold=10, demote_after=1))
        ctl.record_steps("d1", 50)
        ctl.promotion_aborted("d1", "queue full")
        assert ctl.state("d1") == PROFILING
        # No strike counted: the next failure is still the first.
        assert ctl.record_steps("d1", 50) is True
        assert ctl.state("d1") == PROMOTING

    def test_divergence_quarantines_from_any_state(self):
        ctl = TieringController(auto(threshold=10))
        ctl.record_steps("d1", 50)
        ctl.promotion_succeeded("d1")
        ctl.divergence("d1", "fast != ref")
        assert ctl.state("d1") == QUARANTINED
        assert ctl.record_steps("d1", 10 ** 9) is False
        ctl.promotion_succeeded("d1")
        assert ctl.state("d1") == QUARANTINED

    def test_counts_and_snapshot(self):
        ctl = TieringController(auto(threshold=10))
        ctl.record_steps("hot", 50)
        ctl.promotion_succeeded("hot")
        ctl.record_steps("warm", 1)
        ctl.divergence("evil", "refused")
        counts = ctl.counts()
        assert counts[PROMOTED] == 1
        assert counts[PROFILING] == 1
        assert counts[QUARANTINED] == 1
        snap = ctl.snapshot()
        assert set(snap["digests"]) == {"hot", "warm", "evil"}
        assert snap["digests"]["evil"]["reason"] == "refused"
        assert snap["policy"]["mode"] == "auto"

    def test_history_records_transitions(self):
        ctl = TieringController(auto(threshold=10))
        ctl.record_steps("d1", 50)
        ctl.promotion_succeeded("d1", "receipt earned")
        events = [h["event"] for h
                  in ctl.snapshot()["digests"]["d1"]["history"]]
        assert events == ["first-run", "hot", "promoted"]

    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "tiering.json")
        ctl = TieringController(auto(threshold=10, demote_after=3))
        ctl.record_steps("d1", 50)
        ctl.promotion_succeeded("d1")
        ctl.divergence("d2", "refused")
        ctl.save(path)

        revived = TieringController.load(path)
        assert revived.policy == ctl.policy
        assert revived.state("d1") == PROMOTED
        assert revived.state("d2") == QUARANTINED
        # The revived machine keeps enforcing terminality.
        revived.promotion_succeeded("d2")
        assert revived.state("d2") == QUARANTINED


class TestReceipts:
    def test_sign_verify_round_trip(self):
        payload = {"digest": "abc", "t_blocks": ["x", "y"]}
        payload["sig"] = sign_receipt(payload, "k")
        assert verify_receipt(payload, "k")
        assert not verify_receipt(payload, "other-key")

    def test_signature_covers_every_field(self):
        payload = {"digest": "abc", "jit_threshold": 16}
        payload["sig"] = sign_receipt(payload, "k")
        tampered = dict(payload, jit_threshold=1)
        assert not verify_receipt(tampered, "k")

    def test_book_put_get(self, tmp_path):
        book = ReceiptBook(ArtifactStore(tmp_path), key="k")
        signed = book.put("d1", {"digest": "d1", "t_blocks": []})
        assert signed["version"] == RECEIPT_VERSION
        got = book.get("d1")
        assert got is not None and got["digest"] == "d1"
        assert book.digests() == ["d1"]

    def test_miss_returns_none(self, tmp_path):
        book = ReceiptBook(ArtifactStore(tmp_path), key="k")
        assert book.get("unknown") is None

    def test_tampered_receipt_dropped(self, tmp_path):
        store = ArtifactStore(tmp_path)
        book = ReceiptBook(store, key="k")
        signed = book.put("d1", {"digest": "d1", "jit_threshold": 16})
        # Re-store the receipt with one field changed but the original
        # signature: the store's own integrity check passes (it was a
        # legitimate put), the HMAC does not.
        tampered = dict(signed, jit_threshold=1)
        store.put("d1", tampered, meta={"digest": "d1"}, kind="receipt")
        obs.reset()
        obs.enable(record=False)
        try:
            assert book.get("d1") is None
            counters = OBS.metrics.snapshot()["counters"]
            assert counters.get("tiering.validate.receipt_bad", 0) >= 1
        finally:
            obs.disable()
            obs.reset()
        # The untrustworthy file is gone: the next get is a plain miss.
        assert book.digests() == []

    def test_stale_schema_version_dropped(self, tmp_path):
        store = ArtifactStore(tmp_path)
        book = ReceiptBook(store, key="k")
        payload = {"digest": "d1", "version": RECEIPT_VERSION + 1}
        payload["sig"] = sign_receipt(payload, "k")
        store.put("d1", payload, meta={"digest": "d1"}, kind="receipt")
        assert book.get("d1") is None
        assert book.digests() == []

    def test_wrong_key_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        ReceiptBook(store, key="k1").put("d1", {"digest": "d1"})
        assert ReceiptBook(store, key="k2").get("d1") is None

    def test_hit_and_miss_metrics(self, tmp_path):
        book = ReceiptBook(ArtifactStore(tmp_path), key="k")
        obs.reset()
        obs.enable(record=False)
        try:
            assert book.get("d1") is None
            book.put("d1", {"digest": "d1"})
            assert book.get("d1") is not None
            counters = OBS.metrics.snapshot()["counters"]
            assert counters["tiering.validate.receipt_miss"] == 1
            assert counters["tiering.validate.receipt_hit"] == 1
            assert counters["tiering.receipt.put"] == 1
        finally:
            obs.disable()
            obs.reset()

    def test_book_key_defaults_to_active_policy(self, tmp_path):
        set_active_policy(TieringPolicy(key="session-key"))
        book = ReceiptBook(ArtifactStore(tmp_path))
        assert book.key == "session-key"

"""Tests for the foreign-pointer (lump) extension of paper section 6."""

import pytest

from repro.equiv.observation import canonical_value, observe
from repro.errors import FTTypeError, MachineError
from repro.f.syntax import (
    App, BinOp, FArrow, FInt, FUnit, ftype_equal, IntE, is_value, Lam,
    TupleE, UnitE, Var,
)
from repro.ft.lump import FLump, LumpVal, lump_type_of_ref
from repro.ft.machine import evaluate_ft, FTMachine
from repro.ft.translate import type_translation
from repro.ft.typecheck import check_ft_expr, FTTypechecker
from repro.stdlib.foreign import (
    bump, counter_value, INT_CELL_LUMP, new_counter,
)
from repro.stdlib.prelude import let_
from repro.surface.parser import parse_ftype
from repro.tal.heap import Memory
from repro.tal.syntax import (
    HeapTy, HTuple, Loc, REF, TInt, TRef, TupleTy, TUnit, WInt, WLoc,
)


class TestLumpType:
    def test_prints_and_parses(self):
        ty = FLump((TInt(), TUnit()))
        assert str(ty) == "L<int, unit>"
        assert parse_ftype("L<int, unit>") == ty

    def test_translation_is_mutable_ref(self):
        assert type_translation(INT_CELL_LUMP) == TRef((TInt(),))

    def test_equality(self):
        assert ftype_equal(FLump((TInt(),)), FLump((TInt(),)))
        assert not ftype_equal(FLump((TInt(),)), FLump((TUnit(),)))
        assert not ftype_equal(FLump((TInt(),)), FInt())

    def test_lump_of_ref(self):
        assert lump_type_of_ref(TRef((TInt(),))) == FLump((TInt(),))
        assert lump_type_of_ref(TInt()) is None


class TestLumpValue:
    def test_is_a_value(self):
        assert is_value(LumpVal(Loc("l")))

    def test_canonicalizes_opaquely(self):
        assert canonical_value(LumpVal(Loc("l"))) == "<lump>"

    def test_typed_from_psi(self):
        from repro.tal.syntax import NIL_STACK, RegFileTy

        loc = Loc("cell")
        psi = HeapTy.of({loc: (REF, TupleTy((TInt(),)))})
        checker = FTTypechecker(psi)
        ty, _ = checker.check_fexpr((), RegFileTy(), NIL_STACK,
                                    LumpVal(loc))
        assert ty == FLump((TInt(),))

    def test_untracked_location_rejected(self):
        with pytest.raises(FTTypeError, match="unknown location"):
            check_ft_expr(LumpVal(Loc("nowhere")))


class TestBoundaryTranslation:
    def test_round_trip(self):
        mem = Memory()
        loc = mem.alloc(HTuple((WInt(5),)), REF)
        from repro.ft.boundary import f_to_t, t_to_f

        v = t_to_f(WLoc(loc), INT_CELL_LUMP, mem)
        assert v == LumpVal(loc)
        assert f_to_t(v, INT_CELL_LUMP, mem) == WLoc(loc)

    def test_immutable_tuple_rejected_as_lump(self):
        from repro.ft.boundary import t_to_f
        from repro.tal.syntax import BOX

        mem = Memory()
        loc = mem.alloc(HTuple((WInt(5),)), BOX)
        with pytest.raises(MachineError, match="not a mutable"):
            t_to_f(WLoc(loc), INT_CELL_LUMP, mem)


class TestCounterLibrary:
    def test_library_types(self):
        assert str(check_ft_expr(new_counter())[0]) == "(int) -> L<int>"
        assert str(check_ft_expr(bump())[0]) == "(L<int>) -> unit"
        assert str(check_ft_expr(counter_value())[0]) == "(L<int>) -> int"

    def _program(self, bumps: int):
        # let c = new_counter(10) in (bump c; ...; value c)
        body = App(counter_value(), (Var("c"),))
        for i in range(bumps):
            body = let_(f"u{i}", FUnit(), App(bump(), (Var("c"),)), body)
        return let_("c", INT_CELL_LUMP,
                    App(new_counter(), (IntE(10),)), body)

    def test_counter_program_typechecks(self):
        ty, _ = check_ft_expr(self._program(2))
        assert ty == FInt()

    @pytest.mark.parametrize("bumps", [0, 1, 3])
    def test_counter_counts(self, bumps):
        value, _ = evaluate_ft(self._program(bumps))
        assert value == IntE(10 + bumps)

    def test_aliasing_is_observable(self):
        """Two F bindings to the *same* lump share state -- the section-6
        caveat about lumps breaking referential transparency."""
        prog = let_(
            "c", INT_CELL_LUMP, App(new_counter(), (IntE(0),)),
            let_("d", INT_CELL_LUMP, Var("c"),
                 let_("u", FUnit(), App(bump(), (Var("c"),)),
                      App(counter_value(), (Var("d"),)))))
        value, _ = evaluate_ft(prog)
        assert value == IntE(1)  # d saw c's write

    def test_distinct_counters_do_not_alias(self):
        prog = let_(
            "c", INT_CELL_LUMP, App(new_counter(), (IntE(0),)),
            let_("d", INT_CELL_LUMP, App(new_counter(), (IntE(100),)),
                 let_("u", FUnit(), App(bump(), (Var("c"),)),
                      BinOp("+", App(counter_value(), (Var("c"),)),
                            App(counter_value(), (Var("d"),))))))
        value, _ = evaluate_ft(prog)
        assert value == IntE(101)

    def test_lump_cannot_be_used_as_int(self):
        prog = let_("c", INT_CELL_LUMP, App(new_counter(), (IntE(0),)),
                    BinOp("+", Var("c"), IntE(1)))
        with pytest.raises(FTTypeError):
            check_ft_expr(prog)

    def test_observation_of_lump_program(self):
        obs = observe(self._program(2))
        assert obs.kind == "halted" and obs.value == 12

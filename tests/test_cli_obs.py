"""Tests for the observability CLI surface: ``funtal top`` / ``flame`` /
``slo``, quantiles in ``funtal stats``, and ``--trace-out`` on batch."""

import json

import pytest

from repro import obs
from repro.cli import EXIT_SLO_BREACH, main
from repro.obs.profile import ProfileSnapshot, content_hash
from repro.papers_examples.fig17_factorial import build_fact_f


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def inner_hash():
    return content_hash(build_fact_f().body.fn.fn.body)


class TestTop:
    def test_ranks_factorial_lambda_first(self, capsys):
        assert main(["top", "fig17"]) == 0
        out = capsys.readouterr().out
        rows = [l for l in out.splitlines() if l.strip().startswith("1 ")]
        assert rows and inner_hash() in rows[0]
        assert "value: <720, 720>" in out

    def test_json_and_artifact(self, tmp_path, capsys):
        path = str(tmp_path / "profile.json")
        assert main(["top", "fig17", "--json", "--out", path]) == 0
        data = json.loads(capsys.readouterr().out)
        snap = ProfileSnapshot.load(path)
        assert snap.to_dict() == data
        assert snap.entries[0]["key"] == inner_hash()

    def test_limit(self, capsys):
        assert main(["top", "fig17", "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert not any(l.strip().startswith("3 ") for l in out.splitlines())

    def test_unknown_example(self, capsys):
        assert main(["top", "nope"]) == 2


class TestFlame:
    def test_folded_stacks_on_stdout(self, capsys):
        assert main(["flame", "fig17"]) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.strip()]
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert int(count) > 0 and stack
        assert any("block lloop" in l for l in lines)

    def test_out_file(self, tmp_path, capsys):
        path = str(tmp_path / "flame.folded")
        assert main(["flame", "fig17", "--out", path]) == 0
        content = open(path, encoding="utf-8").read()
        assert inner_hash()[:8] in content


class TestStatsQuantiles:
    def test_stats_reports_quantiles(self, capsys):
        assert main(["stats", "fig17", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        hist = data["histograms"]["span.ft.evaluate.us"]
        for q in ("p50", "p95", "p99"):
            assert hist[q] is not None


class TestSlo:
    def test_generous_thresholds_pass(self, capsys):
        assert main(["slo", "--workers", "2", "--repeat", "1",
                     "--p99-ms", "600000", "--max-error-rate", "0"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "p99_ms" in out

    def test_breach_exits_seven(self, capsys):
        assert main(["slo", "--workers", "2", "--repeat", "1",
                     "--p50-ms", "0.000001"]) == EXIT_SLO_BREACH
        err = capsys.readouterr().err
        assert "slo breach: p50_ms" in err

    def test_json_report_shape(self, capsys):
        assert main(["slo", "--workers", "2", "--repeat", "1",
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] and report["breaches"] == []
        for q in ("p50", "p95", "p99"):
            assert report["serve.job.ms"][q] is not None


class TestBatchTraceOut:
    def test_stitched_multi_pid_trace(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        assert main(["batch", "--examples", "--workers", "4", "--no-cache",
                     "--trace-out", path, "--out",
                     str(tmp_path / "results.jsonl")]) == 0
        events = [json.loads(l) for l in open(path, encoding="utf-8")]
        spans = [e for e in events if e["type"] == "span"]
        roots = [s for s in spans if s["name"] == "serve.job"]
        assert roots
        root_ids = {s["span_id"] for s in roots}
        worker = [s for s in spans if s["pid"] != 0]
        assert len({s["pid"] for s in worker}) >= 2
        evaluates = [s for s in worker if s["name"] == "ft.evaluate"]
        assert evaluates
        assert all(s["parent_id"] in root_ids for s in evaluates)

    def test_chrome_format(self, tmp_path, capsys):
        path = str(tmp_path / "trace.json")
        assert main(["batch", "--examples", "--workers", "2", "--no-cache",
                     "--format", "chrome", "--trace-out", path, "--out",
                     str(tmp_path / "results.jsonl")]) == 0
        doc = json.load(open(path, encoding="utf-8"))
        pids = {r["pid"] for r in doc["traceEvents"]
                if r.get("ph") == "X"}
        assert len(pids) >= 2    # parent lane + at least one worker lane

"""Erasure invariance: running a T program never depends on its type
annotations (the static-discipline property, tested at machine level)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.equiv.observation import canonical_value
from repro.errors import FTTypeError
from repro.papers_examples import fig3_call_to_call, sec3_sequences
from repro.tal.erasure import erase_types, erase_word
from repro.tal.machine import run_component
from repro.tal.syntax import (
    Fold, Pack, RegOp, TExists, TInt, TRec, TUnit, TVar, TyApp, WInt,
    WLoc, Loc, NIL_STACK, QEps,
)
from repro.tal.typecheck import check_program

from tests.strategies import random_t_program


def _erased_result(comp):
    halted, _ = run_component(erase_types(comp))
    return halted.word


class TestEraseWord:
    def test_base_words_untouched(self):
        assert erase_word(WInt(3)) == WInt(3)
        assert erase_word(RegOp("r1")) == RegOp("r1")
        assert erase_word(WLoc(Loc("l"))) == WLoc(Loc("l"))

    def test_pack_keeps_payload(self):
        ex = TExists("a", TVar("a"))
        erased = erase_word(Pack(TInt(), WInt(7), ex))
        assert isinstance(erased, Pack)
        assert erased.body == WInt(7)
        assert erased.hidden == TUnit()

    def test_tyapp_keeps_arity_and_marker_names(self):
        u = TyApp(WLoc(Loc("l")), (TInt(), QEps("e")))
        erased = erase_word(u)
        assert len(erased.insts) == 2
        assert erased.insts[1] == QEps("e")  # names survive erasure


class TestErasureInvariance:
    def test_fig3(self):
        comp = fig3_call_to_call.build()
        original, _ = run_component(comp)
        assert _erased_result(comp) == original.word == WInt(2)

    def test_sec3_programs(self):
        for build in (sec3_sequences.build_sequence_program,
                      sec3_sequences.build_jmp_program,
                      sec3_sequences.build_call_program):
            comp = build()
            original, _ = run_component(comp)
            assert _erased_result(comp) == original.word

    def test_existential_adt(self):
        from tests.test_existential_adt import build_counter_client

        comp = build_counter_client(41)
        original, _ = run_component(comp)
        assert _erased_result(comp) == original.word == WInt(42)

    @given(st.integers(0, 5_000))
    @settings(max_examples=100, deadline=None)
    def test_random_programs(self, seed):
        comp = random_t_program(seed)
        original, _ = run_component(comp)
        assert _erased_result(comp) == original.word

    def test_erased_program_is_usually_ill_typed(self):
        """Erasure destroys typing (that is the point: the machine runs
        it anyway)."""
        erased = erase_types(fig3_call_to_call.build())
        with pytest.raises(FTTypeError):
            check_program(erased, TInt())

    def test_trace_shape_is_preserved(self):
        comp = fig3_call_to_call.build()
        _, machine_orig = run_component(comp, trace=True)
        _, machine_erased = run_component(erase_types(comp), trace=True)
        assert [e.kind for e in machine_orig.trace] == \
            [e.kind for e in machine_erased.trace]
        assert [e.pretty_label() for e in machine_orig.trace] == \
            [e.pretty_label() for e in machine_erased.trace]

"""Tests for the static component lints and their CLI surface."""

import pytest

from repro.analysis.lint import lint_component, LintWarning
from repro.papers_examples.fig3_call_to_call import build as build_fig3
from repro.papers_examples.fig16_two_blocks import build_f1
from repro.tal.syntax import (
    Component, Halt, HCode, Jmp, Loc, Mv, NIL_STACK, QEnd, RegFileTy, seq,
    TInt, WInt, WLoc,
)

END_INT = QEnd(TInt(), NIL_STACK)


def _halting_block(n=1):
    return HCode((), RegFileTy.of(r1=TInt()), NIL_STACK, END_INT,
                 seq(Mv("r1", WInt(n)), Halt(TInt(), NIL_STACK, "r1")))


class TestUnreachableBlocks:
    def test_clean_program(self):
        assert lint_component(build_fig3()) == []

    def test_orphan_block_flagged(self):
        orphan = Loc("orphan")
        comp = Component(
            seq(Mv("r1", WInt(1)), Halt(TInt(), NIL_STACK, "r1")),
            ((orphan, _halting_block()),))
        warnings = lint_component(comp)
        assert any(w.kind == "unreachable-block" and w.subject == "orphan"
                   for w in warnings)

    def test_dynamic_jumps_suppress_flag(self):
        # a component calling through a register may reach any block
        from repro.papers_examples.fig11_jit import build_jit

        comp = build_jit().fn.comp
        assert not any(w.kind == "unreachable-block"
                       for w in lint_component(comp))


class TestNoExit:
    def test_spinner_flagged(self):
        spin = Loc("spin")
        block = HCode((), RegFileTy(), NIL_STACK, END_INT,
                      seq(Jmp(WLoc(spin))))
        comp = Component(seq(Jmp(WLoc(spin))), ((spin, block),))
        warnings = lint_component(comp)
        assert any(w.kind == "no-exit" for w in warnings)

    def test_terminating_program_clean(self):
        comp = Component(seq(Mv("r1", WInt(1)),
                             Halt(TInt(), NIL_STACK, "r1")))
        assert not any(w.kind == "no-exit" for w in lint_component(comp))


class TestDuplicateBlocks:
    def test_identical_blocks_flagged(self):
        a, b = Loc("a"), Loc("b")
        comp = Component(
            seq(Jmp(WLoc(a))),
            ((a, _halting_block()), (b, _halting_block())))
        warnings = lint_component(comp)
        assert any(w.kind == "duplicate-blocks" for w in warnings)

    def test_different_bodies_not_flagged(self):
        a, b = Loc("a"), Loc("b")
        comp = Component(
            seq(Jmp(WLoc(a))),
            ((a, _halting_block(1)), (b, _halting_block(2))))
        assert not any(w.kind == "duplicate-blocks"
                       for w in lint_component(comp))

    def test_fig16_variants_are_not_duplicates(self):
        comp = build_f1().body.fn.comp
        assert not any(w.kind == "duplicate-blocks"
                       for w in lint_component(comp))

    def test_warning_prints(self):
        w = LintWarning("no-exit", "x", "msg")
        assert "[no-exit] x: msg" == str(w)


class TestCliSurface:
    def test_lint_clean(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "p.ft"
        path.write_text(str(build_fig3()))
        assert main(["lint", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_dirty(self, tmp_path, capsys):
        from repro.cli import main

        spin = ("(jmp spin, {spin -> code[]{.; nil} end{int; nil}. "
                "jmp spin})")
        path = tmp_path / "p.ft"
        path.write_text(spin)
        assert main(["lint", str(path)]) == 4
        assert "no-exit" in capsys.readouterr().out

    def test_lint_descends_into_boundaries(self, tmp_path, capsys):
        from repro.cli import main
        from repro.papers_examples.fig16_two_blocks import build_f1

        path = tmp_path / "p.ft"
        path.write_text(str(build_f1()))
        assert main(["lint", str(path)]) == 0

    def test_equiv_command_confirms(self, tmp_path, capsys):
        from repro.cli import main

        left = tmp_path / "l.ft"
        right = tmp_path / "r.ft"
        left.write_text("lam (x: int). (x + 2)")
        right.write_text("lam (x: int). ((x + 1) + 1)")
        code = main(["equiv", str(left), str(right),
                     "--type", "(int) -> int", "--fuel", "10000"])
        assert code == 0
        assert "indistinguishable" in capsys.readouterr().out

    def test_equiv_command_refutes(self, tmp_path, capsys):
        from repro.cli import main

        left = tmp_path / "l.ft"
        right = tmp_path / "r.ft"
        left.write_text("lam (x: int). x")
        right.write_text("lam (x: int). (x + 1)")
        code = main(["equiv", str(left), str(right),
                     "--type", "(int) -> int", "--fuel", "10000"])
        assert code == 3
        assert "INEQUIVALENT" in capsys.readouterr().out

"""Differential lockstep harness: the fast T tier against the reference
``TalMachine``.

``repro.tal.fast`` erases types, resolves labels, and JIT-fuses hot
blocks -- none of which is allowed to be observable.  Its correctness
claim mirrors the CEK-vs-substitution claim enforced by
``test_engine_differential.py``: identical values, identical fuel/heap
budget verdicts, identical trap messages, identical suspension points --
on every paper example, random well-typed T programs, erased programs,
budget-exhaustion splits, and cross-engine snapshot resume.

Also covered: the digest-keyed preinstantiation cache through the link
store, the profiler->JIT promotion hand-off, and the serving layer's
treatment of ``tal_engine`` as a non-semantic option.
"""

import re

import pytest

from repro import obs
from repro.errors import FuelExhausted, MachineError
from repro.f.syntax import App, IntE
from repro.ft.machine import FTMachine
from repro.papers_examples import example_entries
from repro.papers_examples import fig3_call_to_call
from repro.papers_examples.fig17_factorial import (
    build_count_t, build_fact_t,
)
from repro.resilience.budget import Budget
from repro.resilience.checkpoint import MachineSnapshot
from repro.tal import fast
from repro.tal.erasure import erase_types
from repro.tal.machine import (
    TAL_ENGINES, TalMachine, resolve_tal_engine, run_component,
)
from repro.tal.subst import clear_subst_caches
from repro.tal.syntax import (
    Aop, Balloc, Bnz, Component, Halt, HCode, Jmp, Ld, Loc, Mv, NIL_STACK,
    QEnd, RegFileTy, RegOp, Salloc, Sld, St, TInt, WInt, WLoc, WUnit, seq,
)
from tests.strategies import random_t_program

LOC_COUNTER = re.compile(r"%\d+")


@pytest.fixture(autouse=True)
def clean_caches():
    clear_subst_caches()
    fast.clear_fast_caches()
    fast.set_jit_threshold(None)
    obs.disable()
    obs.reset()
    yield
    clear_subst_caches()
    fast.clear_fast_caches()
    fast.set_jit_threshold(None)
    obs.disable()
    obs.reset()


def _blocked(comp: Component) -> Component:
    """Move a straight-line component's body into a heap code block so
    the fast tier executes it natively (heap-less components run on the
    reference walker by design)."""
    loc = Loc("lmain")
    block = HCode((), RegFileTy.of(), NIL_STACK,
                  QEnd(TInt(), NIL_STACK), comp.instrs)
    return Component(seq(Jmp(WLoc(loc))), comp.heap + ((loc, block),))


def _observe_t(comp: Component, tal_engine: str, fuel=None):
    halted, machine = run_component(comp, fuel=fuel, tal_engine=tal_engine)
    return {"word": str(halted.word), "ty": str(halted.ty),
            "spent": machine.budget.spent()}


def _assert_t_lockstep(comp: Component, fuel=None):
    ref = _observe_t(comp, "ref", fuel=fuel)
    fast_out = _observe_t(comp, "fast", fuel=fuel)
    assert ref == fast_out
    return ref


def _observe_ft(build, tal_engine, fuel=None):
    # Budgets are stateful: build a fresh one per machine so the two
    # engines' spends don't accumulate into each other.
    budget = Budget(fuel=fuel) if fuel else None
    machine = FTMachine(tal_engine=tal_engine, budget=budget)
    value = machine.evaluate(build())
    return {"value": str(value), "spent": machine.budget.spent()}


def _assert_ft_lockstep(build, fuel=None):
    ref = _observe_ft(build, "ref", fuel=fuel)
    fast_out = _observe_ft(build, "fast", fuel=fuel)
    assert ref == fast_out
    return ref


class TestEngineSelection:
    def test_registry(self):
        assert TAL_ENGINES == ("ref", "fast")
        assert resolve_tal_engine(None) == "ref"
        assert resolve_tal_engine("fast") == "fast"

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("FUNTAL_TAL_ENGINE", "fast")
        assert resolve_tal_engine(None) == "fast"
        assert TalMachine().tal_engine == "fast"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            resolve_tal_engine("llvm")
        with pytest.raises(ValueError):
            FTMachine(tal_engine="llvm")

    def test_machine_default_is_ref(self):
        assert TalMachine().tal_engine == "ref"
        assert FTMachine().tal_engine == "ref"
        assert FTMachine(tal_engine="fast").tal_engine == "fast"


class TestExamplesLockstep:
    """Every paper example through the FT machine: same value and
    budget spend on both T engines."""

    @pytest.mark.parametrize("name", sorted(example_entries()))
    def test_example(self, name):
        _, build = example_entries()[name]
        _assert_ft_lockstep(build)

    def test_fact_t(self):
        out = _assert_ft_lockstep(lambda: App(build_fact_t(), (IntE(6),)))
        assert out["value"] == "720"

    def test_count_loop(self):
        out = _assert_ft_lockstep(
            lambda: App(build_count_t(), (IntE(400),)),
            fuel=1_000_000)
        assert out["value"] == "400"


class TestRandomProgramsLockstep:
    """Seeded random well-typed T programs agree on word, halt type, and
    fuel -- both as bare components (reference-walker path) and hoisted
    into heap blocks (native fast path)."""

    @pytest.mark.parametrize("seed", range(100))
    def test_random_component(self, seed):
        comp = random_t_program(seed, length=14)
        _assert_t_lockstep(comp)

    @pytest.mark.parametrize("seed", range(100))
    def test_random_component_blocked(self, seed):
        comp = _blocked(random_t_program(seed, length=14))
        _assert_t_lockstep(comp)


class TestErasureLockstep:
    """Type erasure composed with the fast tier: erased and annotated
    programs take the same fast-tier path to the same answer."""

    @pytest.mark.parametrize("seed", range(40))
    def test_erased_random_blocked(self, seed):
        comp = _blocked(random_t_program(seed, length=12))
        plain = _observe_t(comp, "fast")
        erased = _observe_t(erase_types(comp), "fast")
        assert erased["word"] == plain["word"]
        assert erased["spent"] == plain["spent"]

    def test_erased_fig3(self):
        comp = fig3_call_to_call.build()
        for variant in (comp, erase_types(comp)):
            out = _assert_t_lockstep(variant)
            assert out["word"] == "2"


class TestTrapParity:
    """Ill-behaved programs trap with the same error text (modulo the
    ``%N`` freshness counter in location names) on both engines."""

    def _trap(self, comp: Component, tal_engine: str) -> str:
        with pytest.raises(MachineError) as err:
            run_component(comp, tal_engine=tal_engine)
        return LOC_COUNTER.sub("%N", str(err.value))

    TRAPS = {
        "unset-register-aop": seq(
            Aop("add", "r1", "r2", WInt(1)),
            Halt(TInt(), NIL_STACK, "r1")),
        "unset-register-halt": seq(Halt(TInt(), NIL_STACK, "r1")),
        "aop-on-unit": seq(
            Mv("r2", WUnit()),
            Aop("add", "r1", "r2", WInt(1)),
            Halt(TInt(), NIL_STACK, "r1")),
        "bnz-on-unit": seq(
            Mv("r2", WUnit()),
            Bnz("r2", WInt(3)),
            Mv("r1", WInt(0)),
            Halt(TInt(), NIL_STACK, "r1")),
        "jmp-to-int": seq(Mv("r1", WInt(7)), Jmp(RegOp("r1"))),
        "jmp-to-unbound-loc": seq(Jmp(WLoc(Loc("lnowhere")))),
        "ld-from-int": seq(
            Mv("r2", WInt(5)),
            Ld("r1", "r2", 0),
            Halt(TInt(), NIL_STACK, "r1")),
        "ld-out-of-range": seq(
            Salloc(1),
            Balloc("r2", 1),
            Ld("r1", "r2", 4),
            Halt(TInt(), NIL_STACK, "r1")),
        "st-to-immutable": seq(
            Salloc(1),
            Balloc("r2", 1),
            Mv("r3", WInt(1)),
            St("r2", 0, "r3"),
            Mv("r1", WInt(0)),
            Halt(TInt(), NIL_STACK, "r1")),
        "sld-on-empty-stack": seq(
            Sld("r1", 0),
            Halt(TInt(), NIL_STACK, "r1")),
    }

    @pytest.mark.parametrize("name", sorted(TRAPS))
    def test_trap_message_parity(self, name):
        comp = Component(self.TRAPS[name])
        assert self._trap(comp, "ref") == self._trap(comp, "fast"), name

    @pytest.mark.parametrize("name", sorted(TRAPS))
    def test_trap_message_parity_blocked(self, name):
        comp = _blocked(Component(self.TRAPS[name]))
        assert self._trap(comp, "ref") == self._trap(comp, "fast"), name


class TestBudgetVerdictLockstep:
    """Exhaustion and suspension are engine-invariant: for every fuel
    prefix, both engines stop at the same point and resume to the same
    answer."""

    BUILDS = {
        "fig17-fact-t": lambda: App(build_fact_t(), (IntE(5),)),
        "count-loop": lambda: App(build_count_t(), (IntE(40),)),
    }

    @pytest.mark.parametrize("name", sorted(BUILDS))
    def test_exhaustion_at_every_prefix_matches(self, name):
        build = self.BUILDS[name]
        ref = _observe_ft(build, "ref")
        total = ref["spent"]["fuel_used"]
        for k in range(1, total):
            outcomes = {}
            for engine in TAL_ENGINES:
                machine = FTMachine(budget=Budget(fuel=k),
                                    tal_engine=engine)
                with pytest.raises(FuelExhausted):
                    machine.evaluate(build())
                assert machine.suspended
                outcomes[engine] = machine.budget.fuel_used
            assert outcomes["ref"] == outcomes["fast"], (name, k)

    @pytest.mark.parametrize("name", sorted(BUILDS))
    def test_cross_engine_snapshot_resume(self, name):
        """Suspend under one T engine, finish under the other: snapshots
        carry plain residual instruction sequences, so the T tier is
        swappable mid-run (ref checkpoint -> fast resume and back)."""
        build = self.BUILDS[name]
        ref = _observe_ft(build, "ref")
        total = ref["spent"]["fuel_used"]
        for k in (1, total // 3, total // 2, total - 1):
            if not 0 < k < total:
                continue
            for first, second in (("ref", "fast"), ("fast", "ref")):
                machine = FTMachine(budget=Budget(fuel=k),
                                    tal_engine=first)
                with pytest.raises(FuelExhausted):
                    machine.evaluate(build())
                wire = machine.snapshot().to_wire()
                revived = FTMachine.restore(MachineSnapshot.from_wire(wire))
                revived.tal_engine = second
                outcome = revived.resume(fuel=total - k)
                assert str(outcome) == ref["value"], (name, k, first)
                assert revived.budget.fuel_used == total - k


class TestJitLockstep:
    """With the promotion threshold forced to 1 every eligible block is
    template-JITted immediately; the fused closures must stay in
    lockstep with the reference stepper."""

    def test_jit_promoted_lockstep(self):
        fast.set_jit_threshold(1)
        try:
            out = _assert_ft_lockstep(
                lambda: App(build_count_t(), (IntE(300),)),
                fuel=1_000_000)
            assert out["value"] == "300"
            _assert_ft_lockstep(lambda: App(build_fact_t(), (IntE(6),)))
            for name in sorted(example_entries()):
                _assert_ft_lockstep(example_entries()[name][1])
        finally:
            fast.set_jit_threshold(None)

    def test_jit_actually_promotes(self):
        obs.enable(record=False)
        fast.set_jit_threshold(1)
        try:
            _observe_ft(lambda: App(build_count_t(), (IntE(100),)),
                        "fast", fuel=1_000_000)
        finally:
            fast.set_jit_threshold(None)
        counters = obs.OBS.metrics.snapshot()["counters"]
        assert counters.get("tal.fast.jit.promoted", 0) >= 1

    def test_profiler_promote_hand_off(self):
        """funtal top --promote-threshold feeds promote_digests: blocks
        hot in a profiled (reference) run are JITted on first entry in a
        later fast run, without waiting out the hot counter."""
        from repro.obs.profile import PROFILER

        build = lambda: App(build_count_t(), (IntE(120),))
        PROFILER.reset()
        PROFILER.enable()
        try:
            _observe_ft(build, "ref", fuel=1_000_000)
            snap = PROFILER.snapshot()
        finally:
            PROFILER.disable()
            PROFILER.reset()
        digests = snap.promote(threshold=50)
        assert digests, "count loop should be hot"
        assert all(e["kind"] == "t" for e in snap.entries
                   if e["key"] in digests)
        obs.enable(record=False)
        fast.promote_digests(digests)
        try:
            out = _observe_ft(build, "fast", fuel=1_000_000)
        finally:
            fast._PROMOTED = None  # drop the seeded set
        assert out["value"] == "120"
        counters = obs.OBS.metrics.snapshot()["counters"]
        assert counters.get("tal.fast.jit.promoted", 0) >= 1


class TestPreinstStore:
    """Preinstantiated block tables are cached by content digest through
    the link-store: a warm run re-uses the flat program instead of
    re-lowering (``tal.fast.preinst.hit`` > 0 on the second run)."""

    def test_warm_hit_in_memory(self):
        obs.enable(record=False)
        comp = fig3_call_to_call.build()
        first = _observe_t(comp, "fast")
        # A structurally equal but distinct component: the digest, not
        # object identity, is the cache key.
        second = _observe_t(fig3_call_to_call.build(), "fast")
        assert first == second
        counters = obs.OBS.metrics.snapshot()["counters"]
        assert counters.get("tal.fast.preinst.hit", 0) >= 1

    def test_warm_hit_through_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("FUNTAL_STORE", str(tmp_path))
        obs.enable(record=False)
        comp = fig3_call_to_call.build()
        first = _observe_t(comp, "fast")
        # Drop every in-memory memo: the only warm tier left is the
        # on-disk ArtifactStore keyed by the artifact digest.
        fast.clear_fast_caches()
        second = _observe_t(fig3_call_to_call.build(), "fast")
        assert first == second
        counters = obs.OBS.metrics.snapshot()["counters"]
        assert counters.get("tal.fast.preinst.hit", 0) >= 1
        assert counters.get("tal.fast.blocks", 0) >= 1

    def test_cache_stats_shape(self):
        stats = fast.fast_cache_stats()
        assert set(stats) == {"tal.fast.site", "tal.fast.block",
                              "tal.fast.preinst"}
        for entry in stats.values():
            assert {"size", "hits", "misses"} <= set(entry)


class TestServeTalEngineNonSemantic:
    """``tal_engine`` selects an implementation, not a computation: it
    must not fragment the content-addressed result cache, and results
    must match across engines."""

    def test_cache_key_invariant_under_tal_engine(self):
        from repro.serve.cache import job_cache_key
        from repro.serve.protocol import Job, JobOptions

        keys = {
            job_cache_key(Job(id=f"j-{i}", kind="run", example="fig17",
                              options=JobOptions(tal_engine=eng)))
            for i, eng in enumerate((None, "ref", "fast"))
        }
        assert len(keys) == 1

    def test_executor_results_match_across_tal_engines(self):
        from repro.serve.executor import execute_job
        from repro.serve.protocol import Job, JobOptions

        outs = {}
        for eng in TAL_ENGINES:
            result = execute_job(
                Job(id=f"te-{eng}", kind="run", example="fig17",
                    options=JobOptions(tal_engine=eng)))
            assert result.status == "ok", result
            outs[eng] = result.output.get("value")
        assert outs["ref"] == outs["fast"]

"""Tests for the unified observability layer (:mod:`repro.obs`).

Covers the event bus, metrics registry, span nesting across language
boundaries, JSONL/Chrome export round-trips, the bounded machine trace,
and the JIT compile cache counters.
"""

import json

import pytest

from repro import obs
from repro.f.syntax import App, BinOp, FInt, IntE, Lam, Var
from repro.ft.machine import evaluate_ft
from repro.jit.compiler import clear_compile_cache, compile_function
from repro.obs.events import Counter, Gauge, MachineEvent, Span
from repro.obs.trace_export import (
    build_span_tree, event_from_dict, event_to_dict, export_chrome,
    export_jsonl, load_jsonl,
)
from repro.papers_examples.fig17_factorial import build_fact_t


@pytest.fixture(autouse=True)
def obs_off():
    """Every test starts and ends with instrumentation off and clean."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def run_fact_t(n=2, **kwargs):
    return evaluate_ft(App(build_fact_t(), (IntE(n),)), **kwargs)


class TestEventBus:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        run_fact_t()
        assert obs.OBS.bus.events() == ()
        assert obs.OBS.metrics.snapshot()["counters"] == {}

    def test_recording_retains_events(self):
        obs.enable(record=True)
        run_fact_t()
        events = obs.OBS.bus.events()
        assert events
        assert any(isinstance(e, Span) for e in events)
        assert any(isinstance(e, MachineEvent) for e in events)

    def test_metrics_only_mode_retains_nothing(self):
        obs.enable(record=False)
        run_fact_t()
        assert obs.OBS.bus.events() == ()
        counters = obs.OBS.metrics.snapshot()["counters"]
        assert counters["t.machine.steps"] > 0

    def test_subscribe_and_unsubscribe(self):
        seen = []
        unsubscribe = obs.OBS.bus.subscribe(seen.append)
        obs.enable(record=False)
        run_fact_t()
        assert seen
        count = len(seen)
        unsubscribe()
        run_fact_t()
        assert len(seen) == count

    def test_drain_clears(self):
        obs.enable(record=True)
        run_fact_t()
        drained = obs.OBS.bus.drain()
        assert drained
        assert obs.OBS.bus.events() == ()


class TestMetrics:
    def test_counters_accumulate(self):
        obs.enable(record=False)
        run_fact_t()
        first = obs.OBS.metrics.counter("t.machine.steps")
        run_fact_t()
        assert obs.OBS.metrics.counter("t.machine.steps") == 2 * first

    def test_boundary_crossings_fig17(self):
        # fact_t applied: two F->T crossings (the arrow boundary plus the
        # callback's boundary) and one T->F import of the argument.
        obs.enable(record=False)
        run_fact_t()
        counters = obs.OBS.metrics.snapshot()["counters"]
        assert counters["ft.boundary.f_to_t"] == 2
        assert counters["ft.boundary.t_to_f"] == 1

    def test_reset(self):
        obs.enable(record=False)
        run_fact_t()
        obs.reset()
        assert obs.OBS.metrics.snapshot()["counters"] == {}

    def test_snapshot_has_span_histograms(self):
        obs.enable(record=True)
        run_fact_t()
        histograms = obs.OBS.metrics.snapshot()["histograms"]
        assert "span.ft.evaluate.us" in histograms
        assert histograms["span.ft.evaluate.us"]["count"] == 1

    def test_flush_to_publishes_totals(self):
        obs.enable(record=True)
        run_fact_t()
        obs.OBS.metrics.flush_to(obs.OBS.bus)
        counters = [e for e in obs.OBS.bus.events()
                    if isinstance(e, Counter)]
        by_name = {c.name: c.value for c in counters}
        assert by_name["ft.boundary.f_to_t"] == 2

    def test_format_table_mentions_counters(self):
        obs.enable(record=False)
        run_fact_t()
        table = obs.OBS.metrics.format_table()
        assert "t.machine.steps" in table


class TestSpanNesting:
    def test_fig17_spans_are_well_bracketed(self):
        # An FT program crossing the boundary twice must produce the
        # F > T > F tree: ft.evaluate contains ft.boundary contains
        # ft.import, via the thread-local context stack.
        obs.enable(record=True)
        run_fact_t()
        roots = build_span_tree(obs.OBS.bus.events())
        evaluates = [r for r in roots if r.span.name == "ft.evaluate"]
        assert len(evaluates) == 1
        root = evaluates[0]
        assert root.span.cat == "f"
        boundaries = [n for n in root.walk()
                      if n.span.name == "ft.boundary"]
        assert len(boundaries) == 2    # two F->T crossings
        imports = [n for b in boundaries for n in b.walk()
                   if n.span.name == "ft.import"]
        assert len(imports) == 1       # one T->F crossing, inside a boundary
        assert imports[0].span.cat == "f"

    def test_nested_spans_within_one_run(self):
        obs.enable(record=True)
        run_fact_t()
        spans = {e.span_id: e for e in obs.OBS.bus.events()
                 if isinstance(e, Span)}
        for span in spans.values():
            if span.parent_id is not None:
                parent = spans[span.parent_id]
                assert parent.start <= span.start
                assert span.end <= parent.end

    def test_disabled_span_is_noop(self):
        with obs.OBS.span("never", "test"):
            pass
        assert obs.OBS.bus.events() == ()
        assert obs.OBS.current_span_id() is None


class TestJsonlRoundTrip:
    def sample_events(self):
        return [
            Span("ft.evaluate", "f", 10, 90, 1, None, (("ty", "int"),)),
            Span("ft.boundary", "t", 20, 70, 2, 1),
            Counter("t.machine.steps", 42, 95),
            Gauge("fuel.remaining", 17.5, 96),
            MachineEvent(3, "jmp", "loop%2", (("r1", "5"),),
                         ("5", "ret%1"), "branch taken", 30),
        ]

    def test_event_dict_inverse(self):
        for event in self.sample_events():
            assert event_from_dict(event_to_dict(event)) == event

    def test_round_trip_equality(self):
        events = self.sample_events()
        assert load_jsonl(export_jsonl(events)) == events

    def test_export_is_idempotent(self):
        events = self.sample_events()
        text = export_jsonl(events)
        assert export_jsonl(load_jsonl(text)) == text

    def test_file_round_trip(self, tmp_path):
        events = self.sample_events()
        path = str(tmp_path / "trace.jsonl")
        export_jsonl(events, path)
        assert load_jsonl(path) == events

    def test_live_trace_round_trips(self):
        obs.enable(record=True)
        run_fact_t()
        obs.OBS.metrics.flush_to(obs.OBS.bus)
        events = obs.OBS.bus.drain()
        assert load_jsonl(export_jsonl(events)) == events

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            event_from_dict({"type": "mystery"})


class TestChromeExport:
    def test_document_shape(self):
        obs.enable(record=True)
        run_fact_t()
        obs.OBS.metrics.flush_to(obs.OBS.bus)
        document = json.loads(export_chrome(obs.OBS.bus.events()))
        phases = {e["ph"] for e in document["traceEvents"]}
        assert {"X", "C", "i"} <= phases


class TestBoundedTrace:
    def test_trace_truncates_with_sentinel(self):
        _, machine = run_fact_t(3, trace=True, max_events=4)
        assert len(machine.trace) == 5          # 4 events + sentinel
        assert machine.trace[-1].kind == "truncated"
        assert "capped at 4" in machine.trace[-1].detail

    def test_truncation_counter(self):
        obs.enable(record=False)
        run_fact_t(3, trace=True, max_events=2)
        assert obs.OBS.metrics.counter("trace.truncated") == 1

    def test_unbounded_by_default(self):
        _, machine = run_fact_t(3, trace=True)
        assert all(e.kind != "truncated" for e in machine.trace)

    def test_bus_still_sees_full_stream_after_cap(self):
        obs.enable(record=True)
        _, machine = run_fact_t(3, trace=True, max_events=2)
        bus_machine_events = [e for e in obs.OBS.bus.events()
                              if isinstance(e, MachineEvent)]
        assert len(bus_machine_events) > len(machine.trace)


class TestControlFlowUnification:
    def test_table_identical_from_either_stream(self):
        from repro.analysis.trace import control_flow_table

        obs.enable(record=True)
        _, machine = run_fact_t(trace=True)
        bus_events = [e for e in obs.OBS.bus.events()
                      if isinstance(e, MachineEvent)]
        from_trace = control_flow_table(machine.trace)
        from_bus = control_flow_table(bus_events)
        assert from_trace == from_bus

    def test_table_survives_jsonl_round_trip(self):
        from repro.analysis.trace import control_flow_table

        obs.enable(record=True)
        _, machine = run_fact_t(trace=True)
        bus_events = [e for e in obs.OBS.bus.events()
                      if isinstance(e, MachineEvent)]
        reloaded = load_jsonl(export_jsonl(bus_events))
        assert (control_flow_table(reloaded)
                == control_flow_table(machine.trace))


class TestJitCache:
    def lam(self):
        return Lam((("x", FInt()),), BinOp("+", Var("x"), IntE(1)))

    def test_repeat_compile_hits_cache(self):
        clear_compile_cache()
        first = compile_function(self.lam())
        second = compile_function(self.lam())
        assert second is first

    def test_hit_miss_counters(self):
        clear_compile_cache()
        obs.enable(record=False)
        compile_function(self.lam())
        compile_function(self.lam())
        counters = obs.OBS.metrics.snapshot()["counters"]
        assert counters["jit.cache.miss"] == 1
        assert counters["jit.cache.hit"] == 1
        assert counters["jit.compile"] == 1

    def test_fig11_source_recompilation_hits_cache(self):
        from repro.jit.compiler import jit_rewrite
        from repro.papers_examples.fig11_jit import build_source

        clear_compile_cache()
        obs.enable(record=False)
        jit_rewrite(build_source())
        jit_rewrite(build_source())
        counters = obs.OBS.metrics.snapshot()["counters"]
        assert counters["jit.cache.hit"] >= 1
        assert counters["jit.compile"] == counters["jit.cache.miss"]

    def test_cached_compile_still_evaluates(self):
        clear_compile_cache()
        compiled_a = compile_function(self.lam())
        compiled_b = compile_function(self.lam())
        got_a, _ = evaluate_ft(App(compiled_a, (IntE(4),)))
        got_b, _ = evaluate_ft(App(compiled_b, (IntE(4),)))
        assert got_a == got_b == IntE(5)

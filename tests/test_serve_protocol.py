"""Tests for the ``repro.serve`` wire protocol dataclasses."""

import pytest

from repro.serve.protocol import (
    JOB_KINDS, Job, JobOptions, JobResult, ProtocolError, decode_line,
    encode_line, jobs_from_jsonl,
)


class TestJob:
    def test_roundtrip_minimal(self):
        job = Job("run", id="j1", source="(1 + 2)")
        assert Job.from_dict(job.to_dict()) == job

    def test_roundtrip_with_options(self):
        job = Job("equiv", id="e", source="lam (x: int). (x + x)",
                  options=JobOptions(right="lam (x: int). (x * 2)",
                                     type="(int) -> int", fuel=5000,
                                     seed=7))
        again = Job.from_dict(job.to_dict())
        assert again == job
        assert again.options.seed == 7

    def test_default_options_stay_off_the_wire(self):
        job = Job("run", source="(1 + 2)")
        assert "options" not in job.to_dict()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError):
            Job("transpile", source="x")

    def test_source_xor_example(self):
        with pytest.raises(ProtocolError):
            Job("run")
        with pytest.raises(ProtocolError):
            Job("run", source="(1 + 1)", example="fig17")

    def test_equiv_requires_right_and_type(self):
        with pytest.raises(ProtocolError):
            Job("equiv", source="(1 + 1)")
        with pytest.raises(ProtocolError):
            Job("equiv", source="(1 + 1)",
                options=JobOptions(right="(2 + 0)"))

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError):
            Job.from_dict({"kind": "run", "source": "x", "srouce": "typo"})

    def test_unknown_option_rejected(self):
        with pytest.raises(ProtocolError):
            Job.from_dict({"kind": "run", "source": "x",
                           "options": {"feul": 10}})

    def test_every_kind_constructs(self):
        for kind in JOB_KINDS:
            opts = JobOptions(right="y", type="int") if kind == "equiv" \
                else JobOptions()
            if kind == "resume":
                Job(kind, snapshot={"kind": "ft", "digest": "x", "data": ""},
                    options=opts)
            else:
                Job(kind, source="x", options=opts)


class TestJobOptions:
    def test_semantic_dict_excludes_operational_knobs(self):
        opts = JobOptions(fuel=100, timeout=2.5, no_cache=True,
                          inject_crash=True, inject_sleep=1.0)
        assert opts.semantic_dict() == {"fuel": 100}

    def test_wire_dict_keeps_operational_knobs(self):
        opts = JobOptions(timeout=2.5)
        assert opts.to_dict() == {"timeout": 2.5}


class TestJobResult:
    def test_roundtrip(self):
        result = JobResult(id="j1", kind="run", status="ok",
                           output={"value": "5"}, attempts=2,
                           duration_ms=1.25, worker=4242)
        assert JobResult.from_dict(result.to_dict()) == result

    def test_error_fields_elided_when_clean(self):
        out = JobResult(id="j", kind="run", status="ok").to_dict()
        assert "error" not in out and "error_type" not in out
        assert "worker" not in out

    def test_unknown_status_rejected(self):
        with pytest.raises(ProtocolError):
            JobResult.from_dict({"id": "j", "kind": "run",
                                 "status": "exploded"})

    def test_ok_property(self):
        assert JobResult(id="j", kind="run", status="ok").ok
        assert not JobResult(id="j", kind="run", status="timeout").ok

    def test_failure_constructor(self):
        job = Job("run", id="j9", source="x")
        result = JobResult.failure(job, "crashed", "boom", attempts=3)
        assert (result.id, result.status, result.attempts) == \
            ("j9", "crashed", 3)
        assert result.error_type == "crashed"


class TestWireFormat:
    def test_encode_decode(self):
        line = encode_line({"kind": "run", "id": "a"})
        assert line.endswith(b"\n")
        assert decode_line(line) == {"kind": "run", "id": "a"}

    def test_encode_is_canonical(self):
        a = encode_line({"b": 1, "a": 2})
        b = encode_line({"a": 2, "b": 1})
        assert a == b

    def test_decode_rejects_junk(self):
        with pytest.raises(ProtocolError):
            decode_line(b"not json\n")
        with pytest.raises(ProtocolError):
            decode_line(b"[1, 2, 3]\n")


class TestJsonlBatch:
    def test_parses_with_comments_and_blanks(self):
        text = "\n".join([
            '# a comment',
            '{"kind": "run", "source": "(1 + 1)"}',
            '',
            '{"kind": "parse", "id": "named", "example": "fig17"}',
        ])
        jobs = jobs_from_jsonl(text)
        assert [j.kind for j in jobs] == ["run", "parse"]
        assert jobs[0].id == "job-2"       # auto id carries the line number
        assert jobs[1].id == "named"

    def test_bad_line_reports_line_number(self):
        with pytest.raises(ProtocolError, match="line 2"):
            jobs_from_jsonl('{"kind": "run", "source": "x"}\n{"kind": "?"}')

"""Tests for the worker-side job executor (in-process, no pool).

Includes the fuel-exhaustion paths across all three machines: a pure-F
omega (via ``mu``/``fold``), a pure-T spin loop, and an FT program whose
budget runs out inside a boundary -- the serving layer must fold each
into a ``fuel_exhausted`` result rather than an exception.
"""

import pytest

from repro.serve.executor import execute_job
from repro.serve.protocol import Job, JobOptions

# A diverging program per machine (all surface syntax).
OMEGA_F = ("(lam (f: mu a. (a) -> int). (unfold (f)) (f)) "
           "(fold[mu a. (a) -> int] "
           "(lam (f: mu a. (a) -> int). (unfold (f)) (f)))")
SPIN_T = "(jmp spin, {spin -> code[]{.; nil} end{int; nil}. jmp spin})"
SPIN_FT = f"(1 + FT[int] {SPIN_T})"


class TestHappyPaths:
    def test_run_expression(self):
        result = execute_job(Job("run", id="j", source="((2 + 3) * 10)"))
        assert result.ok
        assert result.output["value"] == "50"
        assert result.output["steps"] >= 1
        assert result.duration_ms > 0
        assert result.worker is not None

    def test_run_component(self):
        result = execute_job(Job(
            "run", source="(mv r1, 7; halt int, nil {r1}, .)"))
        assert result.ok and result.output["halted"] == "7"

    def test_run_example(self):
        result = execute_job(Job("run", example="fig17"))
        assert result.ok and result.output["value"] == "<720, 720>"

    def test_run_with_trace(self):
        result = execute_job(Job("run", example="fig17",
                                 options=JobOptions(trace=True)))
        assert result.ok and "control flow" in result.output["control_flow"]

    def test_parse(self):
        result = execute_job(Job("parse", source="(1 + 2)"))
        assert result.ok and result.output["node"] == "expression"

    def test_typecheck_expression(self):
        result = execute_job(Job("typecheck",
                                 source="lam (x: int). (x + 1)"))
        assert result.ok and result.output["type"] == "(int) -> int"

    def test_typecheck_component_result_type(self):
        result = execute_job(Job(
            "typecheck", source="(mv r1, (); halt unit, nil {r1}, .)",
            options=JobOptions(result_type="unit")))
        assert result.ok and result.output["type"] == "unit"

    def test_jit(self):
        result = execute_job(Job("jit", source="lam (x: int). (x + 1)"))
        assert result.ok
        assert result.output["blocks"] >= 1
        assert "jitfn" in result.output["assembly"]

    def test_jit_check(self):
        result = execute_job(Job(
            "jit", source="lam (x: int). (x * 2)",
            options=JobOptions(check=True, fuel=5_000)))
        assert result.ok and result.output["equivalent"] is True

    def test_equiv(self):
        result = execute_job(Job(
            "equiv", source="lam (x: int). (x + x)",
            options=JobOptions(right="lam (x: int). (x * 2)",
                               type="(int) -> int", fuel=5_000)))
        assert result.ok and result.output["equivalent"] is True

    def test_equiv_refuted(self):
        result = execute_job(Job(
            "equiv", source="lam (x: int). (x + 1)",
            options=JobOptions(right="lam (x: int). (x + 2)",
                               type="(int) -> int", fuel=5_000)))
        assert result.ok and result.output["equivalent"] is False


class TestFuelExhaustion:
    """One diverging program per machine; all must fold into a result."""

    @pytest.mark.parametrize("name,source", [
        ("f", OMEGA_F), ("t", SPIN_T), ("ft", SPIN_FT)])
    def test_divergence_reports_fuel_exhausted(self, name, source):
        result = execute_job(Job("run", id=name, source=source,
                                 options=JobOptions(fuel=2_000)))
        assert result.status == "fuel_exhausted"
        assert result.error_type == "FuelExhausted"
        assert result.output["fuel"] == 2_000
        assert "2000 steps" in result.error

    def test_fuel_exhausted_is_not_ok(self):
        result = execute_job(Job("run", source=SPIN_T,
                                 options=JobOptions(fuel=100)))
        assert not result.ok


class TestErrorsAreFolded:
    def test_parse_error(self):
        result = execute_job(Job("typecheck", source="lam (x:"))
        assert result.status == "error" and result.error

    def test_type_error(self):
        result = execute_job(Job("typecheck", source="(1 + ())"))
        assert result.status == "error"

    def test_unknown_example(self):
        result = execute_job(Job("run", example="nope"))
        assert result.status == "error" and "nope" in result.error

    def test_uncompilable_jit(self):
        result = execute_job(Job("jit", source="(1 + 2)"))
        assert result.status == "error"
        assert "not a compilable lambda" in result.error

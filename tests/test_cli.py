"""Tests for the ``funtal`` command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def program_file(tmp_path):
    def write(source):
        path = tmp_path / "prog.ft"
        path.write_text(source)
        return str(path)

    return write


class TestRun:
    def test_expression(self, program_file, capsys):
        path = program_file("((2 + 3) * 10)")
        assert main(["run", path]) == 0
        assert "value: 50" in capsys.readouterr().out

    def test_component(self, program_file, capsys):
        path = program_file(
            "(import r1, nil TF[int] ((1 + 1)); halt int, nil {r1}, .)")
        assert main(["run", path]) == 0
        assert "halted with 2" in capsys.readouterr().out

    def test_trace_flag(self, program_file, capsys):
        path = program_file(
            "(mv r1, 1; halt int, nil {r1}, .)")
        assert main(["run", path, "--trace"]) == 0
        out = capsys.readouterr().out
        assert "control flow" in out

    def test_fuel_flag(self, program_file, capsys):
        # A spinning component runs out of the given fuel: dedicated exit
        # code, one-line verdict, no traceback.
        from repro.cli import EXIT_FUEL_EXHAUSTED

        path = program_file(
            "(jmp spin, {spin -> code[]{.; nil} end{int; nil}. jmp spin})")
        assert main(["run", path, "--fuel", "500"]) == EXIT_FUEL_EXHAUSTED
        err = capsys.readouterr().err
        assert err.startswith("FuelExhausted:")
        assert "500 steps" in err
        assert len(err.strip().splitlines()) == 1


class TestTypecheck:
    def test_expression(self, program_file, capsys):
        path = program_file("lam (x: int). (x + 1)")
        assert main(["typecheck", path]) == 0
        assert "(int) -> int" in capsys.readouterr().out

    def test_component_with_result_type(self, program_file, capsys):
        path = program_file("(mv r1, (); halt unit, nil {r1}, .)")
        assert main(["typecheck", path, "--result-type", "unit"]) == 0
        assert "unit" in capsys.readouterr().out

    def test_type_error_reported(self, program_file, capsys):
        path = program_file("(1 + ())")
        assert main(["typecheck", path]) == 1
        assert "error" in capsys.readouterr().err

    def test_parse_error_reported(self, program_file, capsys):
        path = program_file("lam (x:")
        assert main(["typecheck", path]) == 1


class TestParse:
    def test_expression_echo(self, program_file, capsys):
        path = program_file("(1 + 2)")
        assert main(["parse", path]) == 0
        assert "(1 + 2)" in capsys.readouterr().out

    def test_component_pretty(self, program_file, capsys):
        path = program_file("(mv r1, 1; halt int, nil {r1}, .)")
        assert main(["parse", path]) == 0
        assert "component:" in capsys.readouterr().out


class TestExamples:
    def test_listing(self, capsys):
        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        assert "jit" in out and "fact-t" in out

    def test_run_named(self, capsys):
        assert main(["examples", "two-blocks-1"]) == 0
        out = capsys.readouterr().out
        assert "value: 7" in out

    def test_unknown_name(self, capsys):
        assert main(["examples", "nope"]) == 2

    def test_figure_alias(self, capsys):
        assert main(["examples", "fig11"]) == 0
        assert "value:" in capsys.readouterr().out


class TestTrace:
    def test_jsonl_parses_and_counts_crossings(self, capsys):
        assert main(["trace", "fig17", "--format", "jsonl"]) == 0
        out = capsys.readouterr().out
        events = [json.loads(line) for line in out.splitlines() if line]
        assert events
        counters = {e["name"]: e["value"] for e in events
                    if e["type"] == "counter"}
        # Fig 17: fact_t applied crosses F->T twice (the arrow boundary
        # and the callback lambda's) and T->F once (the argument import);
        # fact_f stays in F.
        assert counters["ft.boundary.f_to_t"] == 2
        assert counters["ft.boundary.t_to_f"] == 1

    def test_table_format(self, capsys):
        assert main(["trace", "fig17", "--format", "table"]) == 0
        out = capsys.readouterr().out
        assert "control flow" in out
        assert "boundary crossings:" in out

    def test_chrome_format(self, capsys):
        assert main(["trace", "fig16", "--format", "chrome"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["traceEvents"]

    def test_out_file(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        assert main(["trace", "fig17", "--format", "jsonl",
                     "--out", path]) == 0
        from repro.obs.trace_export import load_jsonl

        assert load_jsonl(path)
        assert "wrote" in capsys.readouterr().err

    def test_unknown_example(self, capsys):
        assert main(["trace", "nope"]) == 2


class TestStats:
    def test_json_smoke(self, capsys):
        assert main(["stats", "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert set(snapshot) == {"counters", "gauges", "histograms",
                                 "jit_compile_cache", "jit_quarantine"}
        assert set(snapshot["jit_compile_cache"]) >= {"hits", "misses",
                                                      "size"}
        assert set(snapshot["jit_quarantine"]) >= {"size", "hits"}

    def test_example_json(self, capsys):
        assert main(["stats", "fig17", "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["counters"]["ft.boundary.f_to_t"] == 2

    def test_example_table(self, capsys):
        assert main(["stats", "fact-t"]) == 0
        assert "t.machine.steps" in capsys.readouterr().out

    def test_unknown_example(self, capsys):
        assert main(["stats", "nope"]) == 2

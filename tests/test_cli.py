"""Tests for the ``funtal`` command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def program_file(tmp_path):
    def write(source):
        path = tmp_path / "prog.ft"
        path.write_text(source)
        return str(path)

    return write


class TestRun:
    def test_expression(self, program_file, capsys):
        path = program_file("((2 + 3) * 10)")
        assert main(["run", path]) == 0
        assert "value: 50" in capsys.readouterr().out

    def test_component(self, program_file, capsys):
        path = program_file(
            "(import r1, nil TF[int] ((1 + 1)); halt int, nil {r1}, .)")
        assert main(["run", path]) == 0
        assert "halted with 2" in capsys.readouterr().out

    def test_trace_flag(self, program_file, capsys):
        path = program_file(
            "(mv r1, 1; halt int, nil {r1}, .)")
        assert main(["run", path, "--trace"]) == 0
        out = capsys.readouterr().out
        assert "control flow" in out

    def test_fuel_flag(self, program_file, capsys):
        # a spinning component runs out of the given fuel
        path = program_file(
            "(jmp spin, {spin -> code[]{.; nil} end{int; nil}. jmp spin})")
        assert main(["run", path, "--fuel", "500"]) == 1
        assert "error" in capsys.readouterr().err


class TestTypecheck:
    def test_expression(self, program_file, capsys):
        path = program_file("lam (x: int). (x + 1)")
        assert main(["typecheck", path]) == 0
        assert "(int) -> int" in capsys.readouterr().out

    def test_component_with_result_type(self, program_file, capsys):
        path = program_file("(mv r1, (); halt unit, nil {r1}, .)")
        assert main(["typecheck", path, "--result-type", "unit"]) == 0
        assert "unit" in capsys.readouterr().out

    def test_type_error_reported(self, program_file, capsys):
        path = program_file("(1 + ())")
        assert main(["typecheck", path]) == 1
        assert "error" in capsys.readouterr().err

    def test_parse_error_reported(self, program_file, capsys):
        path = program_file("lam (x:")
        assert main(["typecheck", path]) == 1


class TestParse:
    def test_expression_echo(self, program_file, capsys):
        path = program_file("(1 + 2)")
        assert main(["parse", path]) == 0
        assert "(1 + 2)" in capsys.readouterr().out

    def test_component_pretty(self, program_file, capsys):
        path = program_file("(mv r1, 1; halt int, nil {r1}, .)")
        assert main(["parse", path]) == 0
        assert "component:" in capsys.readouterr().out


class TestExamples:
    def test_listing(self, capsys):
        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        assert "jit" in out and "fact-t" in out

    def test_run_named(self, capsys):
        assert main(["examples", "two-blocks-1"]) == 0
        out = capsys.readouterr().out
        assert "value: 7" in out

    def test_unknown_name(self, capsys):
        assert main(["examples", "nope"]) == 2

"""Unit tests for the T abstract machine: per-instruction execution,
jumps, component loading, traces, and stuck-state detection."""

import pytest

from repro.errors import FuelExhausted, MachineError
from repro.papers_examples import fig3_call_to_call, sec3_sequences
from repro.tal.heap import Memory
from repro.tal.machine import (
    HaltedState, rename_locs, run_component, TalMachine,
)
from repro.tal.syntax import (
    Aop, Balloc, Bnz, BOX, Call, CodeType, Component, DeltaBind, Fold,
    Halt, HCode, HTuple, Jmp, KIND_ALPHA, KIND_EPS, KIND_ZETA, Ld, Loc, Mv,
    NIL_STACK, Pack, QEnd, QEps, QIdx, QReg, Ralloc, REF, RegFileTy, RegOp,
    Ret, Salloc, seq, Sfree, Sld, Sst, St, StackTy, TExists, TInt, TRec,
    TUnit, TVar, TyApp, UnfoldI, Unpack, WInt, WLoc, WUnit,
)

END_INT = QEnd(TInt(), NIL_STACK)


def run_instrs(*parts, memory=None):
    machine = TalMachine(memory)
    return machine.run_seq(seq(*parts)), machine


class TestMemory:
    def test_registers(self):
        mem = Memory()
        mem.set_reg("r1", WInt(3))
        assert mem.get_reg("r1") == WInt(3)

    def test_unset_register_read_is_stuck(self):
        with pytest.raises(MachineError, match="unset register"):
            Memory().get_reg("r1")

    def test_stack_push_pop_order(self):
        mem = Memory()
        mem.push(WInt(1), WInt(2))
        assert mem.peek(0) == WInt(1)
        assert mem.pop(2) == [WInt(1), WInt(2)]

    def test_stack_underflow(self):
        with pytest.raises(MachineError, match="underflow"):
            Memory().pop(1)

    def test_store_to_box_is_stuck(self):
        mem = Memory()
        loc = mem.alloc(HTuple((WInt(1),)), BOX)
        with pytest.raises(MachineError, match="immutable"):
            mem.store_field(loc, 0, WInt(2))

    def test_double_bind_rejected(self):
        mem = Memory()
        loc = mem.alloc(HTuple(()), BOX)
        with pytest.raises(MachineError, match="already bound"):
            mem.bind(loc, HTuple(()), BOX)


class TestArithmeticAndMoves:
    def test_mv_and_halt(self):
        halted, _ = run_instrs(Mv("r1", WInt(9)),
                               Halt(TInt(), NIL_STACK, "r1"))
        assert halted.word == WInt(9)

    @pytest.mark.parametrize("op,expected", [("add", 9), ("sub", 5),
                                             ("mul", 14)])
    def test_aops(self, op, expected):
        halted, _ = run_instrs(
            Mv("r1", WInt(7)),
            Aop(op, "r1", "r1", WInt(2)),
            Halt(TInt(), NIL_STACK, "r1"))
        assert halted.word == WInt(expected)

    def test_aop_on_non_int_is_stuck(self):
        with pytest.raises(MachineError, match="non-int"):
            run_instrs(Mv("r1", WUnit()),
                       Aop("add", "r1", "r1", WInt(1)),
                       Halt(TInt(), NIL_STACK, "r1"))


class TestStackInstructions:
    def test_salloc_initializes_with_unit(self):
        halted, _ = run_instrs(
            Salloc(2), Sld("r1", 1),
            Halt(TUnit(), StackTy((TUnit(), TUnit()), None), "r1"))
        assert halted.word == WUnit()

    def test_sst_sld_roundtrip(self):
        halted, _ = run_instrs(
            Mv("r1", WInt(5)), Salloc(1), Sst(0, "r1"), Mv("r1", WInt(0)),
            Sld("r2", 0), Halt(TInt(), NIL_STACK, "r2"))
        assert halted.word == WInt(5)

    def test_sfree_drops(self):
        _, machine = run_instrs(
            Salloc(3), Sfree(2), Mv("r1", WInt(0)),
            Halt(TInt(), NIL_STACK, "r1"))
        assert machine.memory.depth == 1


class TestHeapInstructions:
    def test_ralloc_moves_stack_to_heap(self):
        halted, machine = run_instrs(
            Mv("r1", WInt(1)), Mv("r2", WInt(2)),
            Salloc(2), Sst(0, "r1"), Sst(1, "r2"),
            Ralloc("r3", 2),
            Ld("r1", "r3", 1),
            Halt(TInt(), NIL_STACK, "r1"))
        assert halted.word == WInt(2)
        assert machine.memory.depth == 0

    def test_st_mutates_ralloc_tuple(self):
        halted, _ = run_instrs(
            Mv("r1", WInt(1)), Salloc(1), Sst(0, "r1"),
            Ralloc("r3", 1),
            Mv("r2", WInt(42)), St("r3", 0, "r2"),
            Ld("r1", "r3", 0),
            Halt(TInt(), NIL_STACK, "r1"))
        assert halted.word == WInt(42)

    def test_st_to_balloc_tuple_is_stuck(self):
        with pytest.raises(MachineError, match="immutable"):
            run_instrs(
                Mv("r1", WInt(1)), Salloc(1), Sst(0, "r1"),
                Balloc("r3", 1),
                St("r3", 0, "r1"),
                Halt(TInt(), NIL_STACK, "r1"))


class TestPackUnfold:
    def test_unpack(self):
        ex = TExists("a", TVar("a"))
        halted, _ = run_instrs(
            Mv("r1", Pack(TInt(), WInt(8), ex)),
            Unpack("b", "r2", RegOp("r1")),
            Halt(TVar("b"), NIL_STACK, "r2"))
        assert halted.word == WInt(8)

    def test_unpack_substitutes_rest(self):
        ex = TExists("a", TVar("a"))
        machine = TalMachine()
        state = machine.step(seq(
            Mv("r1", Pack(TInt(), WInt(8), ex)),
            Unpack("b", "r2", RegOp("r1")),
            Halt(TVar("b"), NIL_STACK, "r2")))
        state = machine.step(state)
        # after unpack the halt annotation mentions int, not b
        assert state.term == Halt(TInt(), NIL_STACK, "r2")

    def test_unfold(self):
        mu = TRec("a", TInt())
        halted, _ = run_instrs(
            Mv("r1", Fold(mu, WInt(3))),
            UnfoldI("r2", RegOp("r1")),
            Halt(TInt(), NIL_STACK, "r2"))
        assert halted.word == WInt(3)

    def test_unpack_of_non_package_is_stuck(self):
        with pytest.raises(MachineError, match="non-package"):
            run_instrs(Mv("r1", WInt(1)),
                       Unpack("b", "r2", RegOp("r1")),
                       Halt(TInt(), NIL_STACK, "r2"))


class TestJumps:
    def _block(self, instrs, chi=None):
        return HCode((), chi if chi is not None else RegFileTy(),
                     NIL_STACK, END_INT, instrs)

    def test_jmp_to_component_block(self):
        target = Loc("l")
        block = self._block(seq(Mv("r1", WInt(1)),
                                Halt(TInt(), NIL_STACK, "r1")))
        comp = Component(seq(Jmp(WLoc(target))), ((target, block),))
        halted, _ = run_component(comp)
        assert halted.word == WInt(1)

    def test_bnz_taken_and_not_taken(self):
        target = Loc("l")
        block = self._block(seq(Mv("r1", WInt(100)),
                                Halt(TInt(), NIL_STACK, "r1")))
        for scrutinee, expected in ((1, 100), (0, 0)):
            comp = Component(seq(
                Mv("r1", WInt(scrutinee)),
                Bnz("r1", WLoc(target)),
                Mv("r1", WInt(0)),
                Halt(TInt(), NIL_STACK, "r1"),
            ), ((target, block),))
            halted, _ = run_component(comp)
            assert halted.word == WInt(expected)

    def test_jump_with_leftover_binders_is_stuck(self):
        target = Loc("l")
        block = HCode((DeltaBind(KIND_ZETA, "z"),), RegFileTy(),
                      StackTy((), "z"), END_INT,
                      seq(Mv("r1", WInt(1)),
                          Halt(TInt(), NIL_STACK, "r1")))
        comp = Component(seq(Jmp(WLoc(target))), ((target, block),))
        with pytest.raises(MachineError, match="uninstantiated"):
            run_component(comp)

    def test_jump_to_int_is_stuck(self):
        comp = Component(seq(Mv("r1", WInt(3)), Jmp(RegOp("r1"))))
        with pytest.raises(MachineError, match="non-location"):
            run_component(comp)

    def test_jump_to_data_is_stuck(self):
        target = Loc("l")
        comp = Component(seq(Jmp(WLoc(target))),
                         ((target, HTuple((WInt(1),))),))
        with pytest.raises(MachineError, match="non-code"):
            run_component(comp)

    def test_tyapp_instantiation_at_jump(self):
        # jump to forall[alpha a] block, instantiating a := int; the block
        # halts at its own annotation a which must become int.
        target = Loc("l")
        block = HCode((DeltaBind(KIND_ALPHA, "a"),),
                      RegFileTy.of(r1=TVar("a")), NIL_STACK,
                      QEnd(TVar("a"), NIL_STACK),
                      seq(Halt(TVar("a"), NIL_STACK, "r1")))
        comp = Component(seq(
            Mv("r1", WInt(5)),
            Jmp(TyApp(WLoc(target), (TInt(),))),
        ), ((target, block),))
        halted, _ = run_component(comp)
        assert halted.ty == TInt()
        assert halted.word == WInt(5)


class TestComponentLoading:
    def test_fresh_renaming_isolates_instances(self):
        comp = fig3_call_to_call.build()
        machine = TalMachine()
        first = machine.load_component(comp)
        second = machine.load_component(comp)
        # ten blocks total, no clashes, and the two entry sequences refer
        # to different labels
        assert len(machine.memory.heap) == 10
        assert first != second

    def test_rename_locs_traverses_operands(self):
        mapping = {Loc("a"): Loc("b")}
        iseq = seq(Mv("r1", TyApp(WLoc(Loc("a")), (TInt(),))),
                   Jmp(WLoc(Loc("a"))))
        out = rename_locs(iseq, mapping)
        assert out == seq(Mv("r1", TyApp(WLoc(Loc("b")), (TInt(),))),
                          Jmp(WLoc(Loc("b"))))


class TestFig3Runtime:
    def test_result_and_stack(self):
        halted, machine = run_component(fig3_call_to_call.build())
        assert halted.word == WInt(fig3_call_to_call.EXPECTED_RESULT)
        assert machine.memory.depth == 0

    def test_trace_matches_fig4_shape(self):
        _, machine = run_component(fig3_call_to_call.build(), trace=True)
        kinds = [ev.kind for ev in machine.trace]
        assert kinds == ["enter", "call", "call", "jmp", "ret", "ret",
                         "halt"]
        targets = [ev.pretty_label() for ev in machine.trace[1:-1]]
        assert targets == ["l1", "l2", "l2aux", "l2ret", "l1ret"]

    def test_fig4_register_states(self):
        _, machine = run_component(fig3_call_to_call.build(), trace=True)
        # at the jmp to l2aux, r1 holds 1; at the first ret, r1 holds 2
        jmp_event = next(ev for ev in machine.trace if ev.kind == "jmp")
        regs = dict(jmp_event.regs)
        assert regs["r1"] == WInt(1)
        ret_event = next(ev for ev in machine.trace if ev.kind == "ret")
        assert dict(ret_event.regs)["r1"] == WInt(2)

    def test_fig4_stack_states(self):
        _, machine = run_component(fig3_call_to_call.build(), trace=True)
        # during l2 the stack holds exactly the saved l1ret continuation
        jmp_event = next(ev for ev in machine.trace if ev.kind == "jmp")
        assert len(jmp_event.stack) == 1

    def test_sec3_programs_run(self):
        halted, _ = run_component(sec3_sequences.build_sequence_program())
        assert halted.word == WInt(42)
        halted, _ = run_component(sec3_sequences.build_jmp_program())
        assert halted.word == WUnit()
        halted, _ = run_component(sec3_sequences.build_call_program())
        assert halted.word == WInt(10)


class TestFuel:
    def test_loop_exhausts_fuel(self):
        target = Loc("l")
        block = HCode((), RegFileTy(), NIL_STACK, END_INT,
                      seq(Jmp(WLoc(target))))
        comp = Component(seq(Jmp(WLoc(target))), ((target, block),))
        with pytest.raises(FuelExhausted):
            run_component(comp, fuel=1000)

"""Unit tests for the pure-F call-by-value machine."""

import pytest

from repro.errors import FuelExhausted, MachineError
from repro.f.eval import apply_binop, evaluate, reduce_redex, split_context, step
from repro.f.syntax import (
    App, BinOp, FArrow, FInt, Fold, FRec, FTVar, If0, IntE, Lam, Proj,
    TupleE, Unfold, UnitE, Var,
)


def lam_int(body):
    return Lam((("x", FInt()),), body)


class TestPrimops:
    def test_add(self):
        assert apply_binop("+", 2, 3) == 5

    def test_sub(self):
        assert apply_binop("-", 2, 3) == -1

    def test_mul(self):
        assert apply_binop("*", 2, 3) == 6

    def test_unknown_rejected(self):
        with pytest.raises(MachineError):
            apply_binop("/", 1, 2)


class TestReduceRedex:
    def test_binop(self):
        assert reduce_redex(BinOp("+", IntE(1), IntE(2))) == IntE(3)

    def test_if0_zero_takes_then(self):
        assert reduce_redex(If0(IntE(0), IntE(1), IntE(2))) == IntE(1)

    def test_if0_nonzero_takes_else(self):
        assert reduce_redex(If0(IntE(7), IntE(1), IntE(2))) == IntE(2)

    def test_if0_negative_takes_else(self):
        assert reduce_redex(If0(IntE(-1), IntE(1), IntE(2))) == IntE(2)

    def test_beta(self):
        assert reduce_redex(App(lam_int(Var("x")), (IntE(5),))) == IntE(5)

    def test_beta_multi_arg(self):
        lam = Lam((("x", FInt()), ("y", FInt())),
                  BinOp("-", Var("x"), Var("y")))
        assert reduce_redex(App(lam, (IntE(5), IntE(3)))) == \
            BinOp("-", IntE(5), IntE(3))

    def test_unfold_fold(self):
        mu = FRec("a", FInt())
        assert reduce_redex(Unfold(Fold(mu, IntE(1)))) == IntE(1)

    def test_projection(self):
        assert reduce_redex(Proj(1, TupleE((IntE(1), IntE(2))))) == IntE(2)

    def test_non_redex_returns_none(self):
        assert reduce_redex(BinOp("+", Var("x"), IntE(1))) is None

    def test_stuck_application_raises(self):
        with pytest.raises(MachineError, match="non-lambda"):
            reduce_redex(App(IntE(1), (IntE(2),)))

    def test_stuck_projection_raises(self):
        with pytest.raises(MachineError, match="non-tuple"):
            reduce_redex(Proj(0, IntE(1)))

    def test_runtime_arity_mismatch_raises(self):
        with pytest.raises(MachineError, match="arity"):
            reduce_redex(App(lam_int(Var("x")), (IntE(1), IntE(2))))


class TestEvaluationOrder:
    def test_left_to_right_in_binop(self):
        e = BinOp("+", BinOp("*", IntE(2), IntE(3)), BinOp("-", IntE(1),
                                                           IntE(1)))
        first = step(e)
        assert first == BinOp("+", IntE(6), BinOp("-", IntE(1), IntE(1)))

    def test_function_before_arguments(self):
        e = App(If0(IntE(0), lam_int(Var("x")), lam_int(IntE(9))),
                (BinOp("+", IntE(1), IntE(1)),))
        first = step(e)
        assert first == App(lam_int(Var("x")), (BinOp("+", IntE(1),
                                                      IntE(1)),))

    def test_tuple_left_to_right(self):
        e = TupleE((IntE(1), BinOp("+", IntE(1), IntE(1)),
                    BinOp("+", IntE(2), IntE(2))))
        first = step(e)
        assert first == TupleE((IntE(1), IntE(2),
                                BinOp("+", IntE(2), IntE(2))))

    def test_step_on_value_is_none(self):
        assert step(IntE(1)) is None


class TestSplitContext:
    def test_no_split_for_redex(self):
        assert split_context(BinOp("+", IntE(1), IntE(2))) is None

    def test_split_rebuilds(self):
        e = BinOp("+", BinOp("*", IntE(2), IntE(3)), IntE(1))
        frame, sub = split_context(e)
        assert sub == BinOp("*", IntE(2), IntE(3))
        assert frame(IntE(6)) == BinOp("+", IntE(6), IntE(1))


class TestEvaluate:
    def test_arithmetic(self):
        e = BinOp("*", BinOp("+", IntE(1), IntE(2)), IntE(10))
        assert evaluate(e) == IntE(30)

    def test_higher_order(self):
        twice = Lam((("f", FArrow((FInt(),), FInt())), ("x", FInt())),
                    App(Var("f"), (App(Var("f"), (Var("x"),)),)))
        inc = lam_int(BinOp("+", Var("x"), IntE(1)))
        assert evaluate(App(twice, (inc, IntE(5)))) == IntE(7)

    def test_recursion_through_fold(self):
        # sum 1..n via self-application
        mu = FRec("a", FArrow((FTVar("a"),), FArrow((FInt(),), FInt())))
        tri = Lam(
            (("self", mu),),
            lam_int(If0(Var("x"), IntE(0),
                        BinOp("+", Var("x"),
                              App(App(Unfold(Var("self")), (Var("self"),)),
                                  (BinOp("-", Var("x"), IntE(1)),))))))
        prog = App(App(tri, (Fold(mu, tri),)), (IntE(10),))
        assert evaluate(prog) == IntE(55)

    def test_divergence_raises_fuel(self):
        mu = FRec("a", FArrow((FTVar("a"),), FInt()))
        omega_fn = Lam((("f", mu),),
                       App(Unfold(Var("f")), (Var("f"),)))
        omega = App(omega_fn, (Fold(mu, omega_fn),))
        with pytest.raises(FuelExhausted):
            evaluate(omega, fuel=5_000)

    def test_deep_context_survives_python_recursion(self):
        # 1 + (1 + (1 + ... 0)) built 5000 deep; iterative stepping must
        # handle it.
        e = IntE(0)
        for _ in range(2000):
            e = BinOp("+", IntE(1), e)
        assert evaluate(e) == IntE(2000)

    def test_value_needs_no_fuel(self):
        assert evaluate(IntE(1), fuel=0) == IntE(1)

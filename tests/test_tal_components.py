"""Component-level typing tests: local heap fragments, sequence threading,
and the paper's complete T programs (Fig 3, section-3 snippets)."""

import pytest

from repro.errors import FTTypeError
from repro.papers_examples import fig3_call_to_call, sec3_sequences
from repro.tal.syntax import (
    BOX, CodeType, Component, DeltaBind, Halt, HCode, HeapTy, HTuple, Jmp,
    KIND_EPS, KIND_ZETA, Ld, Loc, Mv, NIL_STACK, QEnd, QEps, QIdx, QReg,
    RegFileTy, RegOp, Ret, Salloc, seq, Sst, StackTy, TBox, TInt, TupleTy,
    TUnit, TVar, WInt, WLoc,
)
from repro.tal.typecheck import (
    check_component, check_program, InstrState, TalTypechecker,
)

END_INT = QEnd(TInt(), NIL_STACK)


class TestSequenceThreading:
    def test_paper_sequence_example_states(self):
        """The section-3 table: each postcondition feeds the next."""
        states = sec3_sequences.sequence_example_states()
        labels = [label for label, _ in states]
        assert labels == ["(start)", "mv r1, 42", "salloc 1", "sst 0, r1"]
        after_mv = states[1][1]
        assert after_mv.chi.get("r1") == TInt()
        assert after_mv.sigma == NIL_STACK
        after_salloc = states[2][1]
        assert after_salloc.sigma == StackTy((TUnit(),), None)
        after_sst = states[3][1]
        assert after_sst.sigma == StackTy((TInt(),), None)

    def test_marker_restriction_checked_between_instructions(self):
        # after sfree the end-marker stack no longer matches; the halt fails
        comp = Component(seq(
            Salloc(1),
            Mv("r1", WInt(1)),
            Halt(TInt(), NIL_STACK, "r1")))
        with pytest.raises(FTTypeError):
            check_program(comp, TInt())


class TestComponentTyping:
    def test_trivial_halt_program(self):
        comp = Component(seq(Mv("r1", WInt(7)),
                             Halt(TInt(), NIL_STACK, "r1")))
        ty, sigma = check_program(comp, TInt())
        assert ty == TInt() and sigma == NIL_STACK

    def test_component_result_is_ret_type_of_marker(self):
        comp = Component(seq(Mv("r1", WInt(7)),
                             Halt(TInt(), NIL_STACK, "r1")))
        ty, sigma = check_component(comp, q=END_INT)
        assert (ty, sigma) == (TInt(), NIL_STACK)

    def test_component_requires_marker(self):
        comp = Component(seq(Mv("r1", WInt(7)),
                             Halt(TInt(), NIL_STACK, "r1")))
        with pytest.raises(FTTypeError, match="return marker"):
            check_component(comp, q=None)

    def test_local_block_jump(self):
        target = Loc("l")
        block = HCode((), RegFileTy.of(r1=TInt()), NIL_STACK, END_INT,
                      seq(Halt(TInt(), NIL_STACK, "r1")))
        comp = Component(seq(Mv("r1", WInt(3)), Jmp(WLoc(target))),
                         ((target, block),))
        assert check_program(comp, TInt())[0] == TInt()

    def test_ill_typed_local_block_rejected(self):
        target = Loc("l")
        block = HCode((), RegFileTy(), NIL_STACK, END_INT,
                      seq(Halt(TInt(), NIL_STACK, "r1")))  # r1 unset
        comp = Component(seq(Mv("r1", WInt(3)), Jmp(WLoc(target))),
                         ((target, block),))
        with pytest.raises(FTTypeError):
            check_program(comp, TInt())

    def test_local_data_tuple(self):
        data = Loc("data")
        comp = Component(seq(
            Mv("r2", WLoc(data)),
            Ld("r1", "r2", 1),
            Halt(TInt(), NIL_STACK, "r1"),
        ), ((data, HTuple((WInt(10), WInt(20)))),))
        assert check_program(comp, TInt())[0] == TInt()

    def test_local_tuple_may_reference_block(self):
        block_loc, data_loc = Loc("blk"), Loc("data")
        block = HCode((), RegFileTy.of(r1=TInt()), NIL_STACK, END_INT,
                      seq(Halt(TInt(), NIL_STACK, "r1")))
        comp = Component(seq(
            Mv("r2", WLoc(data_loc)),
            Ld("r3", "r2", 0),
            Mv("r1", WInt(1)),
            Jmp(RegOp("r3")),
        ), ((block_loc, block), (data_loc, HTuple((WLoc(block_loc),)))))
        assert check_program(comp, TInt())[0] == TInt()

    def test_label_shadowing_global_rejected(self):
        label = Loc("l")
        psi = HeapTy.of({label: (BOX, TupleTy((TInt(),)))})
        comp = Component(seq(Mv("r1", WInt(1)),
                             Halt(TInt(), NIL_STACK, "r1")),
                         ((label, HTuple((WInt(1),))),))
        with pytest.raises(FTTypeError, match="shadows"):
            check_component(comp, psi=psi, q=END_INT)


class TestPaperPrograms:
    def test_fig3_typechecks_at_int(self):
        comp = fig3_call_to_call.build()
        ty, sigma = check_program(comp, TInt())
        assert ty == TInt() and sigma == NIL_STACK

    def test_fig3_broken_marker_rejected(self):
        """Mutating l2ret's declared marker from 0 to ra must fail."""
        comp = fig3_call_to_call.build()
        heap = dict(comp.heap)
        l2ret = heap[fig3_call_to_call.L2RET]
        heap[fig3_call_to_call.L2RET] = HCode(
            l2ret.delta, l2ret.chi, l2ret.sigma, QReg("ra"), l2ret.instrs)
        broken = Component(comp.instrs, tuple(heap.items()))
        with pytest.raises(FTTypeError):
            check_program(broken, TInt())

    def test_sec3_sequence_program(self):
        comp = sec3_sequences.build_sequence_program()
        ty, sigma = check_component(
            comp, q=QEnd(TInt(), StackTy((TInt(),), None)))
        assert ty == TInt()
        assert sigma == StackTy((TInt(),), None)

    def test_sec3_jmp_program(self):
        comp = sec3_sequences.build_jmp_program()
        ty, _ = check_component(comp, q=QEnd(TUnit(), NIL_STACK))
        assert ty == TUnit()

    def test_sec3_call_program(self):
        comp = sec3_sequences.build_call_program()
        ty, _ = check_program(comp, TInt())
        assert ty == TInt()

    def test_fig3_wrong_expected_type_rejected(self):
        comp = fig3_call_to_call.build()
        with pytest.raises(FTTypeError):
            check_program(comp, TUnit())

"""Tests for the surface syntax: lexer, parser productions, error
reporting, and parse/pretty round trips over the paper corpus."""

import pytest

from repro.errors import ParseError
from repro.f.syntax import (
    App, BinOp, FArrow, FInt, Fold, FRec, FTupleT, FTVar, FUnit, If0, IntE,
    Lam, Proj, TupleE, Unfold, UnitE, Var,
)
from repro.ft.syntax import Boundary, FStackArrow, Import, Protect, StackLam
from repro.surface.lexer import Token, tokenize
from repro.surface.parser import (
    parse_component, parse_fexpr, parse_ftype, parse_instr_seq,
    parse_program, parse_ttype,
)
from repro.surface.pretty import pretty_component, pretty_instr_seq
from repro.tal.syntax import (
    Aop, Call, CodeType, Component, DeltaBind, Halt, HCode, Jmp, Loc, Mv,
    NIL_STACK, Pack, QEnd, QEps, QIdx, QOut, QReg, RegFileTy, RegOp, Ret,
    Salloc, StackTy, TBox, TExists, TInt, TRec, TRef, TupleTy, TUnit, TVar,
    TyApp, WInt, WLoc,
)


class TestLexer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize("mv r1, 42")]
        assert kinds == ["keyword", "register", "punct", "int", "eof"]

    def test_comments_skipped(self):
        toks = tokenize("1 -- comment\n2 // other\n3")
        assert [t.text for t in toks[:-1]] == ["1", "2", "3"]

    def test_positions(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_compound_punct(self):
        texts = [t.text for t in tokenize("int :: z -> w")[:-1]]
        assert "::" in texts and "->" in texts

    def test_bad_character(self):
        with pytest.raises(ParseError):
            tokenize("a # b")

    def test_primed_identifiers(self):
        toks = tokenize("x' y''")
        assert toks[0].text == "x'"


class TestFTypeParsing:
    @pytest.mark.parametrize("src,expected", [
        ("int", FInt()),
        ("unit", FUnit()),
        ("a", FTVar("a")),
        ("(int) -> int", FArrow((FInt(),), FInt())),
        ("(int, unit) -> int", FArrow((FInt(), FUnit()), FInt())),
        ("mu a. (a) -> int", FRec("a", FArrow((FTVar("a"),), FInt()))),
        ("<int, unit>", FTupleT((FInt(), FUnit()))),
        ("() -> unit", FArrow((), FUnit())),
    ])
    def test_cases(self, src, expected):
        assert parse_ftype(src) == expected

    def test_stack_arrow(self):
        ty = parse_ftype("(int) [; int] -> unit")
        assert ty == FStackArrow((FInt(),), FUnit(), (), (TInt(),))

    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_ftype("int int")


class TestTTypeParsing:
    @pytest.mark.parametrize("src,expected", [
        ("int", TInt()),
        ("unit", TUnit()),
        ("exists a. a", TExists("a", TVar("a"))),
        ("mu a. ref <a>", TRec("a", TRef((TVar("a"),)))),
        ("box <int, unit>", TBox(TupleTy((TInt(), TUnit())))),
    ])
    def test_cases(self, src, expected):
        assert parse_ttype(src) == expected

    def test_code_type(self):
        src = "box forall[zeta z, eps e].{r1: int; z} ra"
        ty = parse_ttype(src)
        assert isinstance(ty, TBox) and isinstance(ty.psi, CodeType)
        assert ty.psi.delta == (DeltaBind("zeta", "z"),
                                DeltaBind("eps", "e"))
        assert ty.psi.q == QReg("ra")

    def test_empty_regfile(self):
        ty = parse_ttype("box forall[].{.; nil} out")
        assert ty.psi.chi == RegFileTy()
        assert ty.psi.q == QOut()

    def test_end_marker(self):
        ty = parse_ttype("box forall[].{.; nil} end{int; nil}")
        assert ty.psi.q == QEnd(TInt(), NIL_STACK)

    def test_index_marker(self):
        ty = parse_ttype("box forall[].{.; int :: nil} 0")
        assert ty.psi.q == QIdx(0)


class TestExprParsing:
    @pytest.mark.parametrize("src,expected", [
        ("42", IntE(42)),
        ("()", UnitE()),
        ("x", Var("x")),
        ("(1 + 2)", BinOp("+", IntE(1), IntE(2))),
        ("if0 0 {1} {2}", If0(IntE(0), IntE(1), IntE(2))),
        ("<1, ()>", TupleE((IntE(1), UnitE()))),
        ("pi1(<1, 2>)", Proj(1, TupleE((IntE(1), IntE(2))))),
        ("unfold (x)", Unfold(Var("x"))),
    ])
    def test_cases(self, src, expected):
        assert parse_fexpr(src) == expected

    def test_negative_literal(self):
        assert parse_fexpr("- 3") == IntE(-3)

    def test_lambda(self):
        e = parse_fexpr("lam (x: int). (x + 1)")
        assert e == Lam((("x", FInt()),),
                        BinOp("+", Var("x"), IntE(1)))

    def test_stack_lambda(self):
        e = parse_fexpr("lam[int; int] (x: int). x")
        assert isinstance(e, StackLam)
        assert e.phi_in == (TInt(),)

    def test_application_left_nested(self):
        e = parse_fexpr("(f) (1) (2)")
        assert e == App(Var("f"), (IntE(1), IntE(2)))

    def test_precedence_mul_over_add(self):
        e = parse_fexpr("1 + 2 * 3")
        assert e == BinOp("+", IntE(1), BinOp("*", IntE(2), IntE(3)))

    def test_fold(self):
        e = parse_fexpr("fold[mu a. int] (3)")
        assert e == Fold(FRec("a", FInt()), IntE(3))

    def test_boundary(self):
        e = parse_fexpr("FT[int](mv r1, 4; halt int, nil {r1}, .)")
        assert isinstance(e, Boundary)
        assert e.ty == FInt()

    def test_unbalanced_rejected(self):
        with pytest.raises(ParseError):
            parse_fexpr("(1 + 2")


class TestInstructionParsing:
    def test_straight_line(self):
        iseq = parse_instr_seq(
            "mv r1, 5; salloc 1; sst 0, r1; halt int, int :: nil {r1}")
        assert len(iseq.instrs) == 3
        assert isinstance(iseq.term, Halt)

    def test_all_jump_forms(self):
        assert isinstance(parse_instr_seq("jmp l").term, Jmp)
        assert isinstance(
            parse_instr_seq("call l {nil, end{int; nil}}").term, Call)
        assert isinstance(parse_instr_seq("ret ra {r1}").term, Ret)

    def test_operand_forms(self):
        iseq = parse_instr_seq(
            "mv r1, pack <int, 3> as exists a. a; jmp l")
        mv = iseq.instrs[0]
        assert isinstance(mv.u, Pack)

    def test_tyapp_omegas(self):
        iseq = parse_instr_seq("mv ra, l[z, e]; jmp r1")
        u = iseq.instrs[0].u
        assert isinstance(u, TyApp)
        assert u.insts == (StackTy((), "z"), QEps("e"))

    def test_tyapp_sigma_omega(self):
        iseq = parse_instr_seq("mv ra, l[int :: z]; jmp r1")
        u = iseq.instrs[0].u
        assert u.insts == (StackTy((TInt(),), "z"),)

    def test_import_instruction(self):
        iseq = parse_instr_seq(
            "import r1, nil TF[int] ((1 + 1)); halt int, nil {r1}")
        imp = iseq.instrs[0]
        assert isinstance(imp, Import)
        assert imp.expr == BinOp("+", IntE(1), IntE(1))

    def test_protect_instruction(self):
        iseq = parse_instr_seq("protect <int>, z; jmp l")
        assert iseq.instrs[0] == Protect((TInt(),), "z")


class TestComponentParsing:
    def test_empty_heap(self):
        comp = parse_component("(mv r1, 1; halt int, nil {r1}, .)")
        assert comp.heap == ()

    def test_with_blocks(self):
        comp = parse_component(
            "(jmp l, {l -> code[]{r1: int; nil} end{int; nil}. "
            "halt int, nil {r1}})")
        assert len(comp.heap) == 1
        assert isinstance(comp.heap[0][1], HCode)

    def test_data_tuple_heap_value(self):
        comp = parse_component(
            "(mv r1, 1; halt int, nil {r1}, {d -> <1, 2>})")
        from repro.tal.syntax import HTuple

        assert comp.heap[0][1] == HTuple((WInt(1), WInt(2)))


class TestParseProgram:
    def test_expression(self):
        assert parse_program("(1 + 1)") == BinOp("+", IntE(1), IntE(1))

    def test_component(self):
        node = parse_program("(mv r1, 1; halt int, nil {r1}, .)")
        assert isinstance(node, Component)

    def test_parenthesized_expr_is_not_component(self):
        node = parse_program("(lam (x: int). x) (1)")
        assert isinstance(node, App)


class TestRoundTrips:
    def _expr_cases(self):
        from repro.papers_examples import (
            fig11_jit, fig16_two_blocks, fig17_factorial, push7,
        )

        return [
            fig11_jit.build_source(), fig11_jit.build_jit(),
            fig16_two_blocks.build_f1(), fig16_two_blocks.build_f2(),
            fig17_factorial.build_fact_f(), fig17_factorial.build_fact_t(),
            push7.build(),
        ]

    def test_expr_round_trips(self):
        for e in self._expr_cases():
            assert parse_fexpr(str(e)) == e or \
                str(parse_fexpr(str(e))) == str(e)

    def test_component_round_trips(self):
        from repro.papers_examples import (
            fig3_call_to_call, import_example, sec3_sequences,
        )

        for comp in (fig3_call_to_call.build(), import_example.build(),
                     sec3_sequences.build_sequence_program(),
                     sec3_sequences.build_jmp_program(),
                     sec3_sequences.build_call_program()):
            assert parse_component(str(comp)) == comp

    def test_type_round_trips(self):
        from repro.ft.translate import type_translation

        cases = [
            type_translation(FArrow((FInt(),), FInt())),
            type_translation(FArrow((FArrow((FInt(),), FInt()),), FInt())),
            TExists("a", TBox(TupleTy((TVar("a"), TInt())))),
            TRec("a", TRef((TVar("a"),))),
        ]
        for ty in cases:
            assert parse_ttype(str(ty)) == ty


class TestPretty:
    def test_component_layout(self):
        from repro.papers_examples.fig3_call_to_call import build

        text = pretty_component(build())
        assert "component:" in text and "where:" in text
        assert "l2aux" in text

    def test_instr_seq_one_per_line(self):
        iseq = parse_instr_seq("mv r1, 1; halt int, nil {r1}")
        lines = pretty_instr_seq(iseq).splitlines()
        assert len(lines) == 2

"""Fleet-level tiering drills on a real worker pool.

The headline scenarios (ISSUE acceptance):

* hot digests promote automatically in the background and later runs
  are served at the fast tier with the same answers;
* an injected divergence on a *promoted* run degrades to the reference
  answer (zero wrong answers) and quarantines the digest;
* an injected fault in promotion work itself demotes the digest --
  foreground traffic keeps its answers throughout;
* the adversarial corpus never promotes: the ones the machine runs
  safely are quarantined at the promotion typecheck gate, the rest die
  as structured errors before ever accruing steps.
"""

import time

import pytest

from repro.adversarial import ADVERSARIES
from repro.f.syntax import App, IntE
from repro.papers_examples.fig17_factorial import build_count_t
from repro.serve.pool import WorkerPool
from repro.serve.protocol import Job, JobOptions
from repro.tiering.controller import (
    DEMOTED, PROFILING, PROMOTED, QUARANTINED,
)
from repro.tiering.policy import TieringPolicy, set_active_policy
from repro.tiering.promote import program_digest


def count_t_source(n=300):
    return str(App(build_count_t(), (IntE(n),)))


@pytest.fixture
def tier_pool(tmp_path):
    """A 2-worker pool under an auto policy with a tiny threshold, so
    one hot run is enough to schedule promotion."""
    policy = TieringPolicy(mode="auto", promote_threshold=100,
                           store=str(tmp_path), demote_after=1)
    set_active_policy(policy)      # workers fork with the policy active
    try:
        with WorkerPool(2, cache=None, default_timeout=60.0,
                        max_retries=2, tiering=policy) as pool:
            yield pool
    finally:
        set_active_policy(None)


def coordinator(pool):
    return pool._tiering


def wait_state(pool, digest, *states, timeout=30.0):
    controller = coordinator(pool).controller
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        state = controller.state(digest)
        if state in states:
            return state
        time.sleep(0.02)
    raise AssertionError(
        f"digest {digest} stuck in {controller.state(digest)!r}, "
        f"wanted one of {states}")


def run_job(source, **opts):
    return Job("run", source=source, options=JobOptions(**opts))


class TestAutoPromotion:
    def test_hot_digest_promotes_and_serves_fast(self, tier_pool):
        src = count_t_source(300)
        digest = program_digest(src, None)

        cold = tier_pool.submit(run_job(src)).wait(60.0)
        assert cold.ok and cold.output["value"] == "300"
        assert cold.output["tier"]["promoted"] is False
        assert cold.output["tier"]["tal_engine"] == "ref"

        wait_state(tier_pool, digest, PROMOTED)

        hot = tier_pool.submit(run_job(src)).wait(60.0)
        assert hot.ok and hot.output["value"] == "300"
        assert hot.output["tier"]["promoted"] is True
        assert hot.output["tier"]["tal_engine"] == "fast"

        stats = tier_pool.stats()["tiering"]
        assert stats["mode"] == "auto"
        assert stats["states"][PROMOTED] >= 1
        assert stats["receipts_held"] >= 1

    def test_cold_digest_stays_interpreted(self, tier_pool):
        result = tier_pool.submit(run_job("(2 + 3)")).wait(60.0)
        assert result.ok and result.output["value"] == "5"
        digest = program_digest("(2 + 3)", None)
        assert coordinator(tier_pool).controller.state(digest) \
            == PROFILING
        again = tier_pool.submit(run_job("(2 + 3)")).wait(60.0)
        assert again.output["tier"]["promoted"] is False

    def test_receipt_survives_for_a_second_fleet(self, tmp_path,
                                                 tier_pool):
        """Validated once, fleet-wide: a second pool sharing the store
        reuses the receipt instead of re-validating."""
        src = count_t_source(300)
        digest = program_digest(src, None)
        tier_pool.submit(run_job(src)).wait(60.0)
        wait_state(tier_pool, digest, PROMOTED)

        policy = coordinator(tier_pool).policy
        with WorkerPool(1, cache=None, default_timeout=60.0,
                        tiering=policy) as second:
            second.submit(run_job(src)).wait(60.0)
            wait_state(second, digest, PROMOTED)
            promoted = second.submit(run_job(src)).wait(60.0)
        assert promoted.ok and promoted.output["value"] == "300"
        assert promoted.output["tier"]["promoted"] is True


class TestDemotionBackstops:
    def test_divergence_quarantines_with_zero_wrong_answers(self,
                                                            tier_pool):
        """Seeded drill: once promoted, a run whose fast tier faults
        (chaos at the ``jit.run`` seam) must still answer correctly --
        the differential safety net serves the reference -- and the
        digest must end quarantined."""
        src = count_t_source(300)
        digest = program_digest(src, None)
        tier_pool.submit(run_job(src, jit=True)).wait(60.0)
        wait_state(tier_pool, digest, PROMOTED)

        stormed = tier_pool.submit(run_job(
            src, jit=True, chaos_rate=1.0, chaos_seed=7,
            chaos_seams="jit.run")).wait(60.0)
        assert stormed.ok, stormed.error
        assert stormed.output["value"] == "300"      # zero wrong answers
        assert stormed.output.get("degraded") is True
        assert stormed.output["tier"]["promoted"] is False

        assert wait_state(tier_pool, digest, QUARANTINED) == QUARANTINED
        # Quarantine sticks: later runs are served unpromoted.
        after = tier_pool.submit(run_job(src)).wait(60.0)
        assert after.ok and after.output["value"] == "300"
        assert after.output["tier"]["promoted"] is False

    def test_forced_promotion_failure_demotes(self, tier_pool):
        """Seeded drill: a fault injected into the *promotion job*
        (chaos at the ``jit.compile`` seam, which only the promotion
        pipeline crosses for this program) demotes the digest; the
        foreground answer is untouched."""
        # A source no other test compiles: workers fork with the
        # parent's memoized COMPILE_CACHE, and a warm cache entry would
        # let the promotion skip the compile (and its chaos seam).
        source = "((lam (x: int). ((x * x) + 9)) (20))"
        digest = program_digest(source, None)
        controller = coordinator(tier_pool).controller
        # The program is light; steps accrue across runs until the
        # controller schedules the (doomed) promotion.
        for _ in range(40):
            result = tier_pool.submit(run_job(
                source, chaos_rate=1.0, chaos_seed=11,
                chaos_seams="jit.compile")).wait(60.0)
            assert result.ok and result.output["value"] == "409"
            if controller.state(digest) != PROFILING:
                break

        assert wait_state(tier_pool, digest, DEMOTED) == DEMOTED
        # Demotion sticks and the program still answers correctly.
        after = tier_pool.submit(run_job(source)).wait(60.0)
        assert after.ok and after.output["value"] == "409"
        assert after.output["tier"]["promoted"] is False


class TestAdversarialCorpus:
    def test_adversaries_never_promote(self, tier_pool):
        """Satellite 5: mix the attack components into the tiering
        corpus.  None may ever reach ``promoted``; every one that the
        untyped machine runs safely (and so accrues steps) must be
        refused at the promotion typecheck gate and quarantined."""
        controller = coordinator(tier_pool).controller
        for adv in ADVERSARIES:
            digest = program_digest(adv.source, None)
            # Light programs accrue steps across runs (the slowest one
            # earns ~2 steps a run); keep running until the controller
            # reacts (or provably never will: trapped runs report
            # errors and accrue nothing).
            for _ in range(80):
                result = tier_pool.submit(Job(
                    "run", source=adv.source)).wait(60.0)
                # Safe containment either way: a structured error
                # (trap) or a bogus halt -- never a crash.
                assert result.status in ("ok", "error"), result.status
                if result.status == "error":
                    assert result.error_type in ("MachineError",
                                                 "FTTypeError")
                if result.status == "error" \
                        or controller.state(digest) not in ("cold",
                                                            PROFILING):
                    break

        deadline = time.monotonic() + 30.0
        for adv in ADVERSARIES:
            digest = program_digest(adv.source, None)
            while time.monotonic() < deadline:
                state = controller.state(digest)
                if state not in ("promoting",):
                    break
                time.sleep(0.02)
            state = controller.state(digest)
            assert state != PROMOTED, adv.name
            if adv.machine_behavior == "halt":
                # Ran "successfully", went hot, was refused at gate 1.
                assert state == QUARANTINED, (adv.name, state)

"""Error-path tests for the surface syntax: every parse failure is a
located :class:`ParseError`, never a crash."""

import pytest

from repro.errors import ParseError
from repro.surface.parser import (
    parse_component, parse_fexpr, parse_ftype, parse_instr_seq,
    parse_program, parse_ttype,
)


BAD_FTYPES = [
    "", "->", "(int ->", "(int) ->", "mu . int", "mu a int",
    "<int,", "(int) [int] -> int",
]

BAD_TTYPES = [
    "", "exists . a", "ref int", "box", "box forall[.{.; nil} out",
    "box forall[].{r1 int; nil} out",
    "box forall[].{.; int} out",          # stack must end in nil/var
    "box forall[].{.; nil}",              # missing marker
]

BAD_EXPRS = [
    "", "(", "if0 1 {2}", "lam (x int). x", "lam (x: int) x",
    "fold[int 3", "pi1(", "<1, ", "FT[int(mv r1, 1; halt int, nil {r1}, .)",
    "1 +",
]

BAD_INSTRS = [
    "", "mv r1", "mv r9, 1", "sst r1, 0", "ld r1, r2[x]",
    "call l {nil}", "halt int {r1}", "ret ra", "unpack <a r1> r2",
    "import r1, nil TF[int] 1; halt int, nil {r1}",  # expr needs parens
    "mv r1, 1",                                       # no terminator
]

BAD_COMPONENTS = [
    "", "(jmp l", "(jmp l, )", "(jmp l, {l code[]{.; nil} out. jmp l})",
    "(jmp l, {l -> <1, })",
]


@pytest.mark.parametrize("src", BAD_FTYPES)
def test_bad_ftypes(src):
    with pytest.raises(ParseError):
        parse_ftype(src)


@pytest.mark.parametrize("src", BAD_TTYPES)
def test_bad_ttypes(src):
    with pytest.raises(ParseError):
        parse_ttype(src)


@pytest.mark.parametrize("src", BAD_EXPRS)
def test_bad_exprs(src):
    with pytest.raises(ParseError):
        parse_fexpr(src)


@pytest.mark.parametrize("src", BAD_INSTRS)
def test_bad_instrs(src):
    with pytest.raises(ParseError):
        parse_instr_seq(src)


@pytest.mark.parametrize("src", BAD_COMPONENTS)
def test_bad_components(src):
    with pytest.raises(ParseError):
        parse_component(src)


class TestErrorLocations:
    def test_line_and_column_reported(self):
        try:
            parse_fexpr("lam (x: int).\n  (x +")
        except ParseError as err:
            assert err.line == 2
            assert "2:" in str(err)
        else:  # pragma: no cover
            pytest.fail("expected a ParseError")

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            parse_fexpr("1 @ 2")

    def test_trailing_input_flagged(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_fexpr("1 2 3 }")


class TestParseProgramFallback:
    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_program("")

    def test_component_error_stays_component_error(self):
        with pytest.raises(ParseError):
            parse_program("(mv r1, ; halt int, nil {r1}, .)")

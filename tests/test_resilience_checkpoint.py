"""Checkpoint/resume tests (:mod:`repro.resilience.checkpoint`).

The headline property (ISSUE acceptance): for every paper example,
``run(fuel=n)`` is *exactly* equivalent to ``run(fuel=k); snapshot;
restore; resume(fuel=n-k)`` at every split point ``k`` -- including
across a pickle/wire roundtrip, i.e. on "another worker".  Exactness
(zero slack) holds because fuel is charged only on contractions,
boundary entries, and T steps, never on context descent, so a resumed
run re-descends its rebuilt expression for free.
"""

import pickle

import pytest

from repro.errors import FuelExhausted, SnapshotError
from repro.ft.machine import FTMachine, evaluate_ft
from repro.papers_examples import example_entries
from repro.resilience.budget import Budget
from repro.resilience.checkpoint import MachineSnapshot


def _reference(build):
    """(pretty value, exact fuel spend) on an un-checkpointed run."""
    value, machine = evaluate_ft(build())
    return str(value), machine.budget.fuel_used


def _split_points(total):
    """A few interesting splits: first step, a third, half, last step."""
    if total < 2:
        return []
    picks = {1, total // 3, total // 2, total - 1}
    return sorted(k for k in picks if 0 < k < total)


class TestSnapshotObject:
    def test_capture_restore_roundtrip(self):
        machine = FTMachine(budget=Budget(fuel=123))
        snap = machine.snapshot()
        assert snap.kind == "ft"
        assert len(snap.digest) == 64
        revived = FTMachine.restore(snap)
        assert revived.budget.max_fuel == 123

    def test_wire_roundtrip_preserves_digest(self):
        machine = FTMachine()
        snap = machine.snapshot()
        wire = snap.to_wire()
        assert set(wire) == {"kind", "digest", "data"}
        back = MachineSnapshot.from_wire(wire)
        assert back.digest == snap.digest
        FTMachine.restore(back)

    def test_tampered_payload_is_rejected(self):
        snap = FTMachine().snapshot()
        wire = snap.to_wire()
        import base64

        raw = bytearray(base64.b64decode(wire["data"]))
        raw[len(raw) // 2] ^= 0xFF
        wire["data"] = base64.b64encode(bytes(raw)).decode("ascii")
        with pytest.raises(SnapshotError):
            MachineSnapshot.from_wire(wire).state()

    def test_wrong_kind_is_rejected(self):
        from repro.tal.machine import TalMachine

        snap = FTMachine().snapshot()
        with pytest.raises(SnapshotError):
            TalMachine.restore(snap)

    def test_resume_without_suspension_is_an_error(self):
        with pytest.raises(SnapshotError):
            FTMachine().resume()


class TestExactSplitEquivalence:
    """run(n) == run(k); snapshot; restore; resume(n-k), exactly."""

    @pytest.mark.parametrize("name", sorted(example_entries()))
    def test_every_example_every_split(self, name):
        _, build = example_entries()[name]
        expected, total = _reference(build)
        for k in _split_points(total):
            machine = FTMachine(budget=Budget(fuel=k))
            with pytest.raises(FuelExhausted):
                machine.evaluate(build())
            assert machine.suspended
            # ... across a full pickle/wire roundtrip: the resumed
            # machine is built from bytes, as on another worker.
            wire = machine.snapshot().to_wire()
            revived = FTMachine.restore(MachineSnapshot.from_wire(wire))
            outcome = revived.resume(fuel=total - k)
            assert str(outcome) == expected, (name, k, total)
            # Exactness: the second slice spends exactly the remainder.
            assert revived.budget.fuel_used == total - k, (name, k)

    def test_multi_hop_single_fuel_slices(self):
        # The adversarial schedule: 1 fuel per slice, snapshot between
        # every hop.  Guarantees progress (no livelock) because every
        # slice performs at least one contraction.
        _, build = example_entries()["fact-f"]
        expected, total = _reference(build)
        machine = FTMachine(budget=Budget(fuel=1))
        outcome = None
        hops = 0
        try:
            machine.evaluate(build())
            pytest.fail("expected suspension at fuel=1")
        except FuelExhausted:
            pass
        while outcome is None:
            wire = machine.snapshot().to_wire()
            machine = FTMachine.restore(MachineSnapshot.from_wire(wire))
            try:
                outcome = machine.resume(fuel=1)
            except FuelExhausted:
                hops += 1
                assert hops <= total + 1, "no progress: livelock"
        assert str(outcome) == expected
        # Slice 0 and the final (non-raising) hop each perform one
        # contraction; every counted hop performs exactly one more.
        assert hops == total - 2

    def test_heap_charges_survive_the_roundtrip(self):
        # Heap spend is cumulative across slices: a restored machine
        # keeps governing against what the first slice already used.
        _, build = example_entries()["fact-t"]
        machine = FTMachine(budget=Budget(fuel=8, heap=10_000))
        with pytest.raises(FuelExhausted):
            machine.evaluate(build())
        used = machine.budget.heap_used
        revived = FTMachine.restore(
            MachineSnapshot.from_wire(machine.snapshot().to_wire()))
        assert revived.budget.heap_used == used


class TestFEvaluatorCheckpoint:
    def test_f_snapshot_resume_exact(self):
        from repro.f.eval import FEvaluator
        from repro.f.syntax import App, BinOp, FInt, IntE, Lam, Var

        f = Lam((("x", FInt()),), BinOp("+", Var("x"), IntE(1)))
        expr = IntE(0)
        for _ in range(50):
            expr = App(f, (expr,))
        reference = FEvaluator(expr)
        value = reference.run()
        total = reference.budget.fuel_used
        for k in _split_points(total):
            ev = FEvaluator(expr, fuel=k)
            with pytest.raises(FuelExhausted):
                ev.run()
            snap = ev.snapshot()
            revived = FEvaluator.restore(
                pickle.loads(pickle.dumps(snap)))
            assert revived.run(fuel=total - k) == value

    def test_tal_snapshot_resume(self):
        from repro.surface.parser import parse_program
        from repro.tal.machine import TalMachine

        comp = parse_program(
            "(mv r1, 7; mv r2, 3; add r1, r1, r2; add r1, r1, r1; "
            "halt int, nil {r1}, .)")
        full = TalMachine()
        halted = full.run_seq(full.load_component(comp))
        machine = TalMachine(budget=Budget(fuel=2))
        with pytest.raises(FuelExhausted):
            machine.run_seq(machine.load_component(comp))
        revived = TalMachine.restore(
            MachineSnapshot.from_wire(machine.snapshot().to_wire()))
        out = revived.resume(fuel=100)
        assert str(out.word) == str(halted.word)

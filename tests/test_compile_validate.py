"""Translation validation and the serve layer's ``compile`` job kind.

The validator's contract: a correct artifact passes all three axes
(typecheck, differential execution, bounded contextual equivalence); a
miscompiled artifact fails, reports the disagreement, and quarantines
the source lambda through the resilience safety net; open compilations
get the static axis only.  The serve tests pin the job-kind surface:
semantic options (``tier``/``validate``/``ir``) feed the content
address, component inputs fail cleanly, and validation failures come
back as job errors rather than worker crashes.
"""

import pytest

from repro.f.syntax import App, BinOp, FArrow, FInt, IntE, Lam, Var
from repro.compile.pipeline import (
    CompilationResult, TIER_GENERAL, compile_term,
)
from repro.compile.validate import validate_compilation
from repro.resilience.safety_net import Quarantine
from repro.serve.cache import job_cache_key
from repro.serve.executor import execute_job
from repro.serve.protocol import Job, JobOptions

INC = Lam((("x", FInt()),), BinOp("+", Var("x"), IntE(1)))
INC2 = Lam((("x", FInt()),), BinOp("+", Var("x"), IntE(2)))


def _forged_result() -> CompilationResult:
    """A deliberately miscompiled artifact: the source computes ``x+1``
    but the installed component computes ``x+2``."""
    wrong = compile_term(INC2, tiers=(TIER_GENERAL,))
    return CompilationResult(
        source=INC, tier=wrong.tier, ty=wrong.ty, wrapped=wrong.wrapped,
        component=wrong.component, clos=wrong.clos)


class TestValidationPasses:
    def test_arith_lambda(self):
        report = validate_compilation(INC, quarantine=Quarantine())
        assert report.ok and report.typechecked
        assert report.tier == "arith"
        assert report.trials >= 1
        assert report.equiv is not None and report.equiv.equivalent

    def test_general_lambda(self):
        ho = Lam((("g", FArrow((FInt(),), FInt())),),
                 App(Var("g"), (IntE(5),)))
        report = validate_compilation(ho, quarantine=Quarantine())
        assert report.ok and report.tier == "general"
        assert report.trials >= 1

    def test_non_function_expression(self):
        report = validate_compilation(
            BinOp("*", IntE(6), IntE(7)), quarantine=Quarantine())
        assert report.ok
        assert report.trials == 1     # single whole-program observation

    def test_open_term_is_static_only(self):
        report = validate_compilation(
            BinOp("+", Var("y"), IntE(1)), gamma={"y": FInt()},
            quarantine=Quarantine())
        assert report.ok and report.typechecked
        assert report.trials == 0 and report.equiv is None

    def test_report_json_and_str(self):
        report = validate_compilation(INC, quarantine=Quarantine())
        data = report.to_json()
        assert data["ok"] is True and data["tier"] == "arith"
        assert data["equivalent"] is True
        assert "validated" in str(report)


class TestValidationCatchesMiscompiles:
    def test_forged_artifact_fails_and_quarantines(self):
        q = Quarantine()
        report = validate_compilation(_forged_result(), quarantine=q)
        assert not report.ok
        assert report.typechecked        # the wrong artifact still types
        assert "disagreement" in report.failure
        assert report.disagreements
        assert report.quarantined and INC in q

    def test_quarantine_blocks_later_jit_installs(self):
        from repro.resilience.safety_net import jit_rewrite_guarded

        q = Quarantine()
        validate_compilation(_forged_result(), quarantine=q)
        rewritten, compiled, report = jit_rewrite_guarded(INC, q)
        assert report.skipped == 1 and report.jitted == 0
        assert compiled == []

    def test_validation_failure_does_not_raise(self):
        report = validate_compilation(_forged_result(),
                                      quarantine=Quarantine())
        assert "VALIDATION FAILED" in str(report)
        assert report.to_json()["ok"] is False


class TestServeCompileJobs:
    def test_compile_example(self):
        result = execute_job(Job(kind="compile", example="fact-f",
                                 id="t1"))
        assert result.status == "ok"
        assert result.output["tier"] == "general"
        assert result.output["blocks"] >= 2
        # the payload is the bare T component (its import thunks may
        # themselves mention FT boundaries for materialized closures)
        assert "halt" in result.output["assembly"]

    def test_compile_inline_with_validation_and_ir(self):
        result = execute_job(Job(
            kind="compile", source="lam (x:int). x + 1", id="t2",
            options=JobOptions(validate=True, ir=True)))
        assert result.status == "ok"
        assert result.output["validation"]["ok"] is True
        assert result.output["ir"]

    def test_forced_tier(self):
        result = execute_job(Job(
            kind="compile", source="lam (x:int). x + 1", id="t3",
            options=JobOptions(tier="general")))
        assert result.status == "ok"
        assert result.output["tier"] == "general"

    def test_component_input_is_a_clean_error(self):
        result = execute_job(Job(kind="compile", example="two-blocks-1",
                                 id="t4"))
        assert result.status == "error"
        assert result.error

    def test_semantic_options_fragment_the_cache_key(self):
        base = Job(kind="compile", example="fact-f")
        keys = {
            job_cache_key(base),
            job_cache_key(Job(kind="compile", example="fact-f",
                              options=JobOptions(validate=True))),
            job_cache_key(Job(kind="compile", example="fact-f",
                              options=JobOptions(ir=True))),
            job_cache_key(Job(kind="compile", example="fact-f",
                              options=JobOptions(tier="general"))),
        }
        assert len(keys) == 4

    def test_compile_kind_is_registered(self):
        from repro.serve.protocol import JOB_KINDS

        assert "compile" in JOB_KINDS

"""Unit tests for alpha-equivalence of T types (repro.tal.equality)."""

from repro.tal.equality import (
    chis_equal, psis_equal, qs_equal, stacks_equal, types_equal,
)
from repro.tal.syntax import (
    CodeType, DeltaBind, KIND_ALPHA, KIND_EPS, KIND_ZETA, NIL_STACK, QEnd,
    QEps, QIdx, QOut, QReg, RegFileTy, StackTy, TBox, TExists, TInt, TRec,
    TRef, TupleTy, TUnit, TVar,
)


def cont(zeta="z", eps="e"):
    return TBox(CodeType((), RegFileTy.of(r1=TInt()),
                         StackTy((), zeta), QEps(eps)))


def arrow_ct(zeta="z", eps="e"):
    return CodeType(
        (DeltaBind(KIND_ZETA, zeta), DeltaBind(KIND_EPS, eps)),
        RegFileTy.of(ra=cont(zeta, eps)), StackTy((TInt(),), zeta),
        QReg("ra"))


class TestValueTypes:
    def test_base(self):
        assert types_equal(TInt(), TInt())
        assert types_equal(TUnit(), TUnit())
        assert not types_equal(TInt(), TUnit())

    def test_free_vars_by_name(self):
        assert types_equal(TVar("a"), TVar("a"))
        assert not types_equal(TVar("a"), TVar("b"))

    def test_exists_alpha(self):
        assert types_equal(TExists("a", TVar("a")),
                           TExists("b", TVar("b")))

    def test_mu_alpha(self):
        assert types_equal(TRec("a", TRef((TVar("a"),))),
                           TRec("b", TRef((TVar("b"),))))

    def test_ref_width(self):
        assert not types_equal(TRef((TInt(),)), TRef((TInt(), TInt())))

    def test_ref_vs_box_distinct(self):
        assert not types_equal(TRef((TInt(),)),
                               TBox(TupleTy((TInt(),))))


class TestCodeTypes:
    def test_renamed_binders_equal(self):
        assert psis_equal(arrow_ct("z", "e"), arrow_ct("zz", "ee"))

    def test_binder_kind_order_matters(self):
        flipped = CodeType(
            (DeltaBind(KIND_EPS, "e"), DeltaBind(KIND_ZETA, "z")),
            RegFileTy.of(ra=cont()), StackTy((TInt(),), "z"), QReg("ra"))
        assert not psis_equal(arrow_ct(), flipped)

    def test_marker_matters(self):
        other = CodeType(arrow_ct().delta, arrow_ct().chi,
                         arrow_ct().sigma, QReg("r1"))
        assert not psis_equal(arrow_ct(), other)

    def test_extra_register_matters(self):
        bigger = CodeType(
            arrow_ct().delta,
            arrow_ct().chi.set("r2", TInt()),
            arrow_ct().sigma, QReg("ra"))
        assert not psis_equal(arrow_ct(), bigger)

    def test_nested_shadowing(self):
        # forall[zeta z]. {..; z} with an inner code type rebinding z
        inner = CodeType((DeltaBind(KIND_ZETA, "z"),), RegFileTy(),
                         StackTy((), "z"), QOut())
        outer1 = CodeType((DeltaBind(KIND_ZETA, "z"),),
                          RegFileTy.of(r1=TBox(inner)), StackTy((), "z"),
                          QOut())
        inner2 = CodeType((DeltaBind(KIND_ZETA, "w"),), RegFileTy(),
                          StackTy((), "w"), QOut())
        outer2 = CodeType((DeltaBind(KIND_ZETA, "v"),),
                          RegFileTy.of(r1=TBox(inner2)), StackTy((), "v"),
                          QOut())
        assert psis_equal(outer1, outer2)


class TestStacks:
    def test_nil(self):
        assert stacks_equal(NIL_STACK, NIL_STACK)

    def test_prefix_width(self):
        assert not stacks_equal(StackTy((TInt(),), None), NIL_STACK)

    def test_tail_kind(self):
        assert not stacks_equal(StackTy((), "z"), NIL_STACK)

    def test_free_tails_by_name(self):
        assert stacks_equal(StackTy((), "z"), StackTy((), "z"))
        assert not stacks_equal(StackTy((), "z"), StackTy((), "w"))


class TestMarkers:
    def test_reg(self):
        assert qs_equal(QReg("ra"), QReg("ra"))
        assert not qs_equal(QReg("ra"), QReg("r1"))

    def test_idx(self):
        assert qs_equal(QIdx(2), QIdx(2))
        assert not qs_equal(QIdx(2), QIdx(3))

    def test_end(self):
        assert qs_equal(QEnd(TInt(), NIL_STACK), QEnd(TInt(), NIL_STACK))
        assert not qs_equal(QEnd(TInt(), NIL_STACK),
                            QEnd(TUnit(), NIL_STACK))

    def test_cross_kind(self):
        assert not qs_equal(QReg("ra"), QIdx(0))
        assert not qs_equal(QOut(), QEps("e"))


class TestChis:
    def test_equal(self):
        assert chis_equal(RegFileTy.of(r1=TInt()), RegFileTy.of(r1=TInt()))

    def test_domain_mismatch(self):
        assert not chis_equal(RegFileTy.of(r1=TInt()),
                              RegFileTy.of(r2=TInt()))

    def test_alpha_in_entries(self):
        a = RegFileTy.of(r1=TExists("a", TVar("a")))
        b = RegFileTy.of(r1=TExists("b", TVar("b")))
        assert chis_equal(a, b)

"""Tests for the hot-code profiler (:mod:`repro.obs.profile`).

Covers content-hashed code identity, step attribution across the CEK
and substitution engines and the T machine, engine-boundary barriers,
tail-call extent replacement, and :class:`ProfileSnapshot` round-trips
and merges.
"""

import json

import pytest

from repro.f.cek import CEKEvaluator
from repro.f.eval import FEvaluator
from repro.f.syntax import App, BinOp, FArrow, FInt, IntE, Lam, Var
from repro.ft.machine import evaluate_ft
from repro.obs.profile import PROFILER, ProfileSnapshot, content_hash
from repro.papers_examples.fig17_factorial import build_fact_f


@pytest.fixture(autouse=True)
def profiler_off():
    PROFILER.disable()
    PROFILER.reset()
    yield
    PROFILER.disable()
    PROFILER.reset()


def inner_fact_lam():
    """The recursive ``lam(x)`` body of factF -- the hot lambda."""
    return build_fact_f().body.fn.fn.body


def profiled(fn):
    PROFILER.enable()
    try:
        fn()
    finally:
        snap = PROFILER.snapshot()
        PROFILER.disable()
        PROFILER.reset()
    return snap


class TestContentHash:
    def test_structurally_equal_code_hashes_equal(self):
        assert content_hash(build_fact_f()) == content_hash(build_fact_f())

    def test_different_code_hashes_differ(self):
        a = Lam((("x", FInt()),), Var("x"))
        b = Lam((("x", FInt()),), IntE(1))
        assert content_hash(a) != content_hash(b)

    def test_kind_disambiguates(self):
        a = Lam((("x", FInt()),), Var("x"))
        assert content_hash(a, "f") != content_hash(a, "t")


class TestRanking:
    def test_factorial_lambda_ranks_first(self):
        program = App(build_fact_f(), (IntE(6),))
        snap = profiled(lambda: CEKEvaluator(program).run())
        assert snap.entries, "profiler attributed nothing"
        assert snap.entries[0]["key"] == content_hash(inner_fact_lam())
        assert snap.entries[0]["kind"] == "f"
        assert snap.entries[0]["self_steps"] > snap.entries[1]["self_steps"]

    def test_subst_engine_ranks_the_substituted_copy_first(self):
        """The substitution engine betas *post-substitution* lambdas:
        structurally identical across iterations (so attribution stays
        coherent) but distinct from the source lambda, whose free ``f``
        was replaced by the folded template.  Same hot row -- same label
        and count -- under a substitution-stable hash of its own."""
        subst = profiled(lambda: FEvaluator(
            App(build_fact_f(), (IntE(6),))).run())
        cek = profiled(lambda: CEKEvaluator(
            App(build_fact_f(), (IntE(6),))).run())
        assert subst.entries[0]["label"] == cek.entries[0]["label"] \
            == "lam(x)"
        assert subst.entries[0]["self_steps"] == \
            cek.entries[0]["self_steps"]
        assert subst.entries[0]["key"] != cek.entries[0]["key"]

    def test_fig17_mixed_run_keeps_f_lambda_first(self):
        from repro.papers_examples import resolve_example

        build = resolve_example("fig17")[1]
        snap = profiled(lambda: evaluate_ft(build()))
        assert snap.entries[0]["key"] == content_hash(inner_fact_lam())
        t_rows = [e for e in snap.entries if e["kind"] == "t"]
        assert any(e["label"] == "block lloop" for e in t_rows)

    def test_disabled_profiler_attributes_nothing(self):
        CEKEvaluator(App(build_fact_f(), (IntE(4),))).run()
        assert PROFILER.snapshot().total_steps == 0

    def test_snapshot_publishes_profile_metrics(self):
        """With obs enabled, ``snapshot()`` publishes ``profile.steps``
        (delta-counted, so repeated snapshots don't double-bill) and the
        ``profile.sites`` gauge."""
        from repro import obs

        obs.reset()
        obs.enable(record=False)
        try:
            snap = profiled(lambda: CEKEvaluator(
                App(build_fact_f(), (IntE(5),))).run())
            metrics = obs.OBS.metrics.snapshot()
            assert metrics["counters"]["profile.steps"] == snap.total_steps
            assert metrics["gauges"]["profile.sites"] == len(snap.entries)
        finally:
            obs.disable()
            obs.reset()

    def test_repeated_snapshots_do_not_double_publish(self):
        from repro import obs

        obs.reset()
        obs.enable(record=False)
        PROFILER.enable()
        try:
            CEKEvaluator(App(build_fact_f(), (IntE(4),))).run()
            first = PROFILER.snapshot()
            second = PROFILER.snapshot()
            assert second.total_steps == first.total_steps
            counters = obs.OBS.metrics.snapshot()["counters"]
            assert counters["profile.steps"] == first.total_steps
        finally:
            PROFILER.disable()
            PROFILER.reset()
            obs.disable()
            obs.reset()

    def test_engines_attribute_the_same_step_totals(self):
        """The two F steppers are observably step-equivalent, so the
        profiler must attribute identical totals and per-row counts."""
        cek = profiled(lambda: CEKEvaluator(
            App(build_fact_f(), (IntE(5),))).run())
        subst = profiled(lambda: FEvaluator(
            App(build_fact_f(), (IntE(5),))).run())
        assert cek.total_steps == subst.total_steps
        assert [e["self_steps"] for e in cek.entries] == \
            [e["self_steps"] for e in subst.entries]


class TestStacksAndBarriers:
    def test_tail_recursion_keeps_stacks_flat(self):
        """A self tail call replaces its own extent instead of stacking:
        counting down from 40 must not produce 40-deep folded stacks."""
        from repro.f.syntax import If0

        # loop(n) = if0 n then 0 else loop(f, n - 1), via self-application.
        mu_ish = FArrow((FInt(),), FInt())   # f is passed explicitly
        loop = Lam(
            (("f", FArrow((mu_ish, FInt()), FInt())), ("n", FInt())),
            If0(Var("n"), IntE(0),
                App(Var("f"), (Var("f"), BinOp("-", Var("n"), IntE(1))))))
        program = App(loop, (loop, IntE(40)))
        snap = profiled(lambda: CEKEvaluator(program).run())
        deepest = max(len(f["stack"]) for f in snap.folded)
        assert deepest <= 3

    def test_non_tail_recursion_stacks_grow(self):
        program = App(build_fact_f(), (IntE(6),))
        snap = profiled(lambda: CEKEvaluator(program).run())
        deepest = max(len(f["stack"]) for f in snap.folded)
        assert deepest >= 5    # fact(6) keeps the multiply pending

    def test_engine_barrier_protects_outer_extents(self):
        """Frame depths are engine-local: a nested engine's beta at a
        *smaller* depth must not unwind the caller's extents.  The
        barrier stops the tail-call pop; the caller's extent survives
        (and keeps nesting the inner work, which is the cross-language
        flamegraph feature)."""
        outer = Lam((("x", FInt()),), Var("x"))
        inner = Lam((("y", FInt()),), Var("y"))
        PROFILER.enable()
        try:
            PROFILER.beta(outer, depth=7)   # deep in the outer engine
            base = PROFILER.enter_engine()
            PROFILER.beta(inner, depth=1)   # shallow in the inner one
            PROFILER.exit_engine(base)
            PROFILER.step(depth=7)          # still charges `outer`
        finally:
            snap = PROFILER.snapshot()
            PROFILER.disable()
            PROFILER.reset()
        by_key = {e["key"]: e["self_steps"] for e in snap.entries}
        assert by_key[content_hash(outer)] == 2    # beta + the late step
        assert by_key[content_hash(inner)] == 1
        # The inner beta's folded stack nests under the outer extent.
        inner_paths = [f["stack"] for f in snap.folded
                       if f["keys"][-1] == content_hash(inner)]
        assert inner_paths == [["lam(x)", "lam(y)"]]

    def test_exit_engine_is_exception_safe(self):
        PROFILER.enable()
        try:
            base = PROFILER.enter_engine()
            PROFILER.beta(Lam((("x", FInt()),), Var("x")), depth=1)
            PROFILER.exit_engine(base)
            assert PROFILER._stack == []
        finally:
            PROFILER.disable()
            PROFILER.reset()


class TestProfileSnapshot:
    def _snap(self, n=5):
        return profiled(
            lambda: CEKEvaluator(App(build_fact_f(), (IntE(n),))).run())

    def test_dict_round_trip(self):
        snap = self._snap()
        again = ProfileSnapshot.from_dict(snap.to_dict())
        assert again.to_dict() == snap.to_dict()

    def test_save_load(self, tmp_path):
        snap = self._snap()
        path = str(tmp_path / "profile.json")
        snap.save(path)
        assert ProfileSnapshot.load(path).to_dict() == snap.to_dict()
        with open(path, encoding="utf-8") as handle:
            json.load(handle)               # valid JSON on disk

    def test_merge_is_associative_and_adds(self):
        a, b, c = self._snap(3), self._snap(4), self._snap(5)
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.to_dict() == right.to_dict()
        assert left.total_steps == \
            a.total_steps + b.total_steps + c.total_steps

    def test_format_table_ranks_and_hashes(self):
        snap = self._snap()
        table = snap.format_table()
        lines = [l for l in table.splitlines() if l.strip()]
        first_row = lines[2]
        assert content_hash(inner_fact_lam()) in first_row

    def test_format_folded_is_flamegraph_input(self):
        snap = self._snap()
        for line in snap.format_folded().splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) > 0
            assert stack

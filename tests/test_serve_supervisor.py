"""Tests for the serve fleet's supervision layer.

Unit level: :class:`CircuitBreaker`, :class:`RestartTracker`,
:class:`DigestQuarantine`, and :func:`job_fault_key` in isolation.

Integration level (each against a live pool): heartbeat-based hung
worker detection, deadline shedding before dispatch, shed-oldest
backpressure with ``retry_after_ms`` hints, breaker-driven degradation,
mid-run checkpoint recovery onto a sibling worker, and the property
that a kill/hang storm never loses a job.
"""

import time

import pytest

from repro.serve.pool import QueueFull, WorkerPool
from repro.serve.protocol import Job, JobOptions
from repro.serve.supervisor import (
    CircuitBreaker, DigestQuarantine, RestartTracker, SupervisorConfig,
    job_fault_key,
)


def run_job(source, **opts):
    return Job("run", source=source, options=JobOptions(**opts))


# -- unit: supervision policy objects -----------------------------------


class TestCircuitBreaker:
    def test_disabled_by_default_threshold_zero(self):
        br = CircuitBreaker(0, 30.0, 5.0)
        assert not br.enabled
        for _ in range(100):
            br.record_fatal("run")
        assert not br.is_open("run")

    def test_opens_at_threshold_and_cools_down(self):
        br = CircuitBreaker(3, 30.0, 0.05)
        assert not br.record_fatal("run")
        assert not br.record_fatal("run")
        assert br.record_fatal("run")       # third strike opens it
        assert br.is_open("run")
        assert br.retry_after_ms("run") > 0
        assert not br.is_open("jit")        # per-kind isolation
        time.sleep(0.08)
        assert not br.is_open("run")        # cooldown expired

    def test_success_clears_the_strike_history(self):
        br = CircuitBreaker(3, 30.0, 5.0)
        br.record_fatal("run")
        br.record_fatal("run")
        br.record_ok("run")
        assert not br.record_fatal("run")   # history was wiped
        assert not br.is_open("run")

    def test_old_strikes_age_out_of_the_window(self):
        br = CircuitBreaker(2, 0.05, 5.0)
        br.record_fatal("run")
        time.sleep(0.08)
        assert not br.record_fatal("run")   # first strike expired

    def test_snapshot_shape(self):
        br = CircuitBreaker(2, 30.0, 5.0)
        br.record_fatal("run")
        br.record_fatal("run")
        snap = br.snapshot()
        assert snap["enabled"] and snap["threshold"] == 2
        assert snap["opened_total"] == 1
        assert "run" in snap["open"]


class TestRestartTracker:
    def test_within_budget_is_free(self):
        tr = RestartTracker(3, 30.0, 0.5, 10.0, seed=7)
        assert tr.delay(1) == 0.0
        assert tr.delay(1) == 0.0
        assert tr.delay(1) == 0.0

    def test_over_budget_backs_off_exponentially(self):
        tr = RestartTracker(2, 30.0, 0.5, 10.0, seed=7)
        tr.delay(1), tr.delay(1)
        d1 = tr.delay(1)
        d2 = tr.delay(1)
        assert 0.5 <= d1 <= 1.0            # backoff + jitter
        assert d2 > d1 / 2                 # grows (modulo jitter)
        assert d2 <= 10.0 + 0.5

    def test_budget_is_per_slot(self):
        tr = RestartTracker(1, 30.0, 0.5, 10.0, seed=7)
        assert tr.delay(1) == 0.0
        assert tr.delay(2) == 0.0          # other slot unaffected
        assert tr.delay(1) > 0.0

    def test_deaths_age_out_of_the_window(self):
        tr = RestartTracker(1, 0.05, 0.5, 10.0, seed=7)
        assert tr.delay(1) == 0.0
        time.sleep(0.08)
        assert tr.delay(1) == 0.0          # window rolled over


class TestQuarantineAndFaultKey:
    def test_fault_key_ignores_id_but_not_faults(self):
        a = run_job("(1 + 1)")
        b = run_job("(1 + 1)")
        b.id = "something-else"
        assert job_fault_key(a) == job_fault_key(b)
        c = run_job("(1 + 1)", inject_crash=True)
        assert job_fault_key(a) != job_fault_key(c)

    def test_quarantine_round_trip(self):
        q = DigestQuarantine(True)
        key = job_fault_key(run_job("(1 + 1)", inject_crash=True))
        q.add(key, "crashed")
        assert key in q and len(q) == 1
        assert q.reason(key) == "crashed"
        clean = job_fault_key(run_job("(1 + 1)"))
        assert clean not in q              # fault options distinguish
        q.clear()
        assert key not in q

    def test_disabled_quarantine_accepts_nothing(self):
        q = DigestQuarantine(False)
        key = job_fault_key(run_job("(1 + 1)"))
        q.add(key, "crashed")
        assert key not in q and len(q) == 0


class TestConfigValidation:
    def test_bad_shed_policy_rejected(self):
        with pytest.raises(ValueError):
            SupervisorConfig(shed_policy="drop-newest")

    def test_pool_rejects_bad_shed_policy(self):
        with pytest.raises(ValueError):
            WorkerPool(1, shed_policy="nope")


# -- integration: a live pool under supervision -------------------------


class TestHeartbeat:
    def test_hung_worker_detected_before_job_deadline(self):
        """SIGSTOP freezes the worker; the heartbeat notices in
        ~misses*interval even though the job deadline is far away."""
        cfg = SupervisorConfig(heartbeat_interval=0.1, heartbeat_misses=3)
        with WorkerPool(1, max_retries=0, default_timeout=60.0,
                        supervisor=cfg) as pool:
            t0 = time.monotonic()
            result = pool.submit(
                run_job("(1 + 1)", inject_hang=True)).wait(30.0)
            elapsed = time.monotonic() - t0
            assert result is not None
            assert result.status == "timeout"
            assert elapsed < 20.0          # far below the 60s deadline
            # the pool respawned and still serves
            ok = pool.submit(run_job("(2 + 2)")).wait(30.0)
            assert ok.ok and ok.output["value"] == "4"


class TestDeadlines:
    def test_expired_deadline_is_shed_not_run(self):
        with WorkerPool(1, max_retries=0, default_timeout=30.0,
                        retry_backoff=0.01) as pool:
            # occupy the only worker long enough for the deadline to
            # pass; give the manager a beat to dispatch it alone, so
            # the doomed job queues instead of riding the same chunk
            slow = pool.submit(run_job("(1 + 1)", inject_sleep=0.6))
            time.sleep(0.25)
            doomed = pool.submit(run_job("(2 + 2)", deadline_ms=100))
            result = doomed.wait(30.0)
            assert result.status == "timeout"
            assert result.error_type == "DeadlineExpired"
            assert result.output.get("shed") is True
            assert slow.wait(30.0).ok

    def test_generous_deadline_runs_normally(self):
        with WorkerPool(1, default_timeout=30.0) as pool:
            result = pool.submit(
                run_job("(3 + 4)", deadline_ms=30_000)).wait(30.0)
            assert result.ok and result.output["value"] == "7"


class TestShedPolicies:
    def test_reject_policy_raises_queue_full_with_hint(self):
        with WorkerPool(1, queue_size=1, default_timeout=30.0) as pool:
            pool.submit(run_job("(1 + 1)", inject_sleep=0.5))
            with pytest.raises(QueueFull) as exc:
                for i in range(20):
                    pool.submit(run_job(f"({i} + 0)"), block=False)
            assert exc.value.retry_after_ms > 0

    def test_shed_oldest_resolves_victims_as_overloaded(self):
        with WorkerPool(1, queue_size=2, shed_policy="shed-oldest",
                        default_timeout=30.0) as pool:
            blocker = pool.submit(run_job("(1 + 1)", inject_sleep=0.5))
            time.sleep(0.25)      # let it dispatch: inflight jobs are
            tickets = [pool.submit(run_job(f"({i} + 0)"), block=False)
                       for i in range(8)]   # never shed, queued ones are
            results = [t.wait(30.0) for t in tickets]
            assert all(r is not None for r in results)
            over = [r for r in results if r.status == "overloaded"]
            assert over, "expected at least one shed victim"
            for r in over:
                assert r.error_type == "QueueFull"
                assert r.output["retry_after_ms"] > 0
            assert blocker.wait(30.0).ok


class TestBreaker:
    def test_breaker_opens_and_refuses_the_kind(self):
        cfg = SupervisorConfig(breaker_threshold=2, breaker_window=30.0,
                               breaker_cooldown=60.0,
                               quarantine_fatal=False)
        with WorkerPool(1, max_retries=0, retry_backoff=0.01,
                        default_timeout=30.0, supervisor=cfg) as pool:
            for i in range(2):
                r = pool.submit(Job(
                    "run", id=f"boom{i}", source=f"({i} + 0)",
                    options=JobOptions(inject_crash=True))).wait(30.0)
                assert r.status == "crashed"
            refused = pool.submit(run_job("(5 + 5)")).wait(30.0)
            assert refused.status == "overloaded"
            assert refused.error_type == "BreakerOpen"
            assert refused.output["retry_after_ms"] > 0
            # other kinds still pass through the open run-breaker
            other = pool.submit(
                Job("typecheck", source="(1 + 1)")).wait(30.0)
            assert other.ok


class TestQuarantineIntegration:
    def test_fatal_digest_is_quarantined_but_clean_twin_passes(self):
        with WorkerPool(1, max_retries=0, retry_backoff=0.01,
                        default_timeout=30.0) as pool:
            bad = Job("run", id="q1", source="(9 + 9)",
                      options=JobOptions(inject_crash=True))
            assert pool.submit(bad).wait(30.0).status == "crashed"
            again = Job("run", id="q2", source="(9 + 9)",
                        options=JobOptions(inject_crash=True))
            r = pool.submit(again).wait(30.0)
            assert r.status == "rejected"
            assert r.error_type == "QuarantinedJob"
            # same source without the fault option is a different digest
            clean = pool.submit(run_job("(9 + 9)")).wait(30.0)
            assert clean.ok and clean.output["value"] == "18"


class TestCheckpointRecovery:
    def test_killed_job_resumes_on_a_sibling_from_its_snapshot(self):
        with WorkerPool(2, max_retries=2, retry_backoff=0.01,
                        default_timeout=30.0) as pool:
            job = Job("run", example="fact-f",
                      options=JobOptions(checkpoint=True,
                                         checkpoint_every=8,
                                         inject_crash_at=1))
            result = pool.submit(job).wait(60.0)
            assert result is not None and result.ok
            assert result.kind == "run"     # resume rewrite normalized
            assert result.output["value"] == "720"
            assert result.output["recovered"] is True
            assert "recovered_from_worker" in result.output

    def test_recovery_counts_in_stats(self):
        with WorkerPool(2, max_retries=2, retry_backoff=0.01,
                        default_timeout=30.0) as pool:
            job = Job("run", example="fact-f",
                      options=JobOptions(checkpoint=True,
                                         checkpoint_every=8,
                                         inject_crash_at=1))
            assert pool.submit(job).wait(60.0).ok
            mttr = pool.stats()["supervisor"]["mttr_ms"]
            assert mttr["count"] >= 1
            assert mttr["mean"] >= 0.0


class TestStorm:
    """Property: under a kill/hang storm every ticket resolves to a
    terminal result -- nothing hangs forever, nothing vanishes."""

    def test_every_ticket_resolves_terminal(self):
        import random
        rng = random.Random(42)
        cfg = SupervisorConfig(heartbeat_interval=0.1, heartbeat_misses=3,
                               restart_backoff=0.02,
                               restart_backoff_max=0.2)
        terminal = {"ok", "error", "crashed", "timeout", "overloaded",
                    "rejected", "suspended", "fuel_exhausted",
                    "resource_exhausted"}
        hangs = 0
        with WorkerPool(2, max_retries=1, retry_backoff=0.01,
                        default_timeout=2.0, supervisor=cfg) as pool:
            jobs = []
            for i in range(40):
                opts = {}
                roll = rng.random()
                if roll < 0.2:
                    opts["inject_crash"] = True
                elif roll < 0.3 and hangs < 2:
                    opts["inject_hang"] = True
                    hangs += 1
                elif roll < 0.4:
                    opts["inject_corrupt"] = True
                jobs.append(Job("run", id=f"storm{i}",
                                source=f"({i} + 1)",
                                options=JobOptions(**opts)))
            tickets = [pool.submit(j) for j in jobs]
            for ticket in tickets:
                result = ticket.wait(60.0)
                assert result is not None, \
                    f"job {ticket.job.id} never resolved"
                assert result.status in terminal
            # and the pool is still alive afterwards
            assert pool.submit(run_job("(10 + 10)")).wait(30.0).ok

"""Tests for cross-process trace propagation (:mod:`repro.obs.distributed`).

Covers pid round-tripping through the event wire format, multi-pid
Chrome export, :meth:`MetricsRegistry.merge_snapshot` (associative and
quantile-stable), worker-side capture, envelope stitching, and the
4-worker pool integration that produces one stitched span tree.
"""

import io
import json

import pytest

from repro import obs
from repro.obs.distributed import (
    TraceContext, WorkerCapture, new_trace_id, stitch_envelope,
)
from repro.obs.events import Counter, Gauge, MachineEvent, OBS, Span
from repro.obs.metrics import HistogramSummary, MetricsRegistry
from repro.obs.trace_export import (
    build_span_tree, event_from_dict, event_to_dict, export_chrome,
)
from repro.serve.pool import WorkerPool
from repro.serve.protocol import Job, JobOptions


@pytest.fixture(autouse=True)
def obs_off():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestTraceContext:
    def test_round_trip(self):
        ctx = TraceContext(new_trace_id(), parent_span_id=42, record=True)
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_defaults(self):
        ctx = TraceContext.from_dict({"trace_id": "abc"})
        assert ctx.parent_span_id == 0 and not ctx.record

    def test_trace_ids_are_unique(self):
        assert new_trace_id() != new_trace_id()


class TestPidRoundTrip:
    EVENTS = [
        Span("serve.job", "serve", 10, 90, 1, None, (("kind", "run"),),
             4242),
        Counter("f.machine.steps", 7, 15, pid=4242),
        Gauge("pool.queue", 3.0, 20, pid=4242),
        MachineEvent(1, "jmp", "lloop", (), (), "", 25, 4242),
    ]

    @pytest.mark.parametrize("event", EVENTS)
    def test_pid_survives_dict_round_trip(self, event):
        data = event_to_dict(event)
        assert data["pid"] == 4242
        assert event_from_dict(data) == event

    @pytest.mark.parametrize("event", EVENTS)
    def test_legacy_dict_without_pid_defaults_to_zero(self, event):
        data = event_to_dict(event)
        del data["pid"]
        assert event_from_dict(data).pid == 0


class TestChromeMultiPid:
    def test_spans_keep_their_worker_pid(self):
        events = [
            Span("serve.job", "serve", 0, 100, 1, None, (), 0),
            Span("ft.evaluate", "f", 10, 90, 2, 1, (), 111),
            Span("ft.evaluate", "f", 10, 90, 3, 1, (), 222),
        ]
        out = io.StringIO()
        export_chrome(events, out)
        rows = json.loads(out.getvalue())["traceEvents"]
        pids = {r["pid"] for r in rows}
        # pid 0 (untagged/parent) renders as Chrome's default lane 1;
        # each worker gets its own lane.
        assert pids == {1, 111, 222}


def _registry_with(counter=0, gauge=None, samples=()):
    reg = MetricsRegistry()
    if counter:
        reg.inc("jobs", counter)
    if gauge is not None:
        reg.set_gauge("depth", gauge)
    for v in samples:
        reg.observe("ms", v)
    return reg


class TestMergeSnapshot:
    def test_counters_add(self):
        a = _registry_with(counter=3)
        a.merge_snapshot(_registry_with(counter=4).snapshot())
        assert a.snapshot()["counters"]["jobs"] == 7

    def test_gauges_last_write_wins(self):
        a = _registry_with(gauge=1.0)
        a.merge_snapshot(_registry_with(gauge=9.0).snapshot())
        assert a.snapshot()["gauges"]["depth"] == 9.0

    def test_histograms_merge_counts_and_extrema(self):
        a = _registry_with(samples=[1.0, 2.0])
        a.merge_snapshot(_registry_with(samples=[10.0, 0.5]).snapshot())
        h = a.snapshot()["histograms"]["ms"]
        assert h["count"] == 4
        assert h["min"] == 0.5 and h["max"] == 10.0
        assert h["total"] == pytest.approx(13.5)

    def test_merge_is_associative(self):
        import random

        rng = random.Random(7)
        snaps = [
            _registry_with(counter=i + 1, gauge=float(i),
                           samples=[rng.lognormvariate(0, 2)
                                    for _ in range(50)]).snapshot()
            for i in range(3)]

        left = MetricsRegistry()
        left.merge_snapshot(snaps[0])
        left.merge_snapshot(snaps[1])
        left.merge_snapshot(snaps[2])

        inner = MetricsRegistry()
        inner.merge_snapshot(snaps[1])
        inner.merge_snapshot(snaps[2])
        right = MetricsRegistry()
        right.merge_snapshot(snaps[0])
        right.merge_snapshot(inner.snapshot())

        assert json.dumps(left.snapshot(), sort_keys=True) == \
            json.dumps(right.snapshot(), sort_keys=True)

    def test_merged_quantiles_match_combined_stream(self):
        """Merging two sketches gives the same quantiles as observing
        every sample into one sketch (the buckets add exactly)."""
        import random

        rng = random.Random(13)
        xs = [rng.lognormvariate(1, 1.5) for _ in range(400)]
        combined = HistogramSummary()
        for x in xs:
            combined.observe(x)
        a, b = HistogramSummary(), HistogramSummary()
        for x in xs[:150]:
            a.observe(x)
        for x in xs[150:]:
            b.observe(x)
        a.merge(b)
        for q in ("p50", "p95", "p99"):
            assert a.as_dict()[q] == combined.as_dict()[q]


class TestWorkerCapture:
    def test_envelope_carries_pid_metrics_events(self):
        import os

        ctx = TraceContext(new_trace_id(), parent_span_id=5, record=True)
        with WorkerCapture(ctx) as cap:
            with OBS.span("unit.work", "f"):
                OBS.metrics.inc("unit.steps", 3)
        env = cap.envelope
        assert env["pid"] == os.getpid()
        assert env["trace_id"] == ctx.trace_id
        assert env["metrics"]["counters"]["unit.steps"] == 3
        assert any(d.get("name") == "unit.work" for d in env["events"])

    def test_metrics_only_mode_ships_no_events(self):
        with WorkerCapture(TraceContext(new_trace_id())) as cap:
            with OBS.span("unit.work", "f"):
                OBS.metrics.inc("unit.steps")
        assert cap.envelope["events"] == []
        assert cap.envelope["metrics"]["counters"]["unit.steps"] == 1

    def test_prior_state_restored_and_totals_accumulate(self):
        obs.enable(record=False)
        OBS.metrics.inc("outer", 2)
        with WorkerCapture(TraceContext(new_trace_id())) as cap:
            OBS.metrics.inc("inner")
        assert OBS.enabled and not OBS.bus.recording
        counters = OBS.metrics.snapshot()["counters"]
        # The worker's lifetime registry keeps both its own counts and
        # the captured job's (folded back in on exit).
        assert counters["outer"] == 2 and counters["inner"] == 1
        assert cap.envelope["metrics"]["counters"] == {"inner": 1}


class TestStitchEnvelope:
    def _envelope(self, pid=999):
        return {
            "pid": pid,
            "trace_id": "t",
            "metrics": {},
            "events": [
                event_to_dict(Span("ft.evaluate", "f", 0, 9, 1, None, ())),
                event_to_dict(Span("ft.boundary", "t", 1, 8, 2, 1, ())),
                event_to_dict(Span("orphan", "f", 2, 3, 3, 77, ())),
                event_to_dict(MachineEvent(0, "jmp", "l", (), (), "", 5)),
            ],
        }

    def test_roots_and_orphans_reparent(self):
        stitched = stitch_envelope(self._envelope(), parent_span_id=123)
        spans = {s.name: s for s in stitched if isinstance(s, Span)}
        assert spans["ft.evaluate"].parent_id == 123
        assert spans["orphan"].parent_id == 123     # parent 77 not shipped
        assert spans["ft.boundary"].parent_id == spans["ft.evaluate"].span_id

    def test_ids_remapped_and_pid_tagged(self):
        stitched = stitch_envelope(self._envelope(pid=31337), 1)
        assert all(e.pid == 31337 for e in stitched)
        twice = stitch_envelope(self._envelope(pid=31337), 1)
        first = {e.span_id for e in stitched if isinstance(e, Span)}
        second = {e.span_id for e in twice if isinstance(e, Span)}
        assert not first & second   # fresh parent-process ids every time


class TestPoolStitching:
    """The tentpole acceptance path: a 4-worker batch produces one
    stitched span tree containing worker spans from >= 2 pids."""

    def _run_batch(self, workers=4, jobs=8):
        obs.enable(record=True)
        batch = [Job("run", id=f"fig17#{i}", example="fig17",
                     options=JobOptions(no_cache=True))
                 for i in range(jobs)]
        with WorkerPool(workers, cache=None) as pool:
            results = pool.run_batch(batch, timeout=120.0)
        assert all(r.ok for r in results)
        return results, OBS.bus.drain(), OBS.metrics.snapshot()

    def test_stitched_tree_spans_multiple_pids(self):
        import os

        results, events, snapshot = self._run_batch()
        spans = [e for e in events if isinstance(e, Span)]
        roots = [s for s in spans if s.name == "serve.job"]
        assert len(roots) == 8
        root_ids = {s.span_id for s in roots}
        worker_spans = [s for s in spans if s.pid not in (0, os.getpid())]
        worker_pids = {s.pid for s in worker_spans}
        assert len(worker_pids) >= 2
        # Every worker-side evaluate span hangs off a serve.job root.
        evaluates = [s for s in worker_spans if s.name == "ft.evaluate"]
        assert len(evaluates) == 8
        assert all(s.parent_id in root_ids for s in evaluates)
        # The tree builds without orphans.
        tree_roots = build_span_tree(spans)
        assert {r.span.span_id for r in tree_roots} >= root_ids

    def test_worker_metrics_merge_into_parent_registry(self):
        results, events, snapshot = self._run_batch(workers=2, jobs=4)
        counters = snapshot["counters"]
        assert counters["serve.obs.envelopes"] == 4
        assert counters["f.machine.steps"] > 0
        assert counters["t.machine.steps"] > 0
        hist = snapshot["histograms"]["serve.job.ms"]
        assert hist["count"] == 4
        for q in ("p50", "p95", "p99"):
            assert hist[q] is not None

    def test_metrics_only_mode_still_fills_quantiles(self):
        obs.enable(record=False)
        batch = [Job("run", id=f"fig17#{i}", example="fig17",
                     options=JobOptions(no_cache=True)) for i in range(3)]
        with WorkerPool(2, cache=None) as pool:
            results = pool.run_batch(batch, timeout=120.0)
        assert all(r.ok for r in results)
        assert OBS.bus.events() == ()
        hist = OBS.metrics.snapshot()["histograms"]["serve.job.ms"]
        assert hist["count"] == 3 and hist["p99"] >= hist["p50"]

    def test_cached_results_do_not_leak_envelopes(self):
        from repro.serve.cache import ResultCache

        obs.enable(record=True)
        job = Job("run", example="fig17")
        with WorkerPool(2, cache=ResultCache(16)) as pool:
            first = pool.submit(job).wait(60.0)
            second = pool.submit(Job("run", example="fig17")).wait(60.0)
        assert first.ok and second.ok and second.cached
        assert second.obs is None

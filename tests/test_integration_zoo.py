"""Whole-system integration: programs that combine every feature at once
(higher-order F, embedded assembly, stack cells, foreign pointers, the JIT
compiler) -- the 'downstream user' workloads."""

import pytest

from repro.equiv.checker import check_equivalence
from repro.f.eval import evaluate
from repro.f.syntax import (
    App, BinOp, FArrow, FInt, FUnit, IntE, Lam, TupleE, Proj, UnitE, Var,
    FTupleT,
)
from repro.ft.machine import evaluate_ft
from repro.ft.typecheck import check_ft_expr
from repro.jit.compiler import compile_function, jit_rewrite
from repro.papers_examples.fig17_factorial import build_fact_t
from repro.stdlib.foreign import bump, counter_value, INT_CELL_LUMP, new_counter
from repro.stdlib.prelude import let_, seq_cell, twice
from repro.stdlib.refs import alloc_cell, free_cell, read_cell, write_cell
from repro.tal.syntax import TInt


class TestMixedPrograms:
    def test_assembly_factorial_of_compiled_double(self):
        """factT (compiled_double 3) = 720 -- two separately generated
        assembly components composed through F."""
        double = compile_function(
            Lam((("x", FInt()),), BinOp("*", Var("x"), IntE(2))))
        prog = App(build_fact_t(), (App(double, (IntE(3),)),))
        assert check_ft_expr(prog)[0] == FInt()
        value, _ = evaluate_ft(prog)
        assert value == IntE(720)

    def test_twice_over_assembly(self):
        """The pure-F 'twice' combinator applied to an assembly-backed
        function."""
        double = compile_function(
            Lam((("x", FInt()),), BinOp("*", Var("x"), IntE(2))))
        prog = App(twice(double, FInt()), (IntE(5),))
        value, _ = evaluate_ft(prog)
        assert value == IntE(20)

    def test_tuple_of_mixed_results(self):
        fact = build_fact_t()
        double = compile_function(
            Lam((("x", FInt()),), BinOp("*", Var("x"), IntE(2))))
        prog = Proj(1, TupleE((App(fact, (IntE(4),)),
                               App(double, (IntE(21),)))))
        value, _ = evaluate_ft(prog)
        assert value == IntE(42)

    def test_stack_cell_feeding_assembly(self):
        """Keep a running value in a stack cell, square it with compiled
        assembly, store it back."""
        square = compile_function(
            Lam((("x", FInt()),), BinOp("*", Var("x"), Var("x"))))
        INT = (TInt(),)
        prog = seq_cell(
            App(alloc_cell(), (IntE(7),)), "_", FUnit(),
            seq_cell(
                App(read_cell(), (UnitE(),)), "v", FInt(),
                seq_cell(
                    App(write_cell(), (App(square, (Var("v"),)),)),
                    "_w", FUnit(),
                    seq_cell(
                        App(read_cell(), (UnitE(),)), "w", FInt(),
                        seq_cell(App(free_cell(), (UnitE(),)), "_f",
                                 FUnit(), Var("w"), (), ()),
                        INT, ()),
                    INT, ()),
                INT, ()),
            INT, ())
        assert check_ft_expr(prog)[0] == FInt()
        value, machine = evaluate_ft(prog)
        assert value == IntE(49)
        assert machine.memory.depth == 0

    def test_lump_counter_driving_factorial(self):
        """Mutable heap state (lump) supplies the factorial's argument."""
        prog = let_(
            "c", INT_CELL_LUMP, App(new_counter(), (IntE(3),)),
            let_("u1", FUnit(), App(bump(), (Var("c"),)),
                 let_("u2", FUnit(), App(bump(), (Var("c"),)),
                      App(build_fact_t(),
                          (App(counter_value(), (Var("c"),)),)))))
        value, _ = evaluate_ft(prog)
        assert value == IntE(120)   # 5!

    def test_jit_rewrite_of_a_combinator_pipeline(self):
        compose2 = Lam(
            (("f", FArrow((FInt(),), FInt())),
             ("g", FArrow((FInt(),), FInt())),
             ("x", FInt())),
            App(Var("f"), (App(Var("g"), (Var("x"),)),)))
        inc = Lam((("x", FInt()),), BinOp("+", Var("x"), IntE(1)))
        trip = Lam((("x", FInt()),), BinOp("*", Var("x"), IntE(3)))
        prog = App(compose2, (inc, trip, IntE(13)))
        rewritten = jit_rewrite(prog)
        assert evaluate(prog) == IntE(40)
        value, _ = evaluate_ft(rewritten)
        assert value == IntE(40)

    def test_equivalence_of_pipeline_vs_fused(self):
        """inc . triple, compiled separately, is equivalent to the fused
        compiled function 3x+1."""
        inc_trip = compile_function(
            Lam((("x", FInt()),),
                BinOp("+", BinOp("*", Var("x"), IntE(3)), IntE(1))))
        staged = Lam(
            (("x", FInt()),),
            App(compile_function(
                Lam((("y", FInt()),), BinOp("+", Var("y"), IntE(1)))),
                (App(compile_function(
                    Lam((("z", FInt()),), BinOp("*", Var("z"), IntE(3)))),
                    (Var("x"),)),)))
        report = check_equivalence(inc_trip, staged,
                                   FArrow((FInt(),), FInt()),
                                   fuel=30_000)
        assert report.equivalent


class TestDeepNesting:
    def test_boundaries_nest_many_levels(self):
        """F(T(F(T(...)))) nesting through repeated compiled wrappers."""
        inner = Lam((("x", FInt()),), BinOp("+", Var("x"), IntE(1)))
        f = inner
        for _ in range(4):
            f = compile_function(
                Lam((("x", FInt()),), BinOp("+", Var("x"), IntE(1))))
            inner = Lam((("x", FInt()),),
                        App(f, (App(inner, (Var("x"),)),)))
        value, _ = evaluate_ft(App(inner, (IntE(0),)))
        assert value == IntE(5)

    def test_many_sequential_boundaries(self):
        double = compile_function(
            Lam((("x", FInt()),), BinOp("*", Var("x"), IntE(2))))
        e = IntE(1)
        for _ in range(8):
            e = App(double, (e,))
        value, machine = evaluate_ft(e)
        assert value == IntE(256)

"""Tests for :mod:`repro.link.store` -- the on-disk artifact store.

The robustness contract: a truncated or bit-flipped artifact is
*detected* (integrity hash) and *healed* (deleted, read as a miss, the
caller recompiles), never deserialized or crashed on; concurrent
writers of one digest never produce a torn read.
"""

import json
import threading

import pytest

from repro import obs
from repro.f.syntax import IntE, Lam, FInt, Var
from repro.link import ArtifactStore, default_store_root, \
    stable_fingerprint
from repro.link.store import STORE_VERSION


@pytest.fixture(autouse=True)
def obs_off():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store", maxsize=8)


def digest_of(obj):
    return stable_fingerprint(obj)


PAYLOAD = Lam((("x", FInt()),), Var("x"))


class TestRoundtrip:
    def test_put_get(self, store):
        digest = digest_of(PAYLOAD)
        path = store.put(digest, PAYLOAD, meta={"tier": "arith"})
        assert path.exists() and path == store.path(digest)
        found = store.get(digest)
        assert found is not None
        meta, obj = found
        assert meta == {"tier": "arith"}
        assert obj == PAYLOAD
        assert len(store) == 1

    def test_miss(self, store):
        assert store.get("0" * 64) is None

    def test_kinds_are_disjoint(self, store):
        digest = digest_of(PAYLOAD)
        store.put(digest, PAYLOAD)
        assert store.get(digest, kind="validation") is None
        store.put_validation(digest, {"ok": True})
        assert store.get_validation(digest) == {"ok": True}
        assert store.stats()["artifacts"] == 1
        assert store.stats()["validations"] == 1

    def test_delete_and_clear(self, store):
        digest = digest_of(PAYLOAD)
        store.put(digest, PAYLOAD)
        assert store.delete(digest)
        assert not store.delete(digest)
        store.put(digest, PAYLOAD)
        store.clear()
        assert len(store) == 0

    def test_default_root_honors_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("FUNTAL_STORE", str(tmp_path / "env-store"))
        assert default_store_root() == tmp_path / "env-store"
        assert ArtifactStore().root == tmp_path / "env-store"

    def test_envelope_is_json_with_integrity(self, store):
        digest = digest_of(PAYLOAD)
        envelope = json.loads(store.put(digest, PAYLOAD).read_text())
        assert envelope["version"] == STORE_VERSION
        assert envelope["digest"] == digest
        assert set(envelope) >= {"kind", "meta", "payload", "integrity"}


class TestCorruption:
    """Every flavor of damage reads as a counted miss and self-heals."""

    def _damage_cases(self, path):
        text = path.read_text()
        envelope = json.loads(text)
        flipped = dict(envelope)
        payload = flipped["payload"]
        flipped["payload"] = \
            ("A" if payload[0] != "A" else "B") + payload[1:]
        return {
            "truncated": text[: len(text) // 2],
            "empty": "",
            "not json": "payload: definitely not json {",
            "bit-flipped payload": json.dumps(flipped),
            "wrong digest": json.dumps(dict(envelope, digest="f" * 64)),
            "future version": json.dumps(dict(envelope, version=999)),
        }

    def test_damage_is_detected_and_healed(self, store):
        digest = digest_of(PAYLOAD)
        path = store.put(digest, PAYLOAD)
        for name, damaged in self._damage_cases(path).items():
            store.put(digest, PAYLOAD)          # restore a good copy
            path.write_text(damaged)
            assert store.get(digest) is None, f"case {name!r} not a miss"
            assert not path.exists(), f"case {name!r} not deleted"
            # ... and recovery is just re-putting:
            store.put(digest, PAYLOAD)
            assert store.get(digest) is not None

    def test_corruption_is_counted(self, store):
        digest = digest_of(PAYLOAD)
        path = store.put(digest, PAYLOAD)
        path.write_text(path.read_text()[:40])
        obs.enable(record=False)
        assert store.get(digest) is None
        counters = obs.OBS.metrics.snapshot()["counters"]
        assert counters.get("link.store.corrupt") == 1
        assert counters.get("link.store.miss") == 1

    def test_no_stray_temp_files_after_puts(self, store):
        digest = digest_of(PAYLOAD)
        for _ in range(5):
            store.put(digest, PAYLOAD)
        assert list(store.root.glob("*.tmp")) == []


class TestConcurrency:
    def test_concurrent_same_digest_writers_no_torn_reads(self, tmp_path):
        """N threads hammering put() of one digest while readers poll:
        every successful get returns the one true payload (atomic
        replace means torn envelopes are impossible)."""
        store = ArtifactStore(tmp_path / "store", maxsize=64)
        digest = digest_of(PAYLOAD)
        errors = []

        def writer():
            for _ in range(10):
                store.put(digest, PAYLOAD)

        def reader():
            for _ in range(20):
                found = store.get(digest)
                if found is not None and found[1] != PAYLOAD:
                    errors.append("torn read")

        threads = [threading.Thread(target=writer) for _ in range(4)] \
            + [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        found = store.get(digest)
        assert found is not None and found[1] == PAYLOAD


class TestEviction:
    def test_lru_eviction_beyond_maxsize(self, tmp_path):
        import os
        store = ArtifactStore(tmp_path / "store", maxsize=3)
        digests = [digest_of(("entry", i)) for i in range(4)]
        for i, digest in enumerate(digests[:3]):
            path = store.put(digest, IntE(i))
            os.utime(path, (1000 + i, 1000 + i))    # deterministic ages
        store.put(digests[3], IntE(3))
        assert len(store) == 3
        assert store.get(digests[0]) is None        # stalest is gone
        assert all(store.get(d) is not None for d in digests[1:])

    def test_get_touches_mtime(self, tmp_path):
        import os
        store = ArtifactStore(tmp_path / "store", maxsize=2)
        a, b, c = (digest_of(("touch", i)) for i in range(3))
        pa = store.put(a, IntE(0))
        pb = store.put(b, IntE(1))
        os.utime(pa, (1000, 1000))
        os.utime(pb, (2000, 2000))
        store.get(a)                                # a becomes the MRU
        store.put(c, IntE(2))
        assert store.get(a) is not None
        assert store.get(b) is None

    def test_counters(self, store):
        obs.enable(record=False)
        digest = digest_of(PAYLOAD)
        store.get(digest)
        store.put(digest, PAYLOAD)
        store.get(digest)
        counters = obs.OBS.metrics.snapshot()["counters"]
        assert counters.get("link.store.miss") == 1
        assert counters.get("link.store.put") == 1
        assert counters.get("link.store.hit") == 1

"""Tests for ``funtal build`` / ``funtal link`` and ``compile --store``."""

import json

import pytest

from repro.cli import main

MANIFEST = {
    "components": {
        "double": "lam (x: int). (x + x)",
        "quad": "lam (x: int). double (double x)",
        "fact": {"builtin": "fact-t"},
    },
    "main": "quad (fact 3)",
}


@pytest.fixture
def manifest_file(tmp_path):
    def write(data=None):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(data or MANIFEST))
        return str(path)

    return write


@pytest.fixture
def store_dir(tmp_path):
    return str(tmp_path / "store")


class TestBuild:
    def test_cold_then_warm(self, manifest_file, store_dir, capsys):
        path = manifest_file()
        assert main(["build", path, "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert out.count("compiled") == 3
        assert "handwritten" in out

        assert main(["build", path, "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert out.count("cached") == 3
        assert "compiled" not in out

    def test_json_report(self, manifest_file, store_dir, capsys):
        path = manifest_file()
        assert main(["build", path, "--store", store_dir, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert sorted(data["recompiled"]) == ["double", "fact", "quad"]
        assert data["store"] == store_dir

    def test_validate(self, manifest_file, store_dir, capsys):
        path = manifest_file()
        assert main(["build", path, "--store", store_dir,
                     "--validate"]) == 0
        out = capsys.readouterr().out
        assert out.count("validation: validated") == 2   # not handwritten
        assert main(["build", path, "--store", store_dir,
                     "--validate"]) == 0
        out = capsys.readouterr().out
        assert out.count("validation: cached receipt") == 2

    def test_bad_manifest_exits_1(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("not json {")
        assert main(["build", str(path)]) == 1
        assert "manifest" in capsys.readouterr().err


class TestLink:
    def test_link_and_run(self, manifest_file, store_dir, capsys):
        path = manifest_file()
        assert main(["link", path, "--store", store_dir, "--run"]) == 0
        out = capsys.readouterr().out
        assert "linked 3 component(s) in order: double, fact, quad" in out
        assert "type: int" in out
        assert "value: 24" in out
        assert "labels renamed:" in out

    def test_link_reuses_build_store(self, manifest_file, store_dir,
                                     capsys):
        path = manifest_file()
        assert main(["build", path, "--store", store_dir]) == 0
        capsys.readouterr()
        assert main(["link", path, "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert out.count("cached") == 3

    def test_interface_error_exits_1(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({
            "components": {"a": "lam (x: int). ghost x"},
            "main": "a 1"}))
        assert main(["link", str(path)]) == 1
        assert "ghost" in capsys.readouterr().err


class TestCompileStore:
    def test_store_and_cached_receipt(self, tmp_path, store_dir, capsys):
        src = tmp_path / "dbl.f"
        src.write_text("lam (x: int). (x + x)")
        assert main(["compile", str(src), "--store", store_dir,
                     "--validate"]) == 0
        out = capsys.readouterr().out
        assert "stored:" in out
        assert "translation validation: validated" in out
        assert main(["compile", str(src), "--store", store_dir,
                     "--validate"]) == 0
        out = capsys.readouterr().out
        assert "translation validation: cached receipt" in out

    def test_compile_store_shares_artifacts_with_build(
            self, tmp_path, manifest_file, store_dir, capsys):
        """`funtal compile --store` and `funtal build` address by the
        same content digest, so one seeds the other."""
        src = tmp_path / "dbl.f"
        src.write_text(MANIFEST["components"]["double"])
        assert main(["compile", str(src), "--store", store_dir]) == 0
        capsys.readouterr()
        assert main(["build", manifest_file(), "--store", store_dir]) == 0
        out = capsys.readouterr().out
        # double is already in the store; only quad and fact compile.
        assert "cached    double" in out
        assert out.count("compiled") == 2

"""Unit tests for the tiered whole-F compiler (:mod:`repro.compile`).

ISSUE acceptance pinned here: every closed pure-F paper example and
every pure-F stdlib prelude combinator compiles to a T component whose
wrapped form typechecks in FT at the source type -- plus the pipeline's
own contracts (tier selection, memoization identity, metrics, IR
pretty-printing, wrapper shape).
"""

import pytest

from repro import obs
from repro.errors import CompileError
from repro.f.syntax import (
    App, BinOp, FArrow, FExpr, FInt, Fold, FUnit, If0, IntE, Lam, Proj,
    TupleE, Unfold, UnitE, Var,
)
from repro.f.typecheck import typecheck as f_typecheck
from repro.ft.machine import evaluate_ft
from repro.ft.syntax import Boundary
from repro.ft.typecheck import check_ft_expr
from repro.compile.pipeline import (
    ALL_TIERS, TIER_ARITH, TIER_GENERAL, clear_compile_cache, compile_term,
    eligible_tier, is_general_compilable,
)
from repro.papers_examples import example_entries
from repro.stdlib.prelude import compose, const_, identity, let_, twice
from repro.tal.syntax import Component

INC = Lam((("x", FInt()),), BinOp("+", Var("x"), IntE(1)))
DBL = Lam((("x", FInt()),), BinOp("*", Var("x"), IntE(2)))


def _pure_f(e) -> bool:
    """Is ``e`` built from core-F constructors only (no boundaries, no
    stack lambdas)?  The compiler's domain."""
    if isinstance(e, (IntE, UnitE, Var)):
        return True
    if isinstance(e, BinOp):
        return _pure_f(e.left) and _pure_f(e.right)
    if isinstance(e, If0):
        return all(_pure_f(x) for x in (e.cond, e.then, e.els))
    if isinstance(e, Lam) and type(e) is Lam:
        return _pure_f(e.body)
    if isinstance(e, App):
        return _pure_f(e.fn) and all(_pure_f(a) for a in e.args)
    if isinstance(e, TupleE):
        return all(_pure_f(x) for x in e.items)
    if isinstance(e, Proj):
        return _pure_f(e.body)
    if isinstance(e, Fold):
        return _pure_f(e.body)
    if isinstance(e, Unfold):
        return _pure_f(e.body)
    return False


def _assert_compiles_and_typechecks(source: FExpr) -> None:
    want = f_typecheck(source)
    result = compile_term(source)
    assert isinstance(result.component, Component)
    assert result.block_count() >= 1
    assert result.ty == want
    ty, _ = check_ft_expr(result.wrapped)
    assert ty == want


class TestPaperExamples:
    """Every closed pure-F paper example compiles and typechecks."""

    def _pure_entries(self):
        out = {}
        for name, (_, build) in example_entries().items():
            node = build()
            if not isinstance(node, Component) and _pure_f(node):
                out[name] = node
        return out

    def test_registry_has_pure_f_examples(self):
        pure = self._pure_entries()
        assert "fact-f" in pure and "jit-source" in pure

    @pytest.mark.parametrize("name", ["fact-f", "jit-source"])
    def test_example_compiles(self, name):
        _assert_compiles_and_typechecks(self._pure_entries()[name])

    def test_all_pure_examples_compile(self):
        for name, node in self._pure_entries().items():
            assert is_general_compilable(node), name
            _assert_compiles_and_typechecks(node)

    def test_factorial_runs_compiled(self):
        # Each recursive call through a materialized closure nests an
        # F<->T machine pair on the host stack (see docs/performance.md),
        # so running compiled fact(6) needs headroom over CPython's
        # default recursion limit.
        import sys

        node = self._pure_entries()["fact-f"]
        result = compile_term(node)
        old = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old, 100_000))
        try:
            value, _ = evaluate_ft(result.wrapped)
        finally:
            sys.setrecursionlimit(old)
        assert value == IntE(720)


class TestPreludeCombinators:
    """Every pure-F prelude combinator compiles, typechecks, and agrees
    with the interpreter pointwise.  (``seq_cell`` is excluded: it is a
    StackLam wrapper over a T component, outside the compiler's domain.)
    """

    CASES = [
        ("identity", lambda: identity(FInt())),
        ("const", lambda: const_(FInt(), IntE(7), FUnit())),
        ("compose", lambda: compose(INC, DBL, FInt(), FInt(), FInt())),
        ("twice", lambda: twice(INC, FInt())),
    ]

    @pytest.mark.parametrize("name,build", CASES,
                             ids=[n for n, _ in CASES])
    def test_combinator_compiles(self, name, build):
        _assert_compiles_and_typechecks(build())

    def test_let_compiles(self):
        _assert_compiles_and_typechecks(
            let_("x", FInt(), IntE(3), BinOp("*", Var("x"), Var("x"))))

    def test_compiled_combinators_agree_pointwise(self):
        cases = [
            (App(identity(FInt()), (IntE(4),)), IntE(4)),
            (App(compose(INC, DBL, FInt(), FInt(), FInt()), (IntE(5),)),
             IntE(11)),
            (App(twice(INC, FInt()), (IntE(0),)), IntE(2)),
            (App(const_(FInt(), IntE(7), FUnit()), (UnitE(),)), IntE(7)),
        ]
        for program, want in cases:
            result = compile_term(program)
            got, _ = evaluate_ft(result.wrapped)
            assert got == want, program


class TestTierSelection:
    def test_arith_wins_when_enabled(self):
        assert eligible_tier(INC) == TIER_ARITH
        assert compile_term(INC).tier == TIER_ARITH

    def test_general_reachable_by_forcing(self):
        result = compile_term(INC, tiers=(TIER_GENERAL,))
        assert result.tier == TIER_GENERAL
        got, _ = evaluate_ft(App(result.wrapped, (IntE(41),)))
        assert got == IntE(42)

    def test_general_covers_what_arith_cannot(self):
        ho = Lam((("g", FArrow((FInt(),), FInt())),),
                 App(Var("g"), (IntE(5),)))
        assert eligible_tier(ho) == TIER_GENERAL

    def test_no_tier_for_stack_lambda(self):
        from repro.papers_examples.push7 import build

        assert eligible_tier(build()) is None
        with pytest.raises(CompileError):
            compile_term(build())

    def test_no_tier_for_boundary_terms(self):
        _, build = example_entries()["fact-t"]
        assert eligible_tier(build()) is None

    def test_no_tier_for_open_terms_without_gamma(self):
        assert eligible_tier(Var("y")) is None
        with pytest.raises(CompileError):
            compile_term(BinOp("+", Var("y"), IntE(1)))

    def test_open_term_compiles_under_gamma(self):
        gamma = {"y": FInt()}
        result = compile_term(BinOp("+", Var("y"), IntE(1)), gamma)
        assert result.free == (("y", FInt()),)
        assert result.tier == TIER_GENERAL


class TestPipelineContracts:
    def test_cache_identity(self):
        clear_compile_cache()
        one = compile_term(INC)
        two = compile_term(INC)
        assert two is one

    def test_cache_keys_on_tier_and_optimize(self):
        clear_compile_cache()
        plain = compile_term(INC)
        forced = compile_term(INC, tiers=(TIER_GENERAL,))
        unopt = compile_term(INC, tiers=(TIER_GENERAL,), optimize=False)
        assert forced is not plain
        assert unopt is not forced
        assert len(unopt.component.heap) >= len(forced.component.heap)

    def test_wrapper_shape_lambda(self):
        result = compile_term(INC, tiers=(TIER_GENERAL,))
        assert isinstance(result.wrapped, Lam)
        assert isinstance(result.wrapped.body, App)
        assert isinstance(result.wrapped.body.fn, Boundary)

    def test_wrapper_shape_expression(self):
        result = compile_term(BinOp("+", IntE(1), IntE(2)))
        assert isinstance(result.wrapped, Boundary)
        got, _ = evaluate_ft(result.wrapped)
        assert got == IntE(3)

    def test_pretty_ir(self):
        general = compile_term(INC, tiers=(TIER_GENERAL,))
        assert "code" in general.pretty_ir() or general.clos is not None
        arith = compile_term(INC, tiers=(TIER_ARITH,))
        assert arith.clos is None
        assert "arith" in arith.pretty_ir()

    def test_compile_metrics(self):
        obs.disable()
        obs.reset()
        obs.enable(record=False)
        try:
            clear_compile_cache()
            probe = Lam((("k", FInt()),),
                        App(twice(INC, FInt()), (Var("k"),)))
            compile_term(probe)
            compile_term(probe)     # cache hit: no second compile count
            counters = obs.OBS.metrics.snapshot()["counters"]
            assert counters.get("compile.compile") == 1
            assert counters.get("compile.tier.general") == 1
            assert counters.get("jit.compile") == 1
            assert counters.get("jit.cache.miss", 0) >= 1
            assert counters.get("jit.cache.hit", 0) >= 1
            assert counters.get("compile.blocks", 0) >= 1
        finally:
            obs.disable()
            obs.reset()

    def test_all_tiers_constant(self):
        assert ALL_TIERS == (TIER_ARITH, TIER_GENERAL)

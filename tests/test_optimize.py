"""Tests for the T peephole optimizer: every rewrite preserves typing and
bounded contextual equivalence (the constructive face of Fig 16)."""

import pytest

from repro.equiv.checker import check_equivalence
from repro.f.syntax import App, BinOp, FArrow, FInt, IntE, Lam, Var
from repro.ft.machine import evaluate_ft
from repro.ft.syntax import Boundary, Protect
from repro.ft.translate import continuation_type, type_translation
from repro.ft.typecheck import check_ft_expr
from repro.tal.machine import run_component
from repro.tal.optimize import (
    collapse_stack_traffic, optimize_component, thread_jumps,
)
from repro.tal.syntax import (
    Aop, Component, DeltaBind, Halt, HCode, InstrSeq, Jmp, KIND_EPS,
    KIND_ZETA, Loc, Mv, NIL_STACK, QEnd, QEps, QReg, RegFileTy, RegOp, Ret,
    Salloc, seq, Sfree, Sld, Sst, StackTy, TInt, TyApp, WInt, WLoc,
)
from repro.tal.typecheck import check_program

END_INT = QEnd(TInt(), NIL_STACK)
ARROW = FArrow((FInt(),), FInt())


class TestCollapseStackTraffic:
    def test_push_pop_becomes_move(self):
        iseq = seq(
            Mv("r1", WInt(5)),
            Salloc(1), Sst(0, "r1"), Sld("r2", 0), Sfree(1),
            Halt(TInt(), NIL_STACK, "r2"))
        out = collapse_stack_traffic(iseq)
        assert out.instrs == (Mv("r1", WInt(5)), Mv("r2", RegOp("r1")))

    def test_salloc_sfree_pair_removed(self):
        iseq = seq(Mv("r1", WInt(1)), Salloc(3), Sfree(3),
                   Halt(TInt(), NIL_STACK, "r1"))
        out = collapse_stack_traffic(iseq)
        assert out.instrs == (Mv("r1", WInt(1)),)

    def test_self_move_removed(self):
        iseq = seq(Mv("r1", WInt(1)), Mv("r1", RegOp("r1")),
                   Halt(TInt(), NIL_STACK, "r1"))
        out = collapse_stack_traffic(iseq)
        assert out.instrs == (Mv("r1", WInt(1)),)

    def test_unrelated_instructions_untouched(self):
        iseq = seq(Mv("r1", WInt(1)), Salloc(1), Sst(0, "r1"),
                   Halt(TInt(), StackTy((TInt(),), None), "r1"))
        assert collapse_stack_traffic(iseq) == iseq

    def test_mismatched_alloc_free_untouched(self):
        iseq = seq(Salloc(2), Sfree(1), Mv("r1", WInt(1)),
                   Halt(TInt(), StackTy((TInt(),), None), "r1"))
        out = collapse_stack_traffic(iseq)
        # wait: salloc 2 / sfree 1 leaves one unit slot; untouched
        assert out.instrs[0] == Salloc(2)

    def test_optimized_program_still_typechecks_and_runs(self):
        comp = Component(seq(
            Mv("r1", WInt(5)),
            Salloc(1), Sst(0, "r1"), Sld("r2", 0), Sfree(1),
            Aop("add", "r1", "r2", RegOp("r2")),
            Halt(TInt(), NIL_STACK, "r1")))
        optimized = optimize_component(comp)
        assert check_program(optimized, TInt())[0] == TInt()
        before, _ = run_component(comp)
        after, _ = run_component(optimized)
        assert before.word == after.word == WInt(10)

    def test_marker_move_window_collapses_correctly(self):
        """The push/pop window over the *marker register* becomes the
        marker-moving mv; the optimized block still typechecks."""
        zeps = (DeltaBind(KIND_ZETA, "z"), DeltaBind(KIND_EPS, "e"))
        cont = continuation_type(TInt(), StackTy((), "z"))
        block = HCode(
            zeps, RegFileTy.of(ra=cont, r1=TInt()), StackTy((), "z"),
            QReg("ra"),
            seq(Salloc(1), Sst(0, "ra"), Sld("r3", 0), Sfree(1),
                Ret("r3", "r1")))
        optimized_body = collapse_stack_traffic(block.instrs)
        assert optimized_body.instrs == (Mv("r3", RegOp("ra")),)
        from repro.ft.typecheck import FTTypechecker

        FTTypechecker().check_heap_value(
            HCode(block.delta, block.chi, block.sigma, block.q,
                  optimized_body))


class TestThreadJumps:
    def _trampoline_program(self):
        real = Loc("real")
        tramp = Loc("tramp")
        real_block = HCode((), RegFileTy.of(r1=TInt()), NIL_STACK, END_INT,
                           seq(Halt(TInt(), NIL_STACK, "r1")))
        tramp_block = HCode((), RegFileTy.of(r1=TInt()), NIL_STACK,
                            END_INT, seq(Jmp(WLoc(real))))
        return Component(
            seq(Mv("r1", WInt(3)), Jmp(WLoc(tramp))),
            ((real, real_block), (tramp, tramp_block)))

    def test_trampoline_removed(self):
        comp = self._trampoline_program()
        out = thread_jumps(comp)
        assert len(out.heap) == 1
        assert check_program(out, TInt())[0] == TInt()
        halted, _ = run_component(out)
        assert halted.word == WInt(3)

    def test_polymorphic_trampoline_removed(self):
        zeps = (DeltaBind(KIND_ZETA, "z"), DeltaBind(KIND_EPS, "e"))
        cont = continuation_type(TInt(), StackTy((), "z"))
        real, tramp = Loc("real"), Loc("tramp")
        real_block = HCode(
            zeps, RegFileTy.of(r1=TInt(), ra=cont), StackTy((), "z"),
            QReg("ra"), seq(Ret("ra", "r1")))
        tramp_block = HCode(
            zeps, RegFileTy.of(r1=TInt(), ra=cont), StackTy((), "z"),
            QReg("ra"),
            seq(Jmp(TyApp(WLoc(real), (StackTy((), "z"), QEps("e"))))))
        comp = Component(seq(Mv("r1", WInt(1)),
                             Halt(TInt(), NIL_STACK, "r1")),
                         ((real, real_block), (tramp, tramp_block)))
        out = thread_jumps(comp)
        assert [loc.name for loc, _ in out.heap] == ["real"]

    def test_non_identity_instantiation_kept(self):
        # a trampoline that *specializes* its target must not be removed
        zeps = (DeltaBind(KIND_ZETA, "z"), DeltaBind(KIND_EPS, "e"))
        cont = continuation_type(TInt(), StackTy((), "z"))
        real, tramp = Loc("real"), Loc("tramp")
        real_block = HCode(
            zeps, RegFileTy.of(r1=TInt(), ra=cont), StackTy((), "z"),
            QReg("ra"), seq(Ret("ra", "r1")))
        tramp_block = HCode(
            (), RegFileTy.of(r1=TInt()), NIL_STACK, END_INT,
            seq(Jmp(TyApp(WLoc(real),
                          (NIL_STACK, QEnd(TInt(), NIL_STACK))))))
        comp = Component(seq(Mv("r1", WInt(1)),
                             Halt(TInt(), NIL_STACK, "r1")),
                         ((real, real_block), (tramp, tramp_block)))
        out = thread_jumps(comp)
        assert len(out.heap) == 2

    def test_cycle_of_trampolines_left_alone(self):
        a, b = Loc("a"), Loc("b")
        block_a = HCode((), RegFileTy(), NIL_STACK, END_INT,
                        seq(Jmp(WLoc(b))))
        block_b = HCode((), RegFileTy(), NIL_STACK, END_INT,
                        seq(Jmp(WLoc(a))))
        comp = Component(seq(Jmp(WLoc(a))),
                         ((a, block_a), (b, block_b)))
        out = thread_jumps(comp)
        assert len(out.heap) == 2


class TestEquivalencePreservation:
    def test_fig16_style_program(self):
        """Optimizing the two-block Fig 16 variant: the intermediate
        sst/sld traffic collapses, and the result stays equivalent."""
        from repro.papers_examples.fig16_two_blocks import build_f2

        f2 = build_f2()
        comp = f2.body.fn.comp
        optimized = optimize_component(comp)
        f2_opt = Lam(f2.params,
                     App(Boundary(ARROW, optimized), (Var("x"),)))
        assert str(check_ft_expr(f2_opt)[0]) == "(int) -> int"
        report = check_equivalence(f2, f2_opt, ARROW, fuel=20_000,
                                   max_contexts=8)
        assert report.equivalent

    def test_compiled_code_shrinks_and_stays_equivalent(self):
        """The JIT's naive push/pop code is exactly what the optimizer
        targets; optimized compiled code stays equivalent to the source."""
        from repro.jit.compiler import compile_function

        source = Lam((("x", FInt()),),
                     BinOp("+", BinOp("*", Var("x"), IntE(2)), IntE(1)))
        compiled = compile_function(source)
        comp = compiled.body.fn.comp
        optimized = optimize_component(comp)
        before = sum(len(h.instrs.instrs) for _, h in comp.heap)
        after = sum(len(h.instrs.instrs) for _, h in optimized.heap)
        assert after < before
        comp_opt = Lam(compiled.params,
                       App(Boundary(ARROW, optimized), (Var("x"),)))
        report = check_equivalence(source, comp_opt, ARROW, fuel=20_000,
                                   max_contexts=8)
        assert report.equivalent

"""Tests for the crash-isolated worker pool.

The headline scenarios (ISSUE acceptance): a worker killed mid-job is
reaped and respawned, the job is retried, and the pool keeps serving; a
hung job hits its wall-clock deadline without taking the pool down.
"""

import time

import pytest

from repro.serve.cache import ResultCache
from repro.serve.pool import PoolClosed, QueueFull, WorkerPool
from repro.serve.protocol import Job, JobOptions


@pytest.fixture(scope="module")
def pool():
    """One shared 2-worker pool; fault tests verify it survives faults,
    so sharing is not just economy but part of the point."""
    with WorkerPool(2, max_retries=2, default_timeout=20.0,
                    retry_backoff=0.01) as p:
        yield p


def run_job(source, **opts):
    return Job("run", source=source, options=JobOptions(**opts))


class TestBasics:
    def test_single_job(self, pool):
        result = pool.submit(run_job("(2 + 3)")).wait(30.0)
        assert result is not None and result.ok
        assert result.output["value"] == "5"
        assert result.attempts == 1

    def test_batch_preserves_order(self, pool):
        jobs = [Job("run", id=f"j{i}", source=f"({i} + 0)")
                for i in range(24)]
        results = pool.run_batch(jobs, timeout=60.0)
        assert [r.id for r in results] == [f"j{i}" for i in range(24)]
        assert all(r.ok for r in results)
        assert [r.output["value"] for r in results] == \
            [str(i) for i in range(24)]

    def test_program_error_is_a_result_not_a_fault(self, pool):
        result = pool.submit(Job("typecheck", source="(1 + ())")).wait(30.0)
        assert result.status == "error"
        assert result.attempts == 1        # no retries for semantic errors

    def test_fuel_exhaustion_travels_through_the_pool(self, pool):
        spin = "(jmp spin, {spin -> code[]{.; nil} end{int; nil}. jmp spin})"
        result = pool.submit(run_job(spin, fuel=500)).wait(30.0)
        assert result.status == "fuel_exhausted"
        assert result.output["fuel"] == 500

    def test_stats_shape(self, pool):
        stats = pool.stats()
        assert stats["workers"] == 2
        assert stats["cache"] is None


class TestFaultIsolation:
    def test_crash_is_retried_then_reported_and_pool_survives(self, pool):
        # The injected crash os._exit()s the worker on every attempt:
        # initial + max_retries dispatches, then a terminal report.
        result = pool.submit(run_job("(1 + 1)", inject_crash=True)).wait(60.0)
        assert result is not None
        assert result.status == "crashed"
        assert result.attempts == 3        # 1 + max_retries
        assert "retry budget" in result.error
        # the pool respawned its workers and keeps serving
        after = pool.submit(run_job("(40 + 2)")).wait(30.0)
        assert after is not None and after.ok
        assert after.output["value"] == "42"
        assert pool.stats()["workers"] == 2

    def test_crash_mid_batch_blames_only_the_culprit(self, pool):
        jobs = [Job("run", id=f"g{i}", source=f"({i} * 2)")
                for i in range(10)]
        jobs.insert(5, Job("run", id="boom", source="(0 + 0)",
                           options=JobOptions(inject_crash=True)))
        results = {r.id: r for r in pool.run_batch(jobs, timeout=90.0)}
        assert results["boom"].status == "crashed"
        for i in range(10):
            assert results[f"g{i}"].ok, results[f"g{i}"]
            # chunk-mates requeued after a crash never burn retry budget
            assert results[f"g{i}"].attempts == 1

    def test_hang_hits_the_deadline(self, pool):
        result = pool.submit(run_job("(1 + 1)", inject_sleep=30.0,
                                     timeout=0.3)).wait(90.0)
        assert result is not None
        assert result.status == "timeout"
        assert result.attempts == 3
        assert "wall-clock" in result.error
        after = pool.submit(run_job("(2 + 2)")).wait(30.0)
        assert after is not None and after.ok


class TestCacheIntegration:
    def test_second_submission_is_served_cached(self):
        cache = ResultCache(64)
        with WorkerPool(1, cache=cache) as pool:
            first = pool.submit(run_job("(6 * 7)")).wait(30.0)
            assert first.ok and not first.cached
            ticket = pool.submit(run_job("(6 * 7)"))
            assert ticket.done                 # resolved synchronously
            hit = ticket.result
            assert hit.cached and hit.output == first.output

    def test_resubmitted_batch_is_mostly_cache_served(self):
        cache = ResultCache(256)
        jobs = [Job("run", id=f"c{i}", source=f"({i} + 1)")
                for i in range(20)]
        with WorkerPool(2, cache=cache) as pool:
            cold = pool.run_batch(jobs, timeout=60.0)
            assert all(r.ok for r in cold)
            warm = pool.run_batch(jobs, timeout=60.0)
            served = sum(1 for r in warm if r.cached)
            # ISSUE acceptance: >= 90% of a resubmitted batch from cache.
            assert served >= 0.9 * len(jobs)

    def test_failures_are_never_cached(self):
        cache = ResultCache(64)
        with WorkerPool(1, cache=cache, max_retries=0,
                        retry_backoff=0.01) as pool:
            bad = pool.submit(run_job("(9 + 9)", inject_crash=True,
                                      no_cache=False)).wait(60.0)
            assert bad.status == "crashed"
            again = pool.submit(run_job("(9 + 9)")).wait(30.0)
            assert again.ok and not again.cached


class TestBackpressureAndLifecycle:
    def test_queue_full_raises_when_nonblocking(self):
        # One worker stuck sleeping; a tiny queue behind it fills up.
        with WorkerPool(1, queue_size=2, default_timeout=20.0) as pool:
            blocker = pool.submit(run_job("(0 + 0)", inject_sleep=1.0))
            deadline = time.monotonic() + 5.0
            while pool.stats()["queued"] and time.monotonic() < deadline:
                time.sleep(0.01)           # let the worker pick it up
            queued = [pool.submit(run_job(f"({i} + 0)"), block=False)
                      for i in range(2)]
            with pytest.raises(QueueFull):
                pool.submit(run_job("(99 + 0)"), block=False)
            assert blocker.wait(30.0) is not None
            for t in queued:
                assert t.wait(30.0) is not None

    def test_submit_after_close_raises(self):
        pool = WorkerPool(1)
        pool.close()
        with pytest.raises(PoolClosed):
            pool.submit(run_job("(1 + 1)"))

    def test_close_drains_inflight_jobs(self):
        pool = WorkerPool(1)
        tickets = [pool.submit(run_job(f"({i} + 2)")) for i in range(6)]
        pool.close()                       # drain=True by default
        assert all(t.done for t in tickets)
        assert all(t.result.ok for t in tickets)

    def test_ticket_callback_fires(self, pool):
        seen = []
        ticket = pool.submit(run_job("(5 + 5)"))
        ticket.add_done_callback(seen.append)
        result = ticket.wait(30.0)
        assert seen == [result]
        # late registration fires immediately
        late = []
        ticket.add_done_callback(late.append)
        assert late == [result]

"""Remaining corners: error formatting, operand resolution chains,
FT threading through fold/tuple forms, and the prelude under FT typing."""

import pytest

from repro.errors import (
    FTTypeError, FuelExhausted, FunTALError, MachineError, ParseError,
)
from repro.f.syntax import (
    App, BinOp, FArrow, FInt, Fold, FRec, FTupleT, FUnit, IntE, Lam, Proj,
    TupleE, Unfold, UnitE, Var,
)
from repro.ft.machine import evaluate_ft, FTMachine
from repro.ft.syntax import Boundary, Protect
from repro.ft.typecheck import check_ft_expr
from repro.tal.machine import TalMachine
from repro.tal.syntax import (
    Component, Fold as TFold, Halt, Loc, Mv, NIL_STACK, Pack, QEnd,
    RegOp, Salloc, seq, Sst, StackTy, TExists, TInt, TRec, TVar, TyApp,
    WInt, WLoc,
)


class TestErrorHierarchy:
    def test_all_errors_are_funtal_errors(self):
        for cls in (FTTypeError, MachineError, ParseError, FuelExhausted):
            assert issubclass(cls, FunTALError)

    def test_type_error_carries_judgment_and_subject(self):
        err = FTTypeError("boom", judgment="tal.instruction",
                          subject="mv r1, 2")
        text = str(err)
        assert "boom" in text
        assert "tal.instruction" in text
        assert "mv r1, 2" in text

    def test_fuel_exhausted_reports_budget(self):
        assert "1234" in str(FuelExhausted(1234))

    def test_parse_error_location_optional(self):
        assert "at" not in str(ParseError("bad"))
        assert "3:7" in str(ParseError("bad", 3, 7))


class TestOperandResolution:
    def test_tyapp_chain_accumulates_in_order(self):
        machine = TalMachine()
        loc = Loc("l")
        machine.memory.set_reg(
            "r1", TyApp(WLoc(loc), (TInt(),)))
        target, omegas = machine.resolve_code_target(
            TyApp(RegOp("r1"), (NIL_STACK,)))
        assert target == loc
        assert omegas == (TInt(), NIL_STACK)  # inner first

    def test_pack_resolution_reads_registers(self):
        machine = TalMachine()
        machine.memory.set_reg("r1", WInt(9))
        ex = TExists("a", TVar("a"))
        resolved = machine.resolve(Pack(TInt(), RegOp("r1"), ex))
        assert resolved == Pack(TInt(), WInt(9), ex)

    def test_fold_resolution(self):
        machine = TalMachine()
        machine.memory.set_reg("r1", WInt(9))
        mu = TRec("a", TInt())
        assert machine.resolve(TFold(mu, RegOp("r1"))) == \
            TFold(mu, WInt(9))

    def test_resolve_int_rejects_non_int(self):
        machine = TalMachine()
        with pytest.raises(MachineError, match="integer"):
            machine.resolve_int(WLoc(Loc("l")))


class TestFTThreadingThroughDataForms:
    def _push_boundary(self):
        comp = Component(seq(
            Protect((), "z"),
            Mv("r1", WInt(7)),
            Salloc(1),
            Sst(0, "r1"),
            Mv("r1", WInt(7)),
            Halt(TInt(), StackTy((TInt(),), "z"), "r1")))
        from repro.ft.syntax import StackDelta

        return Boundary(FInt(), comp, StackDelta(pushes=(TInt(),)))

    def test_fold_body_threads_stack(self):
        mu = FRec("a", FInt())
        e = Fold(mu, self._push_boundary())
        ty, sigma = check_ft_expr(e)
        assert ty == mu
        assert sigma == StackTy((TInt(),), None)

    def test_unfold_threads(self):
        mu = FRec("a", FInt())
        e = Unfold(Fold(mu, self._push_boundary()))
        ty, sigma = check_ft_expr(e)
        assert ty == FInt()
        assert sigma.depth == 1

    def test_proj_threads(self):
        e = Proj(0, TupleE((self._push_boundary(), IntE(1))))
        ty, sigma = check_ft_expr(e)
        assert ty == FInt() and sigma.depth == 1

    def test_runtime_agrees_with_typing(self):
        e = Proj(0, TupleE((self._push_boundary(), IntE(1))))
        value, machine = evaluate_ft(e)
        assert value == IntE(7)
        assert machine.memory.depth == 1


class TestMachineMiscellany:
    def test_steps_counted(self):
        _, machine = evaluate_ft(BinOp("+", IntE(1), IntE(2)))
        assert machine.steps >= 1

    def test_fresh_memory_per_run(self):
        m1 = FTMachine()
        m2 = FTMachine()
        m1.memory.set_reg("r1", WInt(1))
        assert "r1" not in m2.memory.regs

    def test_trace_disabled_by_default(self):
        _, machine = evaluate_ft(BinOp("+", IntE(1), IntE(2)))
        assert machine.trace == []

    def test_memory_str_is_printable(self):
        machine = FTMachine()
        machine.memory.set_reg("r1", WInt(1))
        machine.memory.push(WInt(2))
        text = str(machine.memory)
        assert "r1" in text and "2" in text


class TestGammaScoping:
    def test_shadowing_restores_outer_binding(self):
        inner = Lam((("x", FUnit()),), Var("x"))
        outer = Lam((("x", FInt()),),
                    BinOp("+", Var("x"),
                          App(Lam((("u", FUnit()),), IntE(0)),
                              (App(inner, (UnitE(),)),))))
        ty, _ = check_ft_expr(outer)
        assert str(ty) == "(int) -> int"

    def test_gamma_not_leaked_between_checks(self):
        from repro.ft.typecheck import FTTypechecker
        from repro.tal.syntax import RegFileTy

        checker = FTTypechecker()
        lam = Lam((("x", FInt()),), Var("x"))
        checker.check_fexpr((), RegFileTy(), NIL_STACK, lam)
        with pytest.raises(FTTypeError, match="unbound"):
            checker.check_fexpr((), RegFileTy(), NIL_STACK, Var("x"))

"""Tests for the ``funtal compile`` subcommand."""

import pytest

from repro.cli import main


@pytest.fixture
def program_file(tmp_path):
    def write(source):
        path = tmp_path / "prog.ft"
        path.write_text(source)
        return str(path)

    return write


class TestCompile:
    def test_arith_lambda(self, program_file, capsys):
        path = program_file("lam (x: int). (x + 1)")
        assert main(["compile", path]) == 0
        out = capsys.readouterr().out
        assert "tier: arith" in out
        assert "type: (int) -> int" in out
        assert "ret ra" in out

    def test_higher_order_goes_general(self, program_file, capsys):
        path = program_file(
            "lam (g: (int) -> int). (g (5))")
        assert main(["compile", path]) == 0
        out = capsys.readouterr().out
        assert "tier: general" in out
        assert "blocks:" in out

    def test_forced_tier_and_ir(self, program_file, capsys):
        path = program_file("lam (x: int). (x + 1)")
        assert main(["compile", path, "--tier", "general", "--ir"]) == 0
        out = capsys.readouterr().out
        assert "tier: general" in out
        assert "closure IR:" in out

    def test_example_run_and_validate(self, capsys):
        assert main(["compile", "fact-f", "--run", "--validate"]) == 0
        out = capsys.readouterr().out
        assert "tier: general" in out
        assert "translation validation: validated" in out
        assert "value: 720" in out

    def test_run_with_apply(self, program_file, capsys):
        path = program_file("lam (x: int). (x * 3)")
        assert main(["compile", path, "--run", "--apply", "14"]) == 0
        assert "value: 42" in capsys.readouterr().out

    def test_run_function_without_apply_is_usage_error(
            self, program_file, capsys):
        path = program_file("lam (x: int). (x * 3)")
        assert main(["compile", path, "--run"]) == 2
        assert "--apply" in capsys.readouterr().err

    def test_component_rejected(self, program_file, capsys):
        path = program_file("(mv r1, 1; halt int, nil {r1}, .)")
        assert main(["compile", path]) == 2
        assert "F term" in capsys.readouterr().err

    def test_ineligible_term_fails_cleanly(self, capsys):
        # fact-t wraps a T component in boundaries: outside every tier
        assert main(["compile", "fact-t"]) == 1
        err = capsys.readouterr().err
        assert "no enabled tier" in err

    def test_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("((1 + 2) * 7)"))
        assert main(["compile", "-", "--run"]) == 0
        out = capsys.readouterr().out
        assert "value: 21" in out

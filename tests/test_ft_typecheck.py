"""Unit tests for the FT multi-language type system (paper Fig 7):
stack threading through F, boundaries, import, protect, stack lambdas."""

import pytest

from repro.errors import FTTypeError
from repro.f.syntax import (
    App, BinOp, FArrow, FInt, Fold, FRec, FTupleT, FTVar, FUnit, If0, IntE,
    Lam, Proj, TupleE, Unfold, UnitE, Var,
)
from repro.ft.syntax import (
    Boundary, FStackArrow, Import, Protect, StackDelta, StackLam,
)
from repro.ft.translate import type_translation
from repro.ft.typecheck import check_ft_component, check_ft_expr, FTTypechecker
from repro.papers_examples import (
    fig11_jit, fig16_two_blocks, fig17_factorial, import_example, push7,
)
from repro.tal.syntax import (
    Component, DeltaBind, Halt, KIND_ZETA, Mv, NIL_STACK, QEnd, QIdx, QReg,
    RegFileTy, Salloc, seq, Sfree, Sst, StackTy, TInt, TUnit, WInt, WUnit,
)
from repro.tal.typecheck import InstrState


class TestFRulesThreading:
    def test_pure_forms_preserve_stack(self):
        sigma = StackTy((TInt(),), None)
        ty, out = check_ft_expr(BinOp("+", IntE(1), IntE(2)), sigma=sigma)
        assert ty == FInt() and out == sigma

    def test_if0_branches_must_leave_equal_stacks(self):
        # then-branch pushes via a boundary, else-branch does not
        push = Boundary(FUnit(), _push_component(),
                        StackDelta(pushes=(TInt(),)))
        e = If0(IntE(0), push, UnitE())
        with pytest.raises(FTTypeError, match="stacks"):
            check_ft_expr(e)

    def test_if0_with_matching_effects_ok(self):
        push = Boundary(FUnit(), _push_component(),
                        StackDelta(pushes=(TInt(),)))
        e = If0(IntE(0), push, push)
        ty, out = check_ft_expr(e)
        assert ty == FUnit() and out == StackTy((TInt(),), None)

    def test_tuple_threads_left_to_right(self):
        push = Boundary(FUnit(), _push_component(),
                        StackDelta(pushes=(TInt(),)))
        ty, out = check_ft_expr(TupleE((push, push)))
        assert out == StackTy((TInt(), TInt()), None)

    def test_unbound_variable(self):
        with pytest.raises(FTTypeError, match="unbound"):
            check_ft_expr(Var("x"))

    def test_gamma_env(self):
        ty, _ = check_ft_expr(Var("x"), gamma={"x": FInt()})
        assert ty == FInt()


class TestLambdas:
    def test_plain_lambda_body_gets_fresh_abstract_stack(self):
        # the body cannot read the caller's concrete stack
        lam = Lam((("x", FInt()),), Var("x"))
        ty, out = check_ft_expr(lam, sigma=StackTy((TInt(),), None))
        assert ty == FArrow((FInt(),), FInt())
        assert out == StackTy((TInt(),), None)  # the lambda itself is pure

    def test_plain_lambda_body_must_restore_stack(self):
        ill = push7.build_ill_typed()
        with pytest.raises(FTTypeError, match="promises"):
            check_ft_expr(ill)

    def test_push7_stack_lambda_ok(self):
        lam = push7.build()
        ty, _ = check_ft_expr(lam)
        assert isinstance(ty, FStackArrow)
        assert ty.phi_out == (TInt(),)

    def test_stack_lambda_application_consumes_prefix(self):
        lam = push7.build()
        app = App(lam, (IntE(1),))
        ty, out = check_ft_expr(app)
        assert ty == FUnit()
        assert out == StackTy((TInt(),), None)

    def test_stack_arrow_application_requires_prefix(self):
        # a consumer requiring int:: on the stack, applied on empty stack
        consumer = StackLam((("u", FUnit()),), UnitE(),
                            phi_in=(TInt(),), phi_out=(TInt(),))
        # its *body* is fine (pure), but applying it on nil must fail
        with pytest.raises(FTTypeError, match="prefix"):
            check_ft_expr(App(consumer, (UnitE(),)))

    def test_duplicate_params_rejected(self):
        with pytest.raises(FTTypeError, match="duplicate"):
            check_ft_expr(Lam((("x", FInt()), ("x", FInt())), Var("x")))


class TestBoundary:
    def test_import_example_component(self):
        comp = import_example.build()
        ty, sigma = check_ft_component(comp, q=import_example.MARKER)
        assert ty == TInt() and sigma == NIL_STACK

    def test_boundary_infers_f_type(self):
        comp = import_example.build()
        ty, _ = check_ft_expr(Boundary(FInt(), comp))
        assert ty == FInt()

    def test_boundary_wrong_annotation_rejected(self):
        comp = import_example.build()
        with pytest.raises(FTTypeError):
            check_ft_expr(Boundary(FUnit(), comp))

    def test_boundary_pops_beyond_stack_rejected(self):
        comp = import_example.build()
        with pytest.raises(FTTypeError, match="pops"):
            check_ft_expr(Boundary(FInt(), comp, StackDelta(pops=1)))

    def test_boundary_checks_component_with_empty_chi(self):
        # a component reading a register must fail even if the enclosing
        # context has it typed
        comp = Component(seq(Halt(TInt(), NIL_STACK, "r1")))
        with pytest.raises(FTTypeError):
            check_ft_expr(Boundary(FInt(), comp),
                          chi=RegFileTy.of(r1=TInt()))


class TestImportRule:
    def test_marker_must_be_protected(self):
        # marker in a register: import must be rejected
        from repro.ft.translate import continuation_type

        cont = continuation_type(TInt(), StackTy((), "z"))
        checker = FTTypechecker()
        st = InstrState((DeltaBind(KIND_ZETA, "z"),
                         DeltaBind("eps", "e")),
                        RegFileTy.of(ra=cont), StackTy((), "z"), QReg("ra"))
        instr = Import("r1", StackTy((), "z"), FInt(), IntE(1))
        with pytest.raises(FTTypeError, match="clobber"):
            checker.step_instruction(st, instr)

    def test_import_wipes_registers(self):
        checker = FTTypechecker()
        st = InstrState((), RegFileTy.of(r5=TUnit()), NIL_STACK,
                        QEnd(TInt(), NIL_STACK))
        out = checker.step_instruction(
            st, Import("r1", NIL_STACK, FInt(), IntE(1)))
        assert out.chi.registers() == ("r1",)
        assert out.chi.get("r1") == TInt()

    def test_import_type_annotation_checked(self):
        checker = FTTypechecker()
        st = InstrState((), RegFileTy(), NIL_STACK, QEnd(TInt(), NIL_STACK))
        with pytest.raises(FTTypeError, match="annotation"):
            checker.step_instruction(
                st, Import("r1", NIL_STACK, FUnit(), IntE(1)))

    def test_import_shifts_index_marker(self):
        from repro.ft.translate import continuation_type

        cont_ty = continuation_type(TInt(), StackTy((), "z"))
        boxed = cont_ty
        checker = FTTypechecker()
        delta = (DeltaBind(KIND_ZETA, "z"), DeltaBind("eps", "e"))
        # stack: int :: cont :: z ; marker at 1 (inside the protected tail)
        sigma = StackTy((TInt(), boxed), "z")
        st = InstrState(delta, RegFileTy(), sigma, QIdx(1))
        # protect cont :: z ; the front is the single int
        push_one = push7.build()
        e = App(push_one, (IntE(3),))  # pushes one int inside
        instr = Import("r1", StackTy((boxed,), "z"), FUnit(), e)
        out = checker.step_instruction(st, instr)
        # front grew from 1 to 2 -> marker moves from 1 to 2
        assert out.q == QIdx(2)
        assert out.sigma == StackTy((TInt(), TInt(), boxed), "z")

    def test_import_protected_tail_must_match(self):
        checker = FTTypechecker()
        st = InstrState((), RegFileTy(), NIL_STACK, QEnd(TInt(), NIL_STACK))
        with pytest.raises(FTTypeError, match="tail"):
            checker.step_instruction(
                st, Import("r1", StackTy((TInt(),), None), FInt(), IntE(1)))


class TestProtectRule:
    def _state(self, sigma, q, delta=()):
        return InstrState(delta, RegFileTy(), sigma, q)

    def test_abstracts_tail(self):
        checker = FTTypechecker()
        st = self._state(StackTy((TInt(), TUnit()), None),
                         QEnd(TInt(), StackTy((TInt(), TUnit()), None)))
        out = checker.step_instruction(st, Protect((TInt(),), "z"))
        assert out.sigma == StackTy((TInt(),), "z")
        assert out.delta[-1] == DeltaBind(KIND_ZETA, "z")
        # the end marker's stack is re-expressed over z
        assert out.q == QEnd(TInt(), StackTy((TInt(),), "z"))

    def test_prefix_mismatch_rejected(self):
        checker = FTTypechecker()
        st = self._state(StackTy((TUnit(),), None),
                         QEnd(TInt(), NIL_STACK))
        with pytest.raises(FTTypeError, match="declared"):
            checker.step_instruction(st, Protect((TInt(),), "z"))

    def test_cannot_hide_marker_slot(self):
        from repro.ft.translate import continuation_type

        cont_ty = continuation_type(TInt(), StackTy((), "w"))
        checker = FTTypechecker()
        st = self._state(StackTy((cont_ty,), "w"), QIdx(0),
                         delta=(DeltaBind(KIND_ZETA, "w"),
                                DeltaBind("eps", "e")))
        with pytest.raises(FTTypeError, match="hide"):
            checker.step_instruction(st, Protect((), "z"))

    def test_shadowing_binder_rejected(self):
        checker = FTTypechecker()
        st = self._state(StackTy((), "z"), QEnd(TInt(), StackTy((), "z")),
                         delta=(DeltaBind(KIND_ZETA, "z"),))
        with pytest.raises(FTTypeError, match="shadows"):
            checker.step_instruction(st, Protect((), "z"))

    def test_marker_stack_must_end_in_hidden_tail(self):
        checker = FTTypechecker()
        # marker promises a stack unrelated to what protect hides
        st = self._state(StackTy((TInt(),), None),
                         QEnd(TInt(), StackTy((), "w")),
                         delta=(DeltaBind(KIND_ZETA, "w"),))
        with pytest.raises(FTTypeError, match="tail"):
            checker.step_instruction(st, Protect((TInt(),), "z"))


class TestPaperExpressions:
    @pytest.mark.parametrize("build,expected", [
        (fig16_two_blocks.build_f1, "(int) -> int"),
        (fig16_two_blocks.build_f2, "(int) -> int"),
        (fig17_factorial.build_fact_f, "(int) -> int"),
        (fig17_factorial.build_fact_t, "(int) -> int"),
    ])
    def test_paper_lambdas(self, build, expected):
        ty, _ = check_ft_expr(build())
        assert str(ty) == expected

    def test_jit_program(self):
        ty, sigma = check_ft_expr(fig11_jit.build_jit())
        assert ty == FInt() and sigma == NIL_STACK

    def test_jit_source_under_ft_judgment(self):
        ty, _ = check_ft_expr(fig11_jit.build_source())
        assert ty == FInt()


def _push_component() -> Component:
    """A stack-polymorphic push-7 component (usable on any stack)."""
    return Component(seq(
        Protect((), "z"),
        Mv("r1", WInt(7)),
        Salloc(1),
        Sst(0, "r1"),
        Mv("r1", WUnit()),
        Halt(TUnit(), StackTy((TInt(),), "z"), "r1"),
    ))

"""Tests for the stdlib: the mutable-cell library and the prelude."""

import pytest

from repro.errors import FTTypeError
from repro.f.syntax import (
    App, BinOp, FArrow, FInt, FUnit, IntE, UnitE, Var,
)
from repro.ft.machine import evaluate_ft, FTMachine
from repro.ft.syntax import FStackArrow
from repro.ft.typecheck import check_ft_expr
from repro.stdlib.prelude import compose, const_, identity, let_, seq_cell, twice
from repro.stdlib.refs import alloc_cell, free_cell, read_cell, write_cell
from repro.tal.syntax import NIL_STACK, StackTy, TInt, WInt

INT_CELL = (TInt(),)


class TestPrelude:
    def test_identity(self):
        value, _ = evaluate_ft(App(identity(FInt()), (IntE(4),)))
        assert value == IntE(4)

    def test_const(self):
        k = const_(FInt(), IntE(9), FUnit())
        value, _ = evaluate_ft(App(k, (UnitE(),)))
        assert value == IntE(9)

    def test_compose(self):
        from repro.f.syntax import Lam

        inc = Lam((("x", FInt()),), BinOp("+", Var("x"), IntE(1)))
        dbl = Lam((("x", FInt()),), BinOp("*", Var("x"), IntE(2)))
        f = compose(inc, dbl, FInt(), FInt(), FInt())
        value, _ = evaluate_ft(App(f, (IntE(5),)))
        assert value == IntE(11)

    def test_twice(self):
        from repro.f.syntax import Lam

        inc = Lam((("x", FInt()),), BinOp("+", Var("x"), IntE(1)))
        value, _ = evaluate_ft(App(twice(inc, FInt()), (IntE(0),)))
        assert value == IntE(2)

    def test_let(self):
        e = let_("x", FInt(), IntE(3), BinOp("*", Var("x"), Var("x")))
        assert check_ft_expr(e)[0] == FInt()
        value, _ = evaluate_ft(e)
        assert value == IntE(9)


class TestCellLibraryTypes:
    def test_alloc_type(self):
        ty, _ = check_ft_expr(alloc_cell())
        assert isinstance(ty, FStackArrow)
        assert ty.phi_in == () and ty.phi_out == (TInt(),)

    def test_read_type(self):
        ty, _ = check_ft_expr(read_cell())
        assert ty.phi_in == (TInt(),) and ty.phi_out == (TInt(),)
        assert ty.result == FInt()

    def test_write_type(self):
        ty, _ = check_ft_expr(write_cell())
        assert ty.result == FUnit()

    def test_free_type(self):
        ty, _ = check_ft_expr(free_cell())
        assert ty.phi_in == (TInt(),) and ty.phi_out == ()


class TestCellLibraryBehaviour:
    def _with_cell(self, init, body, out_prefix=()):
        return seq_cell(App(alloc_cell(), (IntE(init),)), "_", FUnit(),
                        body, INT_CELL, out_prefix)

    def test_alloc_read(self):
        prog = self._with_cell(
            11,
            seq_cell(App(read_cell(), (UnitE(),)), "v", FInt(),
                     seq_cell(App(free_cell(), (UnitE(),)), "_2", FUnit(),
                              Var("v"), (), ()),
                     INT_CELL, ()))
        ty, sigma = check_ft_expr(prog)
        assert ty == FInt() and sigma == NIL_STACK
        value, _ = evaluate_ft(prog)
        assert value == IntE(11)

    def test_write_then_read(self):
        prog = self._with_cell(
            1,
            seq_cell(App(write_cell(), (IntE(99),)), "_w", FUnit(),
                     seq_cell(App(read_cell(), (UnitE(),)), "v", FInt(),
                              seq_cell(App(free_cell(), (UnitE(),)),
                                       "_f", FUnit(), Var("v"), (), ()),
                              INT_CELL, ()),
                     INT_CELL, ()))
        value, _ = evaluate_ft(prog)
        assert value == IntE(99)

    def test_increment(self):
        prog = self._with_cell(
            5,
            seq_cell(App(read_cell(), (UnitE(),)), "v", FInt(),
                     seq_cell(App(write_cell(),
                                  (BinOp("+", Var("v"), IntE(1)),)),
                              "_w", FUnit(),
                              seq_cell(App(read_cell(), (UnitE(),)), "w",
                                       FInt(),
                                       seq_cell(App(free_cell(),
                                                    (UnitE(),)),
                                                "_f", FUnit(), Var("w"),
                                                (), ()),
                                       INT_CELL, ()),
                              INT_CELL, ()),
                     INT_CELL, ()))
        value, machine = evaluate_ft(prog)
        assert value == IntE(6)
        assert machine.memory.depth == 0  # the cell was freed

    def test_leaking_cell_reflects_in_type(self):
        # not freeing the cell leaves int on the output stack typing
        prog = self._with_cell(
            3,
            seq_cell(App(read_cell(), (UnitE(),)), "v", FInt(),
                     Var("v"), INT_CELL, INT_CELL),
            out_prefix=INT_CELL)
        ty, sigma = check_ft_expr(prog)
        assert sigma == StackTy((TInt(),), None)
        _, machine = evaluate_ft(prog)
        assert machine.memory.snapshot_stack() == (WInt(3),)

    def test_reading_without_cell_rejected(self):
        with pytest.raises(FTTypeError):
            check_ft_expr(App(read_cell(), (UnitE(),)))

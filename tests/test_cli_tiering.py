"""CLI surface of the adaptive-tiering subsystem.

``funtal tiers`` (receipt/state inspection), the ``--tiering`` knobs on
``batch``, the tiering section of ``funtal stats``, and the deprecation
note on the superseded manual hand-off (``funtal top
--promote-threshold``).
"""

import json

import pytest

from repro.cli import main
from repro.serve.executor import execute_job
from repro.serve.protocol import Job, JobOptions
from repro.tiering.policy import TieringPolicy, set_active_policy


@pytest.fixture(autouse=True)
def _clean_policy():
    set_active_policy(None)
    yield
    set_active_policy(None)


def earn_receipt(source, store):
    """Promote ``source`` directly via the executor, filling ``store``."""
    set_active_policy(TieringPolicy(mode="auto", store=store))
    result = execute_job(Job("promote", id="p", source=source,
                             options=JobOptions(store=store)))
    assert result.ok, result.error
    set_active_policy(None)
    return result.output["digest"]


class TestTiersCommand:
    def test_empty_store(self, tmp_path, capsys):
        assert main(["tiers", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "(no tiering receipts or controller state found)" in out

    def test_lists_receipts(self, tmp_path, capsys):
        digest = earn_receipt("((lam (x: int). ((x * x) + 1)) (20))",
                              str(tmp_path))
        assert main(["tiers", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert digest in out
        assert "ok" in out
        assert "expression" in out

    def test_json_output(self, tmp_path, capsys):
        digest = earn_receipt("(7 + 8)", str(tmp_path))
        assert main(["tiers", "--store", str(tmp_path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["store"] == str(tmp_path)
        assert data["policy"]["mode"] in ("off", "auto", "aggressive")
        rows = {row["digest"]: row for row in data["tiers"]}
        assert rows[digest]["receipt"] == "ok"
        assert rows[digest]["kind"] == "expression"

    def test_state_file_adds_controller_columns(self, tmp_path, capsys):
        from repro.tiering.controller import TieringController

        policy = TieringPolicy(mode="auto", promote_threshold=10,
                               store=str(tmp_path))
        controller = TieringController(policy)
        controller.record_steps("feeddeadbeef0001", 50)
        state_path = tmp_path / "tiering.json"
        controller.save(str(state_path))

        assert main(["tiers", "--store", str(tmp_path),
                     "--state", str(state_path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        rows = {row["digest"]: row for row in data["tiers"]}
        row = rows["feeddeadbeef0001"]
        assert row["receipt"] is None       # hot but not yet validated
        assert row["state"] == "promoting"
        assert row["steps"] == 50
        assert row["runs"] == 1

    def test_unreadable_state_file(self, tmp_path, capsys):
        bad = tmp_path / "nope.json"
        bad.write_text("{not json")
        assert main(["tiers", "--store", str(tmp_path),
                     "--state", str(bad)]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestBatchTiering:
    def test_batch_summary_reports_tiering(self, tmp_path, capsys):
        code = main(["batch", "--examples", "--workers", "2",
                     "--no-cache", "--tiering", "auto",
                     "--tiering-threshold", "40",
                     "--tiering-store", str(tmp_path)])
        assert code == 0
        err = capsys.readouterr().err
        summary = json.loads(err.split("batch: ", 1)[1])
        tiering = summary["tiering"]
        assert tiering["mode"] == "auto"
        assert tiering["threshold"] == 40
        assert sum(tiering["states"].values()) >= 1

    def test_batch_without_tiering_flag_stays_off(self, capsys,
                                                  monkeypatch):
        monkeypatch.delenv("FUNTAL_TIERING", raising=False)
        assert main(["batch", "--examples", "--workers", "2"]) == 0
        err = capsys.readouterr().err
        summary = json.loads(err.split("batch: ", 1)[1])
        assert "tiering" not in summary


class TestStatsTiering:
    @pytest.fixture(autouse=True)
    def _no_live_coordinator(self):
        """Pin the fallback path: another test's pool may have left a
        live coordinator behind the weakref."""
        import sys

        mod = sys.modules.get("repro.tiering.coordinator")
        if mod is not None:
            saved, mod._LAST = mod._LAST, None
            yield
            mod._LAST = saved
        else:
            yield

    def test_stats_reports_active_policy(self, capsys):
        set_active_policy(TieringPolicy(mode="aggressive",
                                        promote_threshold=1000))
        assert main(["stats", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        tiering = data["tiering"]
        assert tiering["mode"] == "aggressive"
        assert tiering["threshold"] == 100      # aggressive: tenth

    def test_stats_table_has_tiering_line(self, capsys):
        set_active_policy(TieringPolicy(mode="auto"))
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "tiering  mode=auto" in out


class TestDeprecatedHandOff:
    def test_top_promote_threshold_warns(self, capsys):
        assert main(["top", "fact-t", "--promote-threshold", "1"]) == 0
        captured = capsys.readouterr()
        assert "--promote-threshold is deprecated" in captured.err
        assert "--tiering auto" in captured.err
        # The historical behaviour is preserved: digests still print.
        assert captured.out.strip()

    def test_deprecated_env_aliases_warn(self, monkeypatch):
        monkeypatch.setenv("FUNTAL_TAL_JIT_THRESHOLD", "8")
        monkeypatch.setenv("FUNTAL_TIERING", "auto")
        with pytest.warns(DeprecationWarning, match="FUNTAL_TAL_JIT"):
            policy = TieringPolicy.from_env()
        assert policy.tal_jit_threshold == 8

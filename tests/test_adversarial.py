"""Tests for the adversarial T component registry (ROADMAP item 5).

Three properties per component: it parses (these are syntactically
honest programs), the FT typechecker rejects it with a *structured*
error, and the untyped machine either traps safely or halts -- never a
raw Python exception.  Plus the serving-layer property the chaos drill
relies on: submitted as jobs, adversaries resolve ``error``.
"""

import pytest

from repro.adversarial import ADVERSARIES, adversarial_jobs
from repro.errors import FTTypeError, FunTALError, MachineError

ADV_IDS = [adv.name for adv in ADVERSARIES]


def _parse(source):
    from repro.surface.parser import parse_component

    return parse_component(source)


class TestRegistry:
    def test_three_to_four_components(self):
        assert 3 <= len(ADVERSARIES) <= 4

    def test_names_unique(self):
        assert len({a.name for a in ADVERSARIES}) == len(ADVERSARIES)

    def test_required_attack_classes_present(self):
        names = {a.name for a in ADVERSARIES}
        assert "smuggled-ra" in names       # forged return address
        assert "stack-reentry" in names     # re-entry into freed stack
        assert "protect-misuse" in names    # protect over phantom slots


@pytest.mark.parametrize("adv", ADVERSARIES, ids=ADV_IDS)
class TestEachAdversary:
    def test_parses(self, adv):
        assert _parse(adv.source) is not None

    def test_typechecker_rejects_structurally(self, adv):
        from repro.ft.typecheck import check_ft_component
        from repro.tal.syntax import NIL_STACK, QEnd, TInt

        comp = _parse(adv.source)
        with pytest.raises(FTTypeError) as exc:
            check_ft_component(comp, q=QEnd(TInt(), NIL_STACK))
        assert adv.rejects_with in str(exc.value)

    def test_machine_traps_safely_or_halts(self, adv):
        """Run the *rejected* component on the untyped machine anyway:
        the worst allowed outcome is a structured MachineError."""
        from repro.ft.machine import FTMachine

        comp = _parse(adv.source)
        machine = FTMachine()
        if adv.machine_behavior == "trap":
            with pytest.raises(MachineError):
                machine.run_component(comp)
        else:
            machine.run_component(comp)     # halts (with a bogus claim)

    def test_executor_returns_error_never_crash(self, adv):
        from repro.serve.executor import execute_job
        from repro.serve.protocol import Job

        result = execute_job(Job("typecheck", source=adv.source))
        assert result.status == "error"
        assert result.error_type == "FTTypeError"


class TestJobCorpus:
    def test_adversarial_jobs_cover_the_registry(self):
        jobs = adversarial_jobs()
        assert len(jobs) == len(ADVERSARIES)
        assert all(j.kind == "typecheck" for j in jobs)
        assert len({j.id for j in jobs}) == len(jobs)

    def test_through_a_live_pool(self):
        from repro.serve.pool import WorkerPool

        with WorkerPool(1, default_timeout=30.0) as pool:
            for job in adversarial_jobs(ids_prefix="pool-adv"):
                result = pool.submit(job).wait(30.0)
                assert result is not None
                assert result.status == "error"
                assert result.attempts == 1     # semantic, not a fault

"""Hypothesis property tests on the core data structures and judgments.

These check the algebraic facts the paper's metatheory relies on:
alpha-equivalence is an equivalence relation; substitution respects it;
instantiation commutes with the parser round trip; determinism of the
machines; and the testable shadow of the Fundamental Property
(Theorem 5.1): every well-typed term is contextually equivalent to itself.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.equiv.observation import observe
from repro.f.eval import evaluate
from repro.f.syntax import ftype_equal
from repro.surface.parser import parse_component, parse_fexpr, parse_ttype
from repro.tal.equality import stacks_equal, types_equal
from repro.tal.subst import (
    free_type_vars, Subst, subst_stack, subst_ty,
)
from repro.tal.syntax import (
    CodeType, DeltaBind, KIND_ALPHA, KIND_EPS, KIND_ZETA, NIL_STACK, QEnd,
    QEps, QOut, QReg, RegFileTy, StackTy, TBox, TExists, TInt, TRec, TRef,
    TupleTy, TUnit, TVar,
)

from tests.strategies import random_f_int_expr, random_t_program


# ---------------------------------------------------------------------------
# Random T value types
# ---------------------------------------------------------------------------

def random_ttype(seed: int, depth: int = 3, free=("a", "b")):
    rng = random.Random(seed)

    def gen(d, scope):
        opts = ["int", "unit"]
        if scope:
            opts += ["var", "var"]
        if d > 0:
            opts += ["exists", "mu", "ref", "boxtuple", "code"]
        kind = rng.choice(opts)
        if kind == "int":
            return TInt()
        if kind == "unit":
            return TUnit()
        if kind == "var":
            return TVar(rng.choice(scope))
        if kind == "exists":
            v = f"v{rng.randint(0, 2)}"
            return TExists(v, gen(d - 1, scope + [v]))
        if kind == "mu":
            v = f"v{rng.randint(0, 2)}"
            return TRec(v, gen(d - 1, scope + [v]))
        if kind == "ref":
            return TRef(tuple(gen(d - 1, scope)
                              for _ in range(rng.randint(1, 2))))
        if kind == "boxtuple":
            return TBox(TupleTy(tuple(gen(d - 1, scope)
                                      for _ in range(rng.randint(0, 2)))))
        # code type with one zeta and one eps
        inner = gen(d - 1, scope)
        return TBox(CodeType(
            (DeltaBind(KIND_ZETA, "zc"), DeltaBind(KIND_EPS, "ec")),
            RegFileTy.of(r1=inner), StackTy((), "zc"), QEps("ec")))

    return gen(depth, list(free))


class TestAlphaEquivalence:
    @given(st.integers(0, 5_000))
    @settings(max_examples=200, deadline=None)
    def test_reflexive(self, seed):
        ty = random_ttype(seed)
        assert types_equal(ty, ty)

    @given(st.integers(0, 5_000), st.integers(0, 5_000))
    @settings(max_examples=200, deadline=None)
    def test_symmetric(self, s1, s2):
        a, b = random_ttype(s1), random_ttype(s2)
        assert types_equal(a, b) == types_equal(b, a)

    @given(st.integers(0, 5_000))
    @settings(max_examples=100, deadline=None)
    def test_renamed_binders_equal(self, seed):
        ty = TExists("a", random_ttype(seed, free=["a"]))
        renamed = TExists("fresh", subst_ty(
            ty.body, Subst.single(KIND_ALPHA, "a", TVar("fresh"))))
        assert types_equal(ty, renamed)


class TestSubstitution:
    @given(st.integers(0, 5_000))
    @settings(max_examples=200, deadline=None)
    def test_identity_substitution(self, seed):
        ty = random_ttype(seed)
        assert subst_ty(ty, Subst.single(KIND_ALPHA, "a", TVar("a"))) == ty

    @given(st.integers(0, 5_000), st.integers(0, 5_000))
    @settings(max_examples=200, deadline=None)
    def test_substitution_removes_variable(self, s1, s2):
        ty = random_ttype(s1)
        replacement = random_ttype(s2, free=["b"])
        out = subst_ty(ty, Subst.single(KIND_ALPHA, "a", replacement))
        assert (KIND_ALPHA, "a") not in free_type_vars(out)

    @given(st.integers(0, 5_000))
    @settings(max_examples=200, deadline=None)
    def test_irrelevant_substitution_is_identity(self, seed):
        ty = random_ttype(seed, free=["a"])
        out = subst_ty(ty, Subst.single(KIND_ALPHA, "zzz", TInt()))
        assert out == ty

    @given(st.integers(0, 5_000))
    @settings(max_examples=100, deadline=None)
    def test_stack_substitution_preserves_depth(self, seed):
        rng = random.Random(seed)
        prefix = tuple(random_ttype(rng.randint(0, 999), depth=1)
                       for _ in range(rng.randint(0, 3)))
        sigma = StackTy(prefix, "z")
        replacement = StackTy(
            tuple(random_ttype(rng.randint(0, 999), depth=1)
                  for _ in range(rng.randint(0, 3))), None)
        out = subst_stack(sigma, Subst.single(KIND_ZETA, "z", replacement))
        assert len(out.prefix) == len(prefix) + len(replacement.prefix)
        assert out.tail is None


class TestParserRoundTrip:
    @given(st.integers(0, 10_000))
    @settings(max_examples=200, deadline=None)
    def test_f_expressions(self, seed):
        e = random_f_int_expr(seed, depth=3)
        assert parse_fexpr(str(e)) == e

    @given(st.integers(0, 10_000))
    @settings(max_examples=200, deadline=None)
    def test_t_types(self, seed):
        ty = random_ttype(seed)
        assert parse_ttype(str(ty)) == ty

    @given(st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_t_components(self, seed):
        comp = random_t_program(seed, length=8)
        assert parse_component(str(comp)) == comp


class TestDeterminism:
    @given(st.integers(0, 5_000))
    @settings(max_examples=60, deadline=None)
    def test_f_evaluation_deterministic(self, seed):
        e = random_f_int_expr(seed, depth=3)
        assert evaluate(e) == evaluate(e)

    @given(st.integers(0, 5_000))
    @settings(max_examples=60, deadline=None)
    def test_observation_deterministic(self, seed):
        e = random_f_int_expr(seed, depth=3)
        assert observe(e) == observe(e)


class TestFundamentalPropertyShadow:
    """Theorem 5.1, testably: every well-typed term is equivalent to
    itself under the differential checker."""

    @given(st.integers(0, 2_000))
    @settings(max_examples=20, deadline=None)
    def test_random_f_terms_self_related(self, seed):
        from repro.equiv.checker import check_equivalence
        from repro.f.syntax import FInt

        e = random_f_int_expr(seed, depth=3)
        report = check_equivalence(e, e, FInt(), fuel=20_000,
                                   typecheck=False)
        assert report.equivalent

    def test_paper_corpus_self_related(self):
        from repro.equiv.checker import check_equivalence
        from repro.papers_examples import fig16_two_blocks as f16

        for build in (f16.build_f1, f16.build_f2):
            report = check_equivalence(build(), build(), f16.ARROW,
                                       fuel=20_000, max_contexts=8)
            assert report.equivalent

"""Tests for :mod:`repro.link.build` -- manifests, incremental builds,
and content-hash-amortized translation validation.

The incremental contract (the paper's separate-compilation story made
operational): editing one component of an N-component program recompiles
exactly that component; everything else is served from the store.
"""

import json

import pytest

from repro import obs
from repro.errors import LinkError, ParseError
from repro.f.syntax import IntE
from repro.ft.machine import evaluate_ft
from repro.link import (
    ArtifactStore, BUILTIN_COMPONENTS, TIER_HANDWRITTEN, build_and_link,
    build_manifest, parse_manifest,
)

BASE = {
    "components": {
        "double": "lam (x: int). (x + x)",
        "quad": "lam (x: int). double (double x)",
        "fact": {"builtin": "fact-t"},
    },
    "main": "quad (fact 3)",
}


def manifest(**overrides):
    data = {"components": dict(BASE["components"]), "main": BASE["main"]}
    data["components"].update(overrides)
    return parse_manifest(json.dumps(data))


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


class TestParseManifest:
    def test_roundtrip(self):
        m = manifest()
        assert [n for n, _ in m.components] == ["double", "quad", "fact"]

    def test_source_object_form(self):
        m = parse_manifest(json.dumps({
            "components": {"id": {"source": "lam (x: int). x"}},
            "main": "id 1"}))
        assert len(m.components) == 1

    @pytest.mark.parametrize("text, msg", [
        ("not json {", "not valid JSON"),
        ("[1, 2]", "JSON object"),
        ('{"components": {"a": "1"}, "main": "a", "x": 1}', "unknown"),
        ('{"main": "1"}', "components"),
        ('{"components": {}, "main": "1"}', "components"),
        ('{"components": {"a": "1"}}', "main"),
        ('{"components": {"a": {"builtin": "nope"}}, "main": "a"}',
         "unknown builtin"),
        ('{"components": {"a": 7}, "main": "a"}', "source string"),
    ])
    def test_structural_errors(self, text, msg):
        with pytest.raises(LinkError, match=msg):
            parse_manifest(text)

    def test_bad_component_syntax_is_a_parse_error(self):
        with pytest.raises(ParseError):
            parse_manifest(json.dumps(
                {"components": {"a": "lam (x:"}, "main": "a 1"}))

    def test_builtins_registry(self):
        assert "fact-t" in BUILTIN_COMPONENTS
        assert "fact-f" in BUILTIN_COMPONENTS

    def test_unknown_free_var(self):
        with pytest.raises(LinkError, match="naming no component"):
            build_manifest(parse_manifest(json.dumps({
                "components": {"a": "lam (x: int). ghost x"},
                "main": "a 1"})))

    def test_self_import(self):
        with pytest.raises(LinkError, match="imports itself"):
            build_manifest(parse_manifest(json.dumps({
                "components": {"a": "lam (x: int). a x"},
                "main": "a 1"})))


class TestIncrementalBuild:
    def test_cold_build_compiles_everything(self, store):
        report = build_manifest(manifest(), store)
        assert sorted(report.recompiled) == ["double", "fact", "quad"]
        assert report.cached == []
        assert len(store) == 3

    def test_warm_build_compiles_nothing(self, store):
        build_manifest(manifest(), store)
        report = build_manifest(manifest(), store)
        assert report.recompiled == []
        assert sorted(report.cached) == ["double", "fact", "quad"]

    def test_editing_one_component_recompiles_exactly_it(self, store):
        build_manifest(manifest(), store)
        edited = manifest(quad="lam (x: int). double (double (x + 0))")
        report = build_manifest(edited, store)
        assert report.recompiled == ["quad"]
        assert sorted(report.cached) == ["double", "fact"]

    def test_type_preserving_dependency_edit_spares_dependents(self, store):
        """quad's digest covers double's *interface*, not its body: a
        body-only edit to double leaves quad cached."""
        build_manifest(manifest(), store)
        edited = manifest(double="lam (x: int). (x * 2)")
        report = build_manifest(edited, store)
        assert report.recompiled == ["double"]
        assert "quad" in report.cached

    def test_two_names_share_one_artifact(self, store):
        m = parse_manifest(json.dumps({
            "components": {"a": "lam (x: int). (x + x)",
                           "b": "lam (x: int). (x + x)"},
            "main": "a (b 1)"}))
        report = build_manifest(m, store)
        digests = {r.name: r.digest for r in report.records}
        assert digests["a"] == digests["b"]
        assert report.recompiled == ["a"]       # b rides the same artifact
        assert report.cached == ["b"]

    def test_warm_build_links_and_runs(self, store):
        build_manifest(manifest(), store)
        report, linked = build_and_link(manifest(), store)
        assert report.recompiled == []
        value, _ = evaluate_ft(linked.program)
        assert value == IntE(24)

    def test_storeless_build_works(self):
        report = build_manifest(manifest())
        assert sorted(report.recompiled) == ["double", "fact", "quad"]

    def test_build_metrics(self, store):
        obs.disable()
        obs.reset()
        obs.enable(record=False)
        try:
            build_manifest(manifest(), store)
            build_manifest(manifest(), store)
            counters = obs.OBS.metrics.snapshot()["counters"]
            assert counters.get("link.build.compiled") == 3
            assert counters.get("link.build.store_hit") == 3
            assert counters.get("link.store.put", 0) >= 3
        finally:
            obs.disable()
            obs.reset()

    def test_report_json(self, store):
        report = build_manifest(manifest(), store)
        data = report.to_json()
        assert {c["name"] for c in data["components"]} \
            == {"double", "quad", "fact"}
        quad = next(c for c in data["components"] if c["name"] == "quad")
        assert quad["imports"] == ["double: (int) -> int"]
        assert quad["tier"] == "general"


class TestCachedValidation:
    def test_receipts_amortize_validation(self, store):
        first = build_manifest(manifest(), store, validate=True)
        for rec in first.records:
            if rec.tier == TIER_HANDWRITTEN:
                assert rec.validation is None   # statically checked
            else:
                assert rec.validation["ok"]
                assert not rec.validation_cached

        obs.disable()
        obs.reset()
        obs.enable(record=False)
        try:
            second = build_manifest(manifest(), store, validate=True)
            counters = obs.OBS.metrics.snapshot()["counters"]
            assert counters.get("compile.validate.cache_hit") == 2
        finally:
            obs.disable()
            obs.reset()
        for rec in second.records:
            if rec.tier != TIER_HANDWRITTEN:
                assert rec.validation_cached
                assert rec.validation["ok"]

    def test_receipt_survives_artifact_cache(self, store):
        """A cached *artifact* still gets its validation from the
        receipt, not a re-run (store hit on both kinds)."""
        build_manifest(manifest(), store, validate=True)
        report = build_manifest(manifest(), store, validate=True)
        assert report.recompiled == []
        assert all(r.validation_cached for r in report.records
                   if r.tier != TIER_HANDWRITTEN)

"""Worker-side tiering tests (in-process, no pool).

Covers the ``promote`` job kind end to end: earning a signed receipt
(typecheck gate, translation validation, ref-vs-fast differential),
reusing it (``receipt_cached``), refusing adversarial components, and
serving promoted ``run`` / ``resume`` jobs with the ``tier`` envelope
-- including cross-tier snapshot resume in both directions.
"""

import pytest

from repro import obs
from repro.adversarial import ADVERSARIES
from repro.f.syntax import App, IntE
from repro.obs.events import OBS
from repro.papers_examples.fig17_factorial import build_count_t
from repro.serve.executor import execute_job
from repro.serve.protocol import Job, JobOptions
from repro.tal import fast
from repro.tiering.policy import TieringPolicy, set_active_policy
from repro.tiering.promote import program_digest


def count_t_source(n=200):
    """An inline hot source: a T-dominated countdown loop (countT n == n)."""
    return str(App(build_count_t(), (IntE(n),)))


ARITH_SOURCE = "((lam (x: int). ((x * x) + 1)) (20))"


@pytest.fixture(autouse=True)
def _tiering_sandbox(tmp_path):
    """Fresh policy + fast-tier promotion state per test."""
    set_active_policy(TieringPolicy(mode="auto", store=str(tmp_path)))
    fast._PROMOTED = None
    fast.set_jit_threshold(None)
    yield str(tmp_path)
    set_active_policy(None)
    fast._PROMOTED = None
    fast.set_jit_threshold(None)


def promote(source, store, **opts):
    return execute_job(Job("promote", id="p", source=source,
                           options=JobOptions(store=store, **opts)))


class TestPromoteJob:
    def test_earns_receipt(self, _tiering_sandbox):
        src = count_t_source()
        result = promote(src, _tiering_sandbox)
        assert result.ok, result.error
        out = result.output
        assert out["digest"] == program_digest(src, None)
        assert out["receipt_cached"] is False
        receipt = out["receipt"]
        assert receipt["kind"] == "expression"
        assert receipt["sig"]
        # The loop's T blocks were harvested under the profiler.
        assert len(receipt["t_blocks"]) >= 1
        assert receipt["validated"]["trial_steps"] > 0
        # A Boundary-bearing lambda is not compile-eligible: no tier.
        assert receipt["compile_tier"] is None

    def test_receipt_reused_second_time(self, _tiering_sandbox):
        src = count_t_source()
        first = promote(src, _tiering_sandbox)
        assert first.ok and first.output["receipt_cached"] is False
        obs.reset()
        obs.enable(record=False)
        try:
            second = promote(src, _tiering_sandbox)
            counters = OBS.metrics.snapshot()["counters"]
        finally:
            obs.disable()
            obs.reset()
        assert second.ok and second.output["receipt_cached"] is True
        assert counters["tiering.validate.receipt_hit"] == 1
        # Validated once: the cached path performs no validation work.
        assert "tiering.validate.performed" not in counters
        assert second.output["receipt"]["sig"] == \
            first.output["receipt"]["sig"]

    def test_compile_eligible_expression_validates(self, _tiering_sandbox):
        result = promote(ARITH_SOURCE, _tiering_sandbox)
        assert result.ok, result.error
        receipt = result.output["receipt"]
        assert receipt["compile_tier"] is not None
        assert receipt["artifact"]

    def test_pure_component_promotes(self, _tiering_sandbox):
        result = promote("(mv r1, 7; halt int, nil {r1}, .)",
                         _tiering_sandbox)
        assert result.ok, result.error
        assert result.output["receipt"]["kind"] == "component"

    @pytest.mark.parametrize("adv", ADVERSARIES,
                             ids=[a.name for a in ADVERSARIES])
    def test_adversaries_refused_at_typecheck(self, adv, _tiering_sandbox):
        """Satellite 5: every adversarial component dies at gate 1 with
        a structured FTTypeError -- none earns a receipt."""
        result = promote(adv.source, _tiering_sandbox)
        assert result.status == "error"
        assert result.error_type == "FTTypeError"
        assert adv.rejects_with in result.error
        # Nothing was persisted for the refused digest.
        from repro.link.store import ArtifactStore
        from repro.tiering.receipts import ReceiptBook

        book = ReceiptBook(ArtifactStore(_tiering_sandbox))
        assert book.get(program_digest(adv.source, None)) is None


class TestPromotedRun:
    def _earn(self, src, store):
        result = promote(src, store)
        assert result.ok, result.error
        return result.output["receipt"]

    def test_promoted_run_same_answer_fast_tier(self, _tiering_sandbox):
        src = count_t_source(150)
        baseline = execute_job(Job("run", source=src))
        assert baseline.ok
        assert baseline.output["tier"] == {
            "f_engine": "cek", "compile_tier": None,
            "tal_engine": "ref", "promoted": False}

        receipt = self._earn(src, _tiering_sandbox)
        result = execute_job(Job(
            "run", source=src,
            options=JobOptions(promoted=True, tiering=receipt)))
        assert result.ok
        assert result.output["value"] == baseline.output["value"] == "150"
        tier = result.output["tier"]
        assert tier["tal_engine"] == "fast"
        assert tier["promoted"] is True

    def test_degraded_option_suppresses_promotion(self, _tiering_sandbox):
        src = count_t_source(50)
        receipt = self._earn(src, _tiering_sandbox)
        result = execute_job(Job(
            "run", source=src,
            options=JobOptions(promoted=True, tiering=receipt,
                               degraded=True)))
        assert result.ok and result.output["value"] == "50"
        assert result.output["tier"]["promoted"] is False
        assert result.output["tier"]["tal_engine"] == "ref"

    def test_promoted_compile_receipt_runs_guarded(self, _tiering_sandbox):
        receipt = self._earn(ARITH_SOURCE, _tiering_sandbox)
        result = execute_job(Job(
            "run", source=ARITH_SOURCE,
            options=JobOptions(promoted=True, tiering=receipt)))
        assert result.ok and result.output["value"] == "401"
        assert "jit" in result.output       # guarded-JIT envelope
        assert result.output["tier"]["promoted"] is True

    def test_explicit_tal_engine_wins_over_receipt(self, _tiering_sandbox):
        src = count_t_source(40)
        receipt = self._earn(src, _tiering_sandbox)
        result = execute_job(Job(
            "run", source=src,
            options=JobOptions(promoted=True, tiering=receipt,
                               tal_engine="ref")))
        assert result.ok and result.output["value"] == "40"
        assert result.output["tier"]["tal_engine"] == "ref"


class TestCrossTierResume:
    """Satellite 4: snapshots are tier-portable.  A checkpoint taken
    before promotion resumes on a promoted worker (and vice versa) with
    the same answer."""

    def _earn(self, src, store):
        result = promote(src, store)
        assert result.ok, result.error
        return result.output["receipt"]

    def test_pre_promotion_snapshot_resumes_promoted(self,
                                                     _tiering_sandbox):
        src = count_t_source(300)
        suspended = execute_job(Job(
            "run", source=src,
            options=JobOptions(fuel=60, checkpoint=True)))
        assert suspended.status == "suspended"

        receipt = self._earn(src, _tiering_sandbox)
        final = execute_job(Job(
            "resume", snapshot=suspended.output["snapshot"],
            options=JobOptions(fuel=1_000_000, promoted=True,
                               tiering=receipt)))
        assert final.ok, final.error
        assert final.output["value"] == "300"
        assert final.output["tier"]["tal_engine"] == "fast"
        assert final.output["tier"]["promoted"] is True

    def test_promoted_snapshot_resumes_unpromoted(self, _tiering_sandbox):
        src = count_t_source(300)
        receipt = self._earn(src, _tiering_sandbox)
        suspended = execute_job(Job(
            "run", source=src,
            options=JobOptions(fuel=60, checkpoint=True, promoted=True,
                               tiering=receipt)))
        assert suspended.status == "suspended"
        assert suspended.output["tier"]["tal_engine"] == "fast"

        final = execute_job(Job(
            "resume", snapshot=suspended.output["snapshot"],
            options=JobOptions(fuel=1_000_000)))
        assert final.ok, final.error
        assert final.output["value"] == "300"
        assert final.output["tier"]["promoted"] is False

    def test_round_trip_through_both_tiers(self, _tiering_sandbox):
        src = count_t_source(400)
        receipt = self._earn(src, _tiering_sandbox)
        hop1 = execute_job(Job(
            "run", source=src,
            options=JobOptions(fuel=60, checkpoint=True)))
        assert hop1.status == "suspended"
        hop2 = execute_job(Job(
            "resume", snapshot=hop1.output["snapshot"],
            options=JobOptions(fuel=60, checkpoint=True, promoted=True,
                               tiering=receipt)))
        assert hop2.status == "suspended"
        final = execute_job(Job(
            "resume", snapshot=hop2.output["snapshot"],
            options=JobOptions(fuel=1_000_000)))
        assert final.ok and final.output["value"] == "400"

"""Unit tests for the FT boundary type translation (paper Fig 9)."""

import pytest

from repro.errors import FTTypeError
from repro.f.syntax import (
    FArrow, FInt, FRec, FTupleT, FTVar, FUnit,
)
from repro.ft.syntax import FStackArrow
from repro.ft.translate import (
    arrow_code_type, continuation_type, EPS, type_translation, ZETA,
)
from repro.tal.equality import psis_equal, types_equal
from repro.tal.syntax import (
    CodeType, KIND_EPS, KIND_ZETA, QEps, QReg, RegFileTy, StackTy, TBox,
    TInt, TRec, TupleTy, TUnit, TVar,
)
from repro.tal.wellformed import check_type_wf


class TestBaseCases:
    def test_unit(self):
        assert type_translation(FUnit()) == TUnit()

    def test_int(self):
        assert type_translation(FInt()) == TInt()

    def test_type_variable(self):
        assert type_translation(FTVar("a")) == TVar("a")

    def test_mu(self):
        assert type_translation(FRec("a", FTVar("a"))) == \
            TRec("a", TVar("a"))

    def test_tuple_is_boxed(self):
        assert type_translation(FTupleT((FInt(), FUnit()))) == \
            TBox(TupleTy((TInt(), TUnit())))


class TestArrowTranslation:
    def test_unary_arrow_shape(self):
        ty = type_translation(FArrow((FInt(),), FInt()))
        assert isinstance(ty, TBox) and isinstance(ty.psi, CodeType)
        ct = ty.psi
        # forall[zeta z, eps e]
        assert [b.kind for b in ct.delta] == [KIND_ZETA, KIND_EPS]
        # return marker is ra
        assert ct.q == QReg("ra")
        # arguments on the stack over the abstract tail
        assert ct.sigma == StackTy((TInt(),), ZETA)
        # the continuation expects r1 : int over the bare tail, marker eps
        cont = ct.chi.get("ra")
        assert isinstance(cont, TBox) and isinstance(cont.psi, CodeType)
        assert cont.psi.delta == ()
        assert cont.psi.chi.get("r1") == TInt()
        assert cont.psi.sigma == StackTy((), ZETA)
        assert cont.psi.q == QEps(EPS)

    def test_argument_order_last_on_top(self):
        ty = type_translation(FArrow((FInt(), FUnit()), FInt()))
        assert ty.psi.sigma == StackTy((TUnit(), TInt()), ZETA)

    def test_nested_arrow_translates_argument(self):
        inner = FArrow((FInt(),), FInt())
        outer = type_translation(FArrow((inner,), FInt()))
        arg_ty = outer.psi.sigma.prefix[0]
        assert types_equal(arg_ty, type_translation(inner))

    def test_closed_result(self):
        ty = type_translation(FArrow((FInt(),), FInt()))
        check_type_wf((), ty)

    def test_translation_is_deterministic(self):
        a = type_translation(FArrow((FInt(),), FInt()))
        b = type_translation(FArrow((FInt(),), FInt()))
        assert a == b

    def test_matches_paper_fig9_printed_form(self):
        ty = type_translation(FArrow((FInt(),), FInt()))
        assert str(ty) == ("box forall[zeta z, eps e]."
                           "{ra: box forall[].{r1: int; z} e; int :: z} ra")


class TestStackArrowTranslation:
    def test_prefixes_threaded(self):
        ty = type_translation(
            FStackArrow((FInt(),), FUnit(), phi_in=(), phi_out=(TInt(),)))
        ct = ty.psi
        # input stack: arg :: phi_in :: zeta
        assert ct.sigma == StackTy((TInt(),), ZETA)
        # continuation stack: phi_out :: zeta
        cont = ct.chi.get("ra").psi
        assert cont.sigma == StackTy((TInt(),), ZETA)

    def test_phi_in_under_arguments(self):
        ty = type_translation(
            FStackArrow((FUnit(),), FInt(), phi_in=(TInt(),), phi_out=()))
        assert ty.psi.sigma == StackTy((TUnit(), TInt()), ZETA)

    def test_plain_arrow_is_special_case(self):
        plain = type_translation(FArrow((FInt(),), FInt()))
        stacky = type_translation(
            FStackArrow((FInt(),), FInt(), (), ()))
        assert types_equal(plain, stacky)


class TestHelpers:
    def test_continuation_type_shape(self):
        from repro.tal.retmarker import is_continuation_type

        assert is_continuation_type(
            continuation_type(TInt(), StackTy((), "z")))

    def test_arrow_code_type_unboxed(self):
        ct = arrow_code_type((TInt(),), TInt())
        assert isinstance(ct, CodeType)

    def test_unknown_type_rejected(self):
        class Weird(FTVar.__mro__[1]):  # a bare FType subclass
            def __str__(self):
                return "weird"

        with pytest.raises(FTTypeError, match="no translation"):
            type_translation(Weird())

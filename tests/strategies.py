"""Random well-typed program generators for the property-based tests.

Two generators:

* :func:`random_f_int_expr` -- a closed, well-typed F expression of type
  ``int``, built top-down from a seeded RNG (arithmetic, branches,
  applications, tuples/projections, fold/unfold);
* :func:`random_full_f_expr` -- a closed, well-typed F expression of
  type ``int`` drawn from the *whole* language, type-directed: escaping
  closures over captured variables, multi-argument and higher-order
  lambdas, tuples of mixed type, ``unit``, and iso-recursive
  ``fold``/``unfold`` as first-class values.  This is the input
  distribution for the compiler's differential suite
  (``tests/test_compile_differential.py``), so it deliberately produces
  lambdas that *escape* (get bound, passed, and applied later) rather
  than only beta-redexes;
* :func:`random_t_program` -- a well-typed straight-line T component,
  built by a *typed random walk*: the generator mirrors the typechecker's
  ``InstrState`` and only ever emits an instruction that is applicable in
  the current state, finishing with a coherent ``halt``.

All are deterministic in their seed, so hypothesis can shrink on seeds.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.f.syntax import (
    App, BinOp, FArrow, FInt, Fold, FRec, FTupleT, FTVar, FUnit, If0,
    IntE, Lam, Proj, TupleE, Unfold, UnitE, Var,
)
from repro.tal.syntax import (
    Aop, AOP_NAMES, Balloc, Component, GP_REGISTERS, Halt, Ld, Mv,
    NIL_STACK, QEnd, Ralloc, RegOp, Salloc, seq, Sfree, Sld, Sst, St,
    StackTy, TBox, TInt, TRef, TUnit, TupleTy, WInt, WUnit,
)

__all__ = ["random_f_int_expr", "random_full_f_expr", "random_t_program"]


# ---------------------------------------------------------------------------
# F generator
# ---------------------------------------------------------------------------

def random_f_int_expr(seed: int, depth: int = 4):
    """A closed well-typed F expression of type int."""
    rng = random.Random(seed)
    counter = [0]

    def fresh(base: str) -> str:
        counter[0] += 1
        return f"{base}{counter[0]}"

    def gen_int(d: int, env: List[str]):
        # env lists in-scope int variables
        choices = ["lit"]
        if d > 0:
            choices += ["binop", "binop", "if0", "app", "proj", "mu"]
        if env:
            choices += ["var", "var"]
        kind = rng.choice(choices)
        if kind == "lit":
            return IntE(rng.randint(-9, 99))
        if kind == "var":
            return Var(rng.choice(env))
        if kind == "binop":
            op = rng.choice(["+", "-", "*"])
            return BinOp(op, gen_int(d - 1, env), gen_int(d - 1, env))
        if kind == "if0":
            return If0(gen_int(d - 1, env), gen_int(d - 1, env),
                       gen_int(d - 1, env))
        if kind == "app":
            x = fresh("x")
            body = gen_int(d - 1, env + [x])
            return App(Lam(((x, FInt()),), body), (gen_int(d - 1, env),))
        if kind == "proj":
            width = rng.randint(1, 3)
            index = rng.randrange(width)
            items = tuple(gen_int(d - 1, env) for _ in range(width))
            return Proj(index, TupleE(items))
        # mu: fold then immediately unfold (exercises iso-recursion)
        mu = FRec("a", FInt())
        return Unfold(Fold(mu, gen_int(d - 1, env)))

    return gen_int(depth, [])


# ---------------------------------------------------------------------------
# Full-F generator (type-directed, whole language)
# ---------------------------------------------------------------------------

# The closed universe of types the generator draws from.  Finite on
# purpose: every type is one the general tier's calling convention must
# handle (ints, unit, tuples, first-order and higher-order arrows, an
# iso-recursive wrapper), and a finite universe guarantees a variable of
# the wanted type is often in scope, so generated terms really do reuse
# their captures.
_INT = FInt()
_UNIT = FUnit()
_PAIR = FTupleT((_INT, _INT))
_ARROW1 = FArrow((_INT,), _INT)            # int -> int
_ARROW2 = FArrow((_INT, _INT), _INT)       # (int, int) -> int
_HIGHER = FArrow((_ARROW1,), _INT)         # (int -> int) -> int
_MU_INT = FRec("a", _INT)                  # mu a. int


def random_full_f_expr(seed: int, depth: int = 3):
    """A closed well-typed F expression of type ``int`` exercising the
    whole language (the general compilation tier's domain).

    Every lambda is non-recursive, so evaluation always terminates; the
    interesting structure is in *where* lambdas flow: they are bound to
    variables, captured by other lambdas, passed to higher-order
    functions, and only then applied.
    """
    rng = random.Random(seed)
    counter = [0]

    def fresh(base: str) -> str:
        counter[0] += 1
        return f"{base}{counter[0]}"

    def vars_of(env, ty):
        return [x for x, t in env if t == ty]

    def gen(ty, d, env):
        """An expression of type ``ty`` under ``env`` ([(name, type)])."""
        have = vars_of(env, ty)
        if ty == _INT:
            return gen_int(d, env, have)
        if ty == _UNIT:
            if have and rng.random() < 0.5:
                return Var(rng.choice(have))
            return UnitE()
        if ty == _PAIR:
            if have and rng.random() < 0.4:
                return Var(rng.choice(have))
            return TupleE((gen(_INT, d - 1, env), gen(_INT, d - 1, env)))
        if ty == _MU_INT:
            if have and rng.random() < 0.4:
                return Var(rng.choice(have))
            return Fold(_MU_INT, gen(_INT, d - 1, env))
        if isinstance(ty, FArrow):
            if have and rng.random() < 0.5:
                return Var(rng.choice(have))
            params = tuple((fresh("p"), t) for t in ty.params)
            body_env = env + list(params)
            return Lam(params, gen(ty.result, d - 1, body_env))
        raise AssertionError(f"unhandled type {ty}")

    def gen_int(d, env, have):
        choices = ["lit"]
        if have:
            choices += ["var", "var"]
        if d > 0:
            choices += ["binop", "binop", "if0", "call1", "call2",
                        "higher", "proj", "unfold", "let_fn", "seq_unit"]
        kind = rng.choice(choices)
        if kind == "lit":
            return IntE(rng.randint(-9, 99))
        if kind == "var":
            return Var(rng.choice(have))
        if kind == "binop":
            op = rng.choice(["+", "-", "*"])
            return BinOp(op, gen(_INT, d - 1, env), gen(_INT, d - 1, env))
        if kind == "if0":
            return If0(gen(_INT, d - 1, env), gen(_INT, d - 1, env),
                       gen(_INT, d - 1, env))
        if kind == "call1":
            return App(gen(_ARROW1, d - 1, env), (gen(_INT, d - 1, env),))
        if kind == "call2":
            return App(gen(_ARROW2, d - 1, env),
                       (gen(_INT, d - 1, env), gen(_INT, d - 1, env)))
        if kind == "higher":
            return App(gen(_HIGHER, d - 1, env),
                       (gen(_ARROW1, d - 1, env),))
        if kind == "proj":
            return Proj(rng.randrange(2), gen(_PAIR, d - 1, env))
        if kind == "unfold":
            return Unfold(gen(_MU_INT, d - 1, env))
        if kind == "let_fn":
            # bind a closure, then use it (possibly several levels down)
            f = fresh("f")
            fn_ty = rng.choice([_ARROW1, _ARROW2])
            body = gen(_INT, d - 1, env + [(f, fn_ty)])
            return App(Lam(((f, fn_ty),), body),
                       (gen(fn_ty, d - 1, env),))
        # seq_unit: evaluate a unit for effect-shape, return an int
        u = fresh("u")
        return App(Lam(((u, _UNIT),), gen(_INT, d - 1, env)),
                   (gen(_UNIT, d - 1, env),))

    return gen(_INT, depth, [])


# ---------------------------------------------------------------------------
# T generator (typed random walk)
# ---------------------------------------------------------------------------

class _Walk:
    """Mirrors the typing state while emitting applicable instructions."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.instrs: List = []
        self.regs: dict = {}          # reg -> 'int' | 'unit' | ('ref', n) | ('box', n)
        self.stack: List[str] = []    # slot kinds, top first

    def _free_reg(self):
        return self.rng.choice(GP_REGISTERS)

    def _reg_of(self, kind):
        options = [r for r, k in self.regs.items() if k == kind]
        return self.rng.choice(options) if options else None

    def step(self) -> None:
        moves = ["mv_int", "mv_unit", "salloc"]
        if self._reg_of("int"):
            moves += ["aop", "aop"]
        if self.stack:
            moves += ["sld", "sfree"]
            if self.regs:
                moves.append("sst")
            moves.append("alloc_tuple")
        tuple_regs = [r for r, k in self.regs.items()
                      if isinstance(k, tuple)]
        if tuple_regs:
            moves.append("ld")
            if any(k[0] == "ref" for k in self.regs.values()
                   if isinstance(k, tuple)):
                moves.append("st")
        move = self.rng.choice(moves)
        getattr(self, "_do_" + move)()

    def _do_mv_int(self):
        rd = self._free_reg()
        self.instrs.append(Mv(rd, WInt(self.rng.randint(-5, 5))))
        self.regs[rd] = "int"

    def _do_mv_unit(self):
        rd = self._free_reg()
        self.instrs.append(Mv(rd, WUnit()))
        self.regs[rd] = "unit"

    def _do_aop(self):
        rs = self._reg_of("int")
        rd = self._free_reg()
        op = self.rng.choice(AOP_NAMES)
        if self.rng.random() < 0.5:
            u = WInt(self.rng.randint(-3, 3))
        else:
            u = RegOp(rs)
        self.instrs.append(Aop(op, rd, rs, u))
        self.regs[rd] = "int"

    def _do_salloc(self):
        n = self.rng.randint(1, 3)
        self.instrs.append(Salloc(n))
        self.stack[:0] = ["unit"] * n

    def _do_sfree(self):
        n = self.rng.randint(1, len(self.stack))
        self.instrs.append(Sfree(n))
        del self.stack[:n]

    def _do_sld(self):
        i = self.rng.randrange(len(self.stack))
        rd = self._free_reg()
        self.instrs.append(Sld(rd, i))
        self.regs[rd] = self.stack[i]

    def _do_sst(self):
        i = self.rng.randrange(len(self.stack))
        rs = self.rng.choice(list(self.regs))
        self.instrs.append(Sst(i, rs))
        self.stack[i] = self.regs[rs]

    def _do_alloc_tuple(self):
        n = self.rng.randint(1, min(2, len(self.stack)))
        rd = self._free_reg()
        mutable = self.rng.random() < 0.5
        kinds = tuple(self.stack[:n])
        self.instrs.append((Ralloc if mutable else Balloc)(rd, n))
        del self.stack[:n]
        self.regs[rd] = (("ref" if mutable else "box"), kinds)

    def _do_ld(self):
        options = [r for r, k in self.regs.items() if isinstance(k, tuple)]
        rs = self.rng.choice(options)
        kinds = self.regs[rs][1]
        i = self.rng.randrange(len(kinds))
        rd = self._free_reg()
        if rd == rs:
            return  # loading over the pointer would lose our tracking
        self.instrs.append(Ld(rd, rs, i))
        self.regs[rd] = kinds[i]

    def _do_st(self):
        options = [r for r, k in self.regs.items()
                   if isinstance(k, tuple) and k[0] == "ref"]
        rd = self.rng.choice(options)
        kinds = self.regs[rd][1]
        slots = [i for i, k in enumerate(kinds)
                 if self._reg_of(k) is not None and not isinstance(k, tuple)]
        if not slots:
            return
        i = self.rng.choice(slots)
        rs = self._reg_of(kinds[i])
        self.instrs.append(St(rd, i, rs))

    def finish(self) -> Component:
        # clear the stack, put an int in r1, halt at end{int; nil}
        if self.stack:
            self.instrs.append(Sfree(len(self.stack)))
        self.instrs.append(Mv("r1", WInt(self.rng.randint(0, 9))))
        self.instrs.append(Halt(TInt(), NIL_STACK, "r1"))
        return Component(seq(*self.instrs))


def random_t_program(seed: int, length: int = 12) -> Component:
    """A well-typed straight-line T component halting with an int."""
    rng = random.Random(seed)
    walk = _Walk(rng)
    for _ in range(length):
        walk.step()
    return walk.finish()

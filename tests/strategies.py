"""Random well-typed program generators for the property-based tests.

Two generators:

* :func:`random_f_int_expr` -- a closed, well-typed F expression of type
  ``int``, built top-down from a seeded RNG (arithmetic, branches,
  applications, tuples/projections, fold/unfold);
* :func:`random_t_program` -- a well-typed straight-line T component,
  built by a *typed random walk*: the generator mirrors the typechecker's
  ``InstrState`` and only ever emits an instruction that is applicable in
  the current state, finishing with a coherent ``halt``.

Both are deterministic in their seed, so hypothesis can shrink on seeds.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.f.syntax import (
    App, BinOp, FArrow, FInt, Fold, FRec, FTupleT, FTVar, If0, IntE, Lam,
    Proj, TupleE, Unfold, Var,
)
from repro.tal.syntax import (
    Aop, AOP_NAMES, Balloc, Component, GP_REGISTERS, Halt, Ld, Mv,
    NIL_STACK, QEnd, Ralloc, RegOp, Salloc, seq, Sfree, Sld, Sst, St,
    StackTy, TBox, TInt, TRef, TUnit, TupleTy, WInt, WUnit,
)

__all__ = ["random_f_int_expr", "random_t_program"]


# ---------------------------------------------------------------------------
# F generator
# ---------------------------------------------------------------------------

def random_f_int_expr(seed: int, depth: int = 4):
    """A closed well-typed F expression of type int."""
    rng = random.Random(seed)
    counter = [0]

    def fresh(base: str) -> str:
        counter[0] += 1
        return f"{base}{counter[0]}"

    def gen_int(d: int, env: List[str]):
        # env lists in-scope int variables
        choices = ["lit"]
        if d > 0:
            choices += ["binop", "binop", "if0", "app", "proj", "mu"]
        if env:
            choices += ["var", "var"]
        kind = rng.choice(choices)
        if kind == "lit":
            return IntE(rng.randint(-9, 99))
        if kind == "var":
            return Var(rng.choice(env))
        if kind == "binop":
            op = rng.choice(["+", "-", "*"])
            return BinOp(op, gen_int(d - 1, env), gen_int(d - 1, env))
        if kind == "if0":
            return If0(gen_int(d - 1, env), gen_int(d - 1, env),
                       gen_int(d - 1, env))
        if kind == "app":
            x = fresh("x")
            body = gen_int(d - 1, env + [x])
            return App(Lam(((x, FInt()),), body), (gen_int(d - 1, env),))
        if kind == "proj":
            width = rng.randint(1, 3)
            index = rng.randrange(width)
            items = tuple(gen_int(d - 1, env) for _ in range(width))
            return Proj(index, TupleE(items))
        # mu: fold then immediately unfold (exercises iso-recursion)
        mu = FRec("a", FInt())
        return Unfold(Fold(mu, gen_int(d - 1, env)))

    return gen_int(depth, [])


# ---------------------------------------------------------------------------
# T generator (typed random walk)
# ---------------------------------------------------------------------------

class _Walk:
    """Mirrors the typing state while emitting applicable instructions."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.instrs: List = []
        self.regs: dict = {}          # reg -> 'int' | 'unit' | ('ref', n) | ('box', n)
        self.stack: List[str] = []    # slot kinds, top first

    def _free_reg(self):
        return self.rng.choice(GP_REGISTERS)

    def _reg_of(self, kind):
        options = [r for r, k in self.regs.items() if k == kind]
        return self.rng.choice(options) if options else None

    def step(self) -> None:
        moves = ["mv_int", "mv_unit", "salloc"]
        if self._reg_of("int"):
            moves += ["aop", "aop"]
        if self.stack:
            moves += ["sld", "sfree"]
            if self.regs:
                moves.append("sst")
            moves.append("alloc_tuple")
        tuple_regs = [r for r, k in self.regs.items()
                      if isinstance(k, tuple)]
        if tuple_regs:
            moves.append("ld")
            if any(k[0] == "ref" for k in self.regs.values()
                   if isinstance(k, tuple)):
                moves.append("st")
        move = self.rng.choice(moves)
        getattr(self, "_do_" + move)()

    def _do_mv_int(self):
        rd = self._free_reg()
        self.instrs.append(Mv(rd, WInt(self.rng.randint(-5, 5))))
        self.regs[rd] = "int"

    def _do_mv_unit(self):
        rd = self._free_reg()
        self.instrs.append(Mv(rd, WUnit()))
        self.regs[rd] = "unit"

    def _do_aop(self):
        rs = self._reg_of("int")
        rd = self._free_reg()
        op = self.rng.choice(AOP_NAMES)
        if self.rng.random() < 0.5:
            u = WInt(self.rng.randint(-3, 3))
        else:
            u = RegOp(rs)
        self.instrs.append(Aop(op, rd, rs, u))
        self.regs[rd] = "int"

    def _do_salloc(self):
        n = self.rng.randint(1, 3)
        self.instrs.append(Salloc(n))
        self.stack[:0] = ["unit"] * n

    def _do_sfree(self):
        n = self.rng.randint(1, len(self.stack))
        self.instrs.append(Sfree(n))
        del self.stack[:n]

    def _do_sld(self):
        i = self.rng.randrange(len(self.stack))
        rd = self._free_reg()
        self.instrs.append(Sld(rd, i))
        self.regs[rd] = self.stack[i]

    def _do_sst(self):
        i = self.rng.randrange(len(self.stack))
        rs = self.rng.choice(list(self.regs))
        self.instrs.append(Sst(i, rs))
        self.stack[i] = self.regs[rs]

    def _do_alloc_tuple(self):
        n = self.rng.randint(1, min(2, len(self.stack)))
        rd = self._free_reg()
        mutable = self.rng.random() < 0.5
        kinds = tuple(self.stack[:n])
        self.instrs.append((Ralloc if mutable else Balloc)(rd, n))
        del self.stack[:n]
        self.regs[rd] = (("ref" if mutable else "box"), kinds)

    def _do_ld(self):
        options = [r for r, k in self.regs.items() if isinstance(k, tuple)]
        rs = self.rng.choice(options)
        kinds = self.regs[rs][1]
        i = self.rng.randrange(len(kinds))
        rd = self._free_reg()
        if rd == rs:
            return  # loading over the pointer would lose our tracking
        self.instrs.append(Ld(rd, rs, i))
        self.regs[rd] = kinds[i]

    def _do_st(self):
        options = [r for r, k in self.regs.items()
                   if isinstance(k, tuple) and k[0] == "ref"]
        rd = self.rng.choice(options)
        kinds = self.regs[rd][1]
        slots = [i for i, k in enumerate(kinds)
                 if self._reg_of(k) is not None and not isinstance(k, tuple)]
        if not slots:
            return
        i = self.rng.choice(slots)
        rs = self._reg_of(kinds[i])
        self.instrs.append(St(rd, i, rs))

    def finish(self) -> Component:
        # clear the stack, put an int in r1, halt at end{int; nil}
        if self.stack:
            self.instrs.append(Sfree(len(self.stack)))
        self.instrs.append(Mv("r1", WInt(self.rng.randint(0, 9))))
        self.instrs.append(Halt(TInt(), NIL_STACK, "r1"))
        return Component(seq(*self.instrs))


def random_t_program(seed: int, length: int = 12) -> Component:
    """A well-typed straight-line T component halting with an int."""
    rng = random.Random(seed)
    walk = _Walk(rng)
    for _ in range(length):
        walk.step()
    return walk.finish()

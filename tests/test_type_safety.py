"""Type safety as a testable property (the paper's soundness theorems).

Well-typed programs don't get stuck: for randomly generated well-typed
programs (both F and T), the machine either halts with a value of the
announced type or runs out of fuel -- it never raises
:class:`~repro.errors.MachineError`.  This is the executable shadow of
progress + preservation, applied to thousands of machine states.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FuelExhausted, MachineError
from repro.f.eval import evaluate
from repro.f.syntax import FInt, IntE
from repro.f.typecheck import typecheck
from repro.ft.machine import evaluate_ft
from repro.tal.machine import run_component
from repro.tal.syntax import TInt, WInt
from repro.tal.typecheck import check_program, type_of_word
from repro.tal.syntax import HeapTy

from tests.strategies import random_f_int_expr, random_t_program


class TestFTypeSafety:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=150, deadline=None)
    def test_random_f_programs_run_to_int(self, seed):
        expr = random_f_int_expr(seed)
        assert typecheck(expr) == FInt()     # generator soundness
        value = evaluate(expr, fuel=100_000)
        assert isinstance(value, IntE)       # progress: never stuck

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_f_and_ft_machines_agree(self, seed):
        """The pure-F stepper and the mixed machine agree on pure F."""
        expr = random_f_int_expr(seed, depth=3)
        pure = evaluate(expr, fuel=100_000)
        mixed, _ = evaluate_ft(expr, fuel=100_000)
        assert pure == mixed


class TestTTypeSafety:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=150, deadline=None)
    def test_random_t_programs_typecheck(self, seed):
        comp = random_t_program(seed)
        ty, sigma = check_program(comp, TInt())
        assert ty == TInt()

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=150, deadline=None)
    def test_random_t_programs_never_get_stuck(self, seed):
        comp = random_t_program(seed)
        check_program(comp, TInt())          # well-typed by construction
        halted, machine = run_component(comp, fuel=50_000)
        # preservation at the observable boundary: the halt value
        # inhabits the announced type
        assert isinstance(halted.word, WInt)
        assert type_of_word(HeapTy(), halted.word) == TInt()
        # the halt annotation promised an empty stack
        assert machine.memory.depth == 0

    @given(st.integers(min_value=0, max_value=5_000),
           st.integers(min_value=1, max_value=25))
    @settings(max_examples=80, deadline=None)
    def test_longer_walks(self, seed, length):
        comp = random_t_program(seed, length=length)
        check_program(comp, TInt())
        run_component(comp, fuel=50_000)


class TestIllTypedProgramsCanGetStuck:
    """The counterpoint: without the type system the machine *does* reach
    stuck states -- evidence the safety tests are not vacuous."""

    def test_stuck_state_exists(self):
        from repro.tal.syntax import (
            Component, Halt, Jmp, Mv, NIL_STACK, RegOp, seq,
        )

        comp = Component(seq(Mv("r1", WInt(3)), Jmp(RegOp("r1"))))
        with pytest.raises(MachineError):
            run_component(comp)

    def test_the_same_program_is_rejected_statically(self):
        from repro.errors import FTTypeError
        from repro.tal.syntax import Component, Jmp, Mv, RegOp, seq

        comp = Component(seq(Mv("r1", WInt(3)), Jmp(RegOp("r1"))))
        with pytest.raises(FTTypeError):
            check_program(comp, TInt())

"""JIT safety-net tests (:mod:`repro.resilience.safety_net`).

The differential guard's contract: a caller of :func:`run_guarded` can
never observe a jit-induced failure or wrong answer.  Faults (including
injected chaos faults) fall back to the interpreter; the offending
lambdas land in the :class:`Quarantine` circuit breaker and are never
re-jitted.  Resource exhaustion is a verdict, not a fault, and
propagates unchanged.
"""

import pytest

from repro.errors import FuelExhausted, InjectedFault
from repro.ft.machine import evaluate_ft
from repro.jit.compiler import clear_compile_cache
from repro.papers_examples import resolve_example
from repro.resilience.chaos import FaultPlane
from repro.resilience.safety_net import (
    QUARANTINE, Quarantine, SafetyNetReport, jit_rewrite_guarded,
    run_guarded,
)


@pytest.fixture(autouse=True)
def _fresh_compile_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


def _jit_source():
    _, build = resolve_example("jit-source")
    return build()


def _reference():
    value, _ = evaluate_ft(_jit_source())
    return str(value)


class TestCleanPath:
    def test_guarded_run_matches_interpreter(self):
        q = Quarantine()
        value, _, report = run_guarded(_jit_source(), quarantine=q)
        assert str(value) == _reference()
        assert report.jitted == 1
        assert not report.fell_back
        assert len(q) == 0

    def test_uncompilable_program_skips_the_guard(self):
        _, build = resolve_example("fact-f")
        expected, _ = evaluate_ft(build())
        value, _, report = run_guarded(build(), quarantine=Quarantine())
        assert str(value) == str(expected)
        assert report.jitted == 0


class TestCompileFaults:
    def test_compile_fault_quarantines_and_interprets(self):
        q = Quarantine()
        with FaultPlane(seed=1, rate=1.0, seams=["jit.compile"]):
            value, _, report = run_guarded(_jit_source(), quarantine=q)
        assert str(value) == _reference()    # identical result
        assert report.jitted == 0
        assert len(q) == 1
        assert "compile fault" in q.reasons()[0][1]

    def test_rewrite_alone_reports_the_quarantined_lambda(self):
        q = Quarantine()
        with FaultPlane(seed=1, rate=1.0, seams=["jit.compile"]):
            rewritten, compiled, report = jit_rewrite_guarded(
                _jit_source(), q)
        assert compiled == []
        assert len(report.quarantined) == 1


class TestRunFaults:
    def test_run_fault_falls_back_with_identical_result(self):
        q = Quarantine()
        with FaultPlane(seed=2, rate=1.0, seams=["jit.run"]):
            value, _, report = run_guarded(_jit_source(), quarantine=q)
        assert str(value) == _reference()
        assert report.fell_back
        assert report.fault and "InjectedFault" in report.fault
        assert len(q) == 1               # every compiled source quarantined

    def test_quarantined_lambda_is_never_rejitted(self):
        q = Quarantine()
        with FaultPlane(seed=2, rate=1.0, seams=["jit.run"]):
            run_guarded(_jit_source(), quarantine=q)
        # Second run, no fault plane: the breaker keeps it interpreted.
        value, _, report = run_guarded(_jit_source(), quarantine=q)
        assert str(value) == _reference()
        assert report.jitted == 0
        assert report.skipped == 1
        assert q.hits == 1

    def test_interpreter_fault_propagates(self):
        # A fault outside jitted code is NOT the JIT's to absorb: with
        # no compiled lambda in the program the guard never re-runs.
        _, build = resolve_example("fact-t")
        with FaultPlane(seed=1, rate=1.0, seams=["heap.alloc"]):
            with pytest.raises(InjectedFault):
                run_guarded(build(), quarantine=Quarantine())


class TestResourceExhaustionIsAVerdict:
    def test_fuel_exhaustion_propagates_not_falls_back(self):
        q = Quarantine()
        with pytest.raises(FuelExhausted):
            run_guarded(_jit_source(), fuel=1, quarantine=q)
        assert len(q) == 0               # nothing quarantined


class TestQuarantine:
    def test_add_is_idempotent(self):
        from repro.f.syntax import BinOp, FInt, IntE, Lam, Var

        q = Quarantine()
        lam = Lam((("x", FInt()),), BinOp("+", Var("x"), IntE(1)))
        q.add(lam, "first")
        q.add(lam, "second")
        assert len(q) == 1
        assert q.reasons()[0][1] == "first"

    def test_stats_shape(self):
        q = Quarantine()
        stats = q.stats()
        assert stats == {"size": 0, "hits": 0, "entries": []}

    def test_clear(self):
        from repro.f.syntax import BinOp, FInt, IntE, Lam, Var

        q = Quarantine()
        q.add(Lam((("x", FInt()),), BinOp("+", Var("x"), IntE(1))), "x")
        q.skip(next(iter(q._entries)))
        q.clear()
        assert len(q) == 0 and q.hits == 0

    def test_module_quarantine_surfaces_in_stats_cli(self, capsys):
        import json

        from repro.cli import main

        QUARANTINE.clear()
        try:
            with FaultPlane(seed=2, rate=1.0, seams=["jit.run"]):
                run_guarded(_jit_source())    # default quarantine
            assert main(["stats", "--json"]) == 0
            snapshot = json.loads(capsys.readouterr().out)
            assert snapshot["jit_quarantine"]["size"] == 1
        finally:
            QUARANTINE.clear()

    def test_report_json_shape(self):
        report = SafetyNetReport(jitted=2, skipped=1, fell_back=True,
                                 fault="boom", quarantined=("l",))
        assert report.to_json() == {
            "jitted": 2, "skipped": 1, "fell_back": True,
            "fault": "boom", "quarantined": ["l"]}

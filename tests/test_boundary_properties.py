"""Property tests for the boundary translations (Fig 10's metatheory):

* first-order values survive a TF-then-FT round trip unchanged;
* the round trip of a *function* is behaviourally identity (tested by
  application on generated arguments);
* translated words inhabit the translated type (type preservation of the
  value translation).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.equiv.generators import values_of
from repro.f.syntax import (
    App, FArrow, FInt, Fold, FRec, FTupleT, FUnit, IntE, is_value, TupleE,
    UnitE,
)
from repro.ft.boundary import f_to_t, t_to_f
from repro.ft.machine import FTMachine
from repro.ft.translate import type_translation
from repro.tal.equality import types_equal
from repro.tal.heap import Memory
from repro.tal.syntax import HeapTy
from repro.tal.typecheck import TalTypechecker


def _first_order_type(seed: int, depth: int = 2):
    rng = random.Random(seed)

    def gen(d):
        opts = ["int", "unit"]
        if d > 0:
            opts += ["tuple", "mu"]
        kind = rng.choice(opts)
        if kind == "int":
            return FInt()
        if kind == "unit":
            return FUnit()
        if kind == "tuple":
            return FTupleT(tuple(gen(d - 1)
                                 for _ in range(rng.randint(1, 3))))
        return FRec("a", gen(d - 1))

    return gen(depth)


def _value_of(ty, seed):
    rng = random.Random(seed)
    if isinstance(ty, FInt):
        return IntE(rng.randint(-99, 99))
    if isinstance(ty, FUnit):
        return UnitE()
    if isinstance(ty, FTupleT):
        return TupleE(tuple(_value_of(t, seed + i + 1)
                            for i, t in enumerate(ty.items)))
    if isinstance(ty, FRec):
        return Fold(ty, _value_of(ty.unroll(), seed + 1))
    raise AssertionError(ty)


class TestFirstOrderRoundTrip:
    @given(st.integers(0, 5_000))
    @settings(max_examples=200, deadline=None)
    def test_round_trip_identity(self, seed):
        ty = _first_order_type(seed)
        v = _value_of(ty, seed)
        mem = Memory()
        w = f_to_t(v, ty, mem)
        assert t_to_f(w, ty, mem) == v

    @given(st.integers(0, 5_000))
    @settings(max_examples=100, deadline=None)
    def test_translated_word_inhabits_translated_type(self, seed):
        ty = _first_order_type(seed)
        v = _value_of(ty, seed)
        mem = Memory()
        w = f_to_t(v, ty, mem)
        # synthesize Psi for everything allocated during translation;
        # allocation order is inner-first, so an incremental Psi suffices
        entries = {}
        for loc, cell in mem.heap.items():
            checker = TalTypechecker(HeapTy.of(entries))
            entries[loc] = (cell.nu, checker.check_heap_value(cell.value))
        psi = HeapTy.of(entries)
        from repro.tal.syntax import RegFileTy

        word_ty = TalTypechecker(psi).type_of_operand((), RegFileTy(), w)
        assert types_equal(word_ty, type_translation(ty))


class TestFunctionRoundTrip:
    @given(st.integers(0, 300))
    @settings(max_examples=25, deadline=None)
    def test_wrapped_function_behaves_identically(self, seed):
        rng = random.Random(seed)
        arrow = FArrow((FInt(),), FInt())
        candidates = list(values_of(arrow, rng, budget=2))
        fn = candidates[seed % len(candidates)]
        machine = FTMachine(fuel=10**6)
        wrapped = t_to_f(f_to_t(fn, arrow, machine.memory), arrow,
                         machine.memory)
        for n in (-3, 0, 4):
            direct = machine.eval_fexpr(App(fn, (IntE(n),)))
            through = machine.eval_fexpr(App(wrapped, (IntE(n),)))
            assert direct == through

    def test_heap_grows_only_with_allocating_types(self):
        mem = Memory()
        f_to_t(IntE(1), FInt(), mem)
        assert not mem.heap  # ints allocate nothing
        f_to_t(TupleE((IntE(1),)), FTupleT((FInt(),)), mem)
        assert len(mem.heap) == 1

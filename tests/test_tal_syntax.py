"""Unit tests for T abstract syntax and its context structures (Fig 1)."""

import pytest

from repro.tal.syntax import (
    Aop, Call, check_register, CodeType, Component, DeltaBind, Fold, Halt,
    HCode, HeapTy, HTuple, InstrSeq, Jmp, Loc, Mv, NIL_STACK, Pack, QEnd,
    QEps, QIdx, QOut, QReg, RegFileTy, RegOp, Ret, Salloc, seq, Sfree,
    StackTy, TBox, TExists, TInt, TRec, TRef, TupleTy, TUnit, TVar, TyApp,
    WInt, WLoc, WUnit, is_word_value, BOX, REF,
)


class TestRegisters:
    def test_valid_registers(self):
        for r in ("r1", "r7", "ra"):
            assert check_register(r) == r

    def test_invalid_register(self):
        with pytest.raises(ValueError):
            check_register("r8")

    def test_instruction_validates_registers(self):
        with pytest.raises(ValueError):
            Mv("r9", WInt(1))


class TestStackTy:
    def test_nil_prints(self):
        assert str(NIL_STACK) == "nil"

    def test_prefix_and_tail_print(self):
        sigma = StackTy((TInt(), TUnit()), "z")
        assert str(sigma) == "int :: unit :: z"

    def test_cons_pushes_front(self):
        sigma = NIL_STACK.cons(TInt(), TUnit())
        assert sigma.prefix == (TInt(), TUnit())

    def test_slot_lookup(self):
        sigma = StackTy((TInt(), TUnit()), None)
        assert sigma.slot(1) == TUnit()

    def test_slot_out_of_range(self):
        with pytest.raises(IndexError):
            StackTy((TInt(),), "z").slot(1)

    def test_drop(self):
        sigma = StackTy((TInt(), TUnit()), "z").drop(1)
        assert sigma == StackTy((TUnit(),), "z")

    def test_drop_too_many(self):
        with pytest.raises(IndexError):
            NIL_STACK.drop(1)

    def test_set_slot(self):
        sigma = StackTy((TInt(),), "z").set_slot(0, TUnit())
        assert sigma.slot(0) == TUnit()

    def test_with_tail_concatenates(self):
        front = StackTy((TInt(),), "z")
        full = front.with_tail(StackTy((TUnit(),), None))
        assert full == StackTy((TInt(), TUnit()), None)

    def test_with_tail_requires_abstract(self):
        with pytest.raises(ValueError):
            NIL_STACK.with_tail(NIL_STACK)


class TestRegFileTy:
    def test_empty_prints_dot(self):
        assert str(RegFileTy()) == "."

    def test_of_and_get(self):
        chi = RegFileTy.of(r1=TInt(), ra=TUnit())
        assert chi.get("r1") == TInt()
        assert chi.get("r2") is None

    def test_set_updates(self):
        chi = RegFileTy.of(r1=TInt()).set("r1", TUnit())
        assert chi.get("r1") == TUnit()

    def test_set_extends(self):
        chi = RegFileTy().set("r3", TInt())
        assert "r3" in chi

    def test_without(self):
        chi = RegFileTy.of(r1=TInt(), r2=TInt()).without("r1")
        assert "r1" not in chi and "r2" in chi

    def test_canonical_ordering(self):
        a = RegFileTy((("r2", TInt()), ("r1", TUnit())))
        b = RegFileTy((("r1", TUnit()), ("r2", TInt())))
        assert a == b

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            RegFileTy((("r1", TInt()), ("r1", TUnit())))


class TestHeapTy:
    def test_lookup(self):
        psi = HeapTy.of({Loc("l"): (BOX, TupleTy((TInt(),)))})
        assert psi.get(Loc("l")) == (BOX, TupleTy((TInt(),)))

    def test_missing(self):
        assert HeapTy().get(Loc("l")) is None

    def test_extend_and_contains(self):
        a = HeapTy.of({Loc("a"): (BOX, TupleTy(()))})
        b = HeapTy.of({Loc("b"): (REF, TupleTy((TInt(),)))})
        both = a.extend(b)
        assert Loc("a") in both and Loc("b") in both

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            HeapTy(((Loc("l"), BOX, TupleTy(())),
                    (Loc("l"), BOX, TupleTy(())),))

    def test_bad_mutability_rejected(self):
        with pytest.raises(ValueError):
            HeapTy(((Loc("l"), "mut", TupleTy(())),))


class TestWordAndSmallValues:
    def test_words_are_word_values(self):
        for w in (WUnit(), WInt(3), WLoc(Loc("l"))):
            assert is_word_value(w)

    def test_register_operand_is_not_word(self):
        assert not is_word_value(RegOp("r1"))

    def test_pack_propagates(self):
        ex = TExists("a", TVar("a"))
        assert is_word_value(Pack(TInt(), WInt(1), ex))
        assert not is_word_value(Pack(TInt(), RegOp("r1"), ex))

    def test_fold_propagates(self):
        mu = TRec("a", TInt())
        assert is_word_value(Fold(mu, WInt(1)))
        assert not is_word_value(Fold(mu, RegOp("r1")))

    def test_tyapp_propagates(self):
        assert is_word_value(TyApp(WLoc(Loc("l")), (TInt(),)))
        assert not is_word_value(TyApp(RegOp("r1"), (TInt(),)))

    def test_tyapp_rejects_non_omega(self):
        with pytest.raises(TypeError):
            TyApp(WLoc(Loc("l")), (42,))


class TestInstrSeq:
    def test_seq_builds(self):
        iseq = seq(Mv("r1", WInt(1)), Halt(TInt(), NIL_STACK, "r1"))
        assert len(iseq.instrs) == 1
        assert isinstance(iseq.term, Halt)

    def test_seq_requires_terminator(self):
        with pytest.raises(ValueError):
            seq(Mv("r1", WInt(1)))

    def test_seq_rejects_misplaced_terminator(self):
        with pytest.raises(TypeError):
            seq(Halt(TInt(), NIL_STACK, "r1"), Mv("r1", WInt(1)),
                Halt(TInt(), NIL_STACK, "r1"))

    def test_cons_and_rest(self):
        iseq = seq(Salloc(1), Sfree(1), Halt(TInt(), NIL_STACK, "r1"))
        assert iseq.head == Salloc(1)
        assert iseq.rest.head == Sfree(1)
        assert iseq.cons(Mv("r1", WInt(0))).head == Mv("r1", WInt(0))

    def test_rest_of_empty_raises(self):
        iseq = seq(Halt(TInt(), NIL_STACK, "r1"))
        with pytest.raises(IndexError):
            iseq.rest


class TestComponent:
    def test_heap_dict(self):
        block = HCode((), RegFileTy.of(r1=TInt()), NIL_STACK,
                      QEnd(TInt(), NIL_STACK),
                      seq(Halt(TInt(), NIL_STACK, "r1")))
        comp = Component(seq(Jmp(WLoc(Loc("l")))), ((Loc("l"), block),))
        assert comp.heap_dict() == {Loc("l"): block}

    def test_duplicate_labels_rejected(self):
        tup = HTuple((WInt(1),))
        with pytest.raises(ValueError):
            Component(seq(Halt(TInt(), NIL_STACK, "r1")),
                      ((Loc("l"), tup), (Loc("l"), tup)))

    def test_accepts_dict_heap(self):
        comp = Component(seq(Halt(TInt(), NIL_STACK, "r1")),
                         {Loc("l"): HTuple((WInt(1),))})
        assert comp.heap[0][0] == Loc("l")


class TestPrinting:
    def test_code_type_prints(self):
        ct = CodeType(
            (DeltaBind("zeta", "z"), DeltaBind("eps", "e")),
            RegFileTy.of(r1=TInt()), StackTy((), "z"), QReg("ra"))
        assert str(ct) == "forall[zeta z, eps e].{r1: int; z} ra"

    def test_markers_print(self):
        assert str(QReg("ra")) == "ra"
        assert str(QIdx(2)) == "2"
        assert str(QEps("e")) == "e"
        assert str(QOut()) == "out"
        assert str(QEnd(TInt(), NIL_STACK)) == "end{int; nil}"

    def test_ref_and_box_print(self):
        assert str(TRef((TInt(),))) == "ref <int>"
        assert str(TBox(TupleTy((TInt(), TUnit())))) == "box <int, unit>"

    def test_instructions_print(self):
        assert str(Aop("add", "r1", "r2", WInt(3))) == "add r1, r2, 3"
        assert str(Call(WLoc(Loc("l")), NIL_STACK,
                        QEnd(TInt(), NIL_STACK))) == \
            "call l {nil, end{int; nil}}"
        assert str(Ret("ra", "r1")) == "ret ra {r1}"

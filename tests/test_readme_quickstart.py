"""The README's quickstart code must actually work (docs-as-tests)."""

from repro.f.syntax import App, FArrow, FInt, IntE, Lam, Var
from repro.ft.machine import evaluate_ft
from repro.ft.syntax import Boundary, Protect
from repro.ft.translate import continuation_type, type_translation
from repro.ft.typecheck import check_ft_expr
from repro.tal.syntax import (
    Aop, Component, DeltaBind, Halt, HCode, Loc, Mv, QReg, RegFileTy, Ret,
    Sfree, Sld, StackTy, TInt, WInt, WLoc, seq,
)


def build_quickstart_double():
    """Verbatim from README.md's quickstart section."""
    arrow = FArrow((FInt(),), FInt())
    zs = StackTy((), "z")
    block = HCode(
        (DeltaBind("zeta", "z"), DeltaBind("eps", "e")),
        RegFileTy.of(ra=continuation_type(TInt(), zs)),
        StackTy((TInt(),), "z"),
        QReg("ra"),
        seq(Sld("r1", 0), Aop("mul", "r1", "r1", WInt(2)),
            Sfree(1), Ret("ra", "r1")))
    comp = Component(
        seq(Protect((), "z"), Mv("r1", WLoc(Loc("dbl"))),
            Halt(type_translation(arrow), zs, "r1")),
        ((Loc("dbl"), block),))
    return Lam((("x", FInt()),), App(Boundary(arrow, comp), (Var("x"),)))


def test_quickstart_types_as_advertised():
    double = build_quickstart_double()
    assert str(check_ft_expr(double)[0]) == "(int) -> int"


def test_quickstart_evaluates_as_advertised():
    double = build_quickstart_double()
    value, _ = evaluate_ft(App(double, (IntE(21),)))
    assert value == IntE(42)


def test_quickstart_cli_line_works(capsys, tmp_path, monkeypatch):
    import io
    import sys

    from repro.cli import main

    monkeypatch.setattr(sys, "stdin",
                        io.StringIO("(lam (x: int). (x * 2)) (21)"))
    assert main(["run", "-"]) == 0
    assert "value: 42" in capsys.readouterr().out


def test_quickstart_linking_lines_work(capsys, tmp_path):
    """Verbatim from README.md's separate-compilation snippet."""
    import json

    from repro.cli import main

    manifest = tmp_path / "prog.json"
    manifest.write_text(json.dumps({
        "components": {
            "double": "lam (x: int). (x + x)",
            "quad": "lam (x: int). double (double x)",
            "fact": {"builtin": "fact-t"},
        },
        "main": "quad (fact 3)",
    }))
    store = str(tmp_path / ".store")
    assert main(["build", str(manifest), "--store", store]) == 0
    assert capsys.readouterr().out.count("compiled") == 3
    assert main(["build", str(manifest), "--store", store]) == 0
    assert capsys.readouterr().out.count("cached") == 3
    assert main(["link", str(manifest), "--store", store, "--run"]) == 0
    out = capsys.readouterr().out
    assert "type: int" in out and "value: 24" in out

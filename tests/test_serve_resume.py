"""Serve-layer suspend/resume tests: the ``resume`` job kind, the
``suspended`` / ``resource_exhausted`` statuses, and snapshot hand-off
across worker processes.

A checkpointing ``run`` that exhausts its fuel slice comes back
``suspended`` with a content-addressed wire snapshot in its output; a
``resume`` job carries that snapshot (to any worker -- snapshots are
self-contained bytes) and continues with a fresh slice.
"""

import pytest

from repro.serve.cache import job_cache_key
from repro.serve.executor import execute_job
from repro.serve.protocol import Job, JobOptions, ProtocolError


def _suspend(example="fact-f", fuel=10, **opts):
    return execute_job(Job("run", example=example,
                           options=JobOptions(fuel=fuel, checkpoint=True,
                                              **opts)))


def _resume(prev, fuel=10, checkpoint=True):
    return execute_job(Job("resume", snapshot=prev.output["snapshot"],
                           options=JobOptions(fuel=fuel,
                                              checkpoint=checkpoint)))


class TestProtocol:
    def test_resume_requires_snapshot(self):
        with pytest.raises(ProtocolError):
            Job("resume", source="(1 + 2)")
        with pytest.raises(ProtocolError):
            Job("resume")

    def test_snapshot_only_on_resume(self):
        with pytest.raises(ProtocolError):
            Job("run", source="(1 + 2)", snapshot={"kind": "ft"})

    def test_checkpoint_and_jit_are_exclusive(self):
        with pytest.raises(ProtocolError):
            Job("run", source="(1 + 2)",
                options=JobOptions(checkpoint=True, jit=True))

    def test_resume_wire_roundtrip(self):
        job = Job("resume", id="r1",
                  snapshot={"kind": "ft", "digest": "d", "data": ""},
                  options=JobOptions(fuel=5))
        back = Job.from_dict(job.to_dict())
        assert back.snapshot == job.snapshot

    def test_cache_key_distinguishes_snapshots(self):
        a = Job("resume", snapshot={"kind": "ft", "digest": "aa",
                                    "data": ""})
        b = Job("resume", snapshot={"kind": "ft", "digest": "bb",
                                    "data": ""})
        assert job_cache_key(a) != job_cache_key(b)


class TestExecutorSuspendResume:
    def test_suspended_result_shape(self):
        result = _suspend()
        assert result.status == "suspended"
        wire = result.output["snapshot"]
        assert set(wire) == {"kind", "digest", "data"}
        assert result.output["spent"]["fuel_used"] > 0

    def test_resume_to_completion(self):
        result = _suspend()
        final = execute_job(Job(
            "resume", snapshot=result.output["snapshot"],
            options=JobOptions(fuel=1_000_000)))
        assert final.status == "ok"
        assert final.output["value"] == "720"
        assert final.output["resumed_from"] == \
            result.output["snapshot"]["digest"]

    def test_multi_hop_resume_chain(self):
        result = _suspend(fuel=7)
        hops = 0
        while result.status == "suspended":
            result = _resume(result, fuel=7)
            hops += 1
            assert hops < 50
        assert result.status == "ok" and result.output["value"] == "720"
        assert hops > 1                  # it genuinely hopped

    def test_component_resume(self):
        src = ("(mv r1, 7; mv r2, 3; add r1, r1, r2; add r1, r1, r1; "
               "halt int, nil {r1}, .)")
        result = execute_job(Job(
            "run", source=src,
            options=JobOptions(fuel=2, checkpoint=True)))
        assert result.status == "suspended"
        while result.status == "suspended":
            result = _resume(result, fuel=2)
        assert result.status == "ok" and result.output["halted"] == "20"

    def test_without_checkpoint_exhaustion_is_terminal(self):
        result = execute_job(Job("run", example="fact-f",
                                 options=JobOptions(fuel=10)))
        assert result.status == "fuel_exhausted"
        assert "snapshot" not in result.output

    def test_corrupt_snapshot_is_an_error_result(self):
        result = _suspend()
        wire = dict(result.output["snapshot"])
        wire["digest"] = "0" * 64
        final = execute_job(Job("resume", snapshot=wire,
                                options=JobOptions(fuel=100)))
        assert final.status == "error"
        assert final.error_type == "SnapshotError"

    def test_resource_exhausted_status(self):
        result = execute_job(Job("run", example="fact-t",
                                 options=JobOptions(heap=1)))
        assert result.status == "resource_exhausted"
        assert result.output["resource"] == "heap"
        assert result.error_type == "HeapExhausted"

    def test_jit_guarded_run(self):
        result = execute_job(Job("run", example="jit-source",
                                 options=JobOptions(jit=True)))
        assert result.status == "ok"
        assert result.output["value"] == "2"
        assert result.output["jit"]["jitted"] == 1


class TestCrossProcessResume:
    """The point of content-addressed snapshots: suspend in one worker
    process, resume in another."""

    def test_resume_on_a_different_worker(self):
        from repro.serve.pool import WorkerPool

        with WorkerPool(2, default_timeout=30.0) as pool:
            first = pool.submit(Job(
                "run", example="fact-f",
                options=JobOptions(fuel=10, checkpoint=True,
                                   no_cache=True))).wait(30.0)
            assert first is not None and first.status == "suspended"
            hops = 0
            result = first
            while result.status == "suspended":
                result = pool.submit(Job(
                    "resume", snapshot=result.output["snapshot"],
                    options=JobOptions(fuel=10, checkpoint=True,
                                       no_cache=True))).wait(30.0)
                assert result is not None
                hops += 1
                assert hops < 50
            assert result.status == "ok"
            assert result.output["value"] == "720"
            # Two workers served the chain (pids recorded per result):
            # not guaranteed by scheduling, so assert only that every
            # hop produced a worker pid and the chain stayed correct.
            assert result.worker is not None


class TestClientValidation:
    def test_resume_rejects_non_suspended(self):
        from repro.serve.client import ClientError, ServeClient
        from repro.serve.protocol import JobResult

        done = JobResult(id="x", kind="run", status="ok",
                         output={"value": "1"})
        client = ServeClient.__new__(ServeClient)   # no socket needed
        with pytest.raises(ClientError):
            client.resume(done)

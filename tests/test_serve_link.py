"""Tests for the ``link`` job kind: manifests through the serving layer.

A warm worker pointed at a shared ``--store`` serves repeat links from
artifacts written by any earlier process (or the CLI).
"""

import json

import pytest

from repro.serve.executor import execute_job
from repro.serve.protocol import JOB_KINDS, Job, JobOptions, ProtocolError

MANIFEST = json.dumps({
    "components": {
        "double": "lam (x: int). (x + x)",
        "quad": "lam (x: int). double (double x)",
        "fact": {"builtin": "fact-t"},
    },
    "main": "quad (fact 3)",
})


class TestProtocol:
    def test_link_is_a_job_kind(self):
        assert "link" in JOB_KINDS

    def test_link_needs_source(self):
        with pytest.raises(ProtocolError):
            Job("link", example="fig17")
        with pytest.raises(ProtocolError):
            Job("link")

    def test_store_is_not_semantic(self):
        opts = JobOptions(store="/anywhere", fuel=99)
        assert "store" not in opts.semantic_dict()
        assert opts.semantic_dict().get("fuel") == 99
        assert JobOptions.from_dict(
            {"store": "/x", "run": False}).run is False

    def test_roundtrip(self):
        job = Job("link", source=MANIFEST,
                  options=JobOptions(store="/tmp/s", run=False))
        back = Job.from_dict(job.to_dict())
        assert back.kind == "link"
        assert back.options.store == "/tmp/s"
        assert back.options.run is False


class TestExecute:
    def test_link_and_run(self):
        result = execute_job(Job("link", source=MANIFEST))
        assert result.ok
        out = result.output
        assert out["value"] == "24"
        assert out["components"] == ["double", "fact", "quad"]
        assert out["tiers"]["fact"] == "handwritten"
        assert sorted(out["recompiled"]) == ["double", "fact", "quad"]
        assert out["labels_renamed"] > 0
        assert out["type"] == "int"

    def test_link_without_run(self):
        result = execute_job(Job("link", source=MANIFEST,
                                 options=JobOptions(run=False)))
        assert result.ok
        assert "value" not in result.output
        assert result.output["type"] == "int"

    def test_store_reuse_across_jobs(self, tmp_path):
        store = str(tmp_path / "store")
        cold = execute_job(Job("link", source=MANIFEST,
                               options=JobOptions(store=store)))
        assert sorted(cold.output["recompiled"]) \
            == ["double", "fact", "quad"]
        warm = execute_job(Job("link", source=MANIFEST,
                               options=JobOptions(store=store)))
        assert warm.output["recompiled"] == []
        assert sorted(warm.output["cached"]) == ["double", "fact", "quad"]
        assert warm.output["value"] == "24"

    def test_validation_option(self, tmp_path):
        result = execute_job(Job(
            "link", source=MANIFEST,
            options=JobOptions(store=str(tmp_path / "store"),
                               validate=True, run=False)))
        assert result.ok
        validation = result.output["validation"]
        assert validation["double"]["ok"] and validation["quad"]["ok"]
        assert "fact" not in validation        # handwritten: static check

    def test_bad_manifest_is_an_error_result(self):
        result = execute_job(Job("link", source="not json {"))
        assert result.status == "error"
        assert "manifest" in result.error

    def test_link_error_is_an_error_result(self):
        bad = json.dumps({"components": {"a": "lam (x: int). ghost x"},
                          "main": "a 1"})
        result = execute_job(Job("link", source=bad))
        assert result.status == "error"
        assert "ghost" in result.error

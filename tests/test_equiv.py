"""Tests for the bounded contextual-equivalence machinery."""

import random

import pytest

from repro.equiv.checker import check_equivalence, EquivalenceReport
from repro.equiv.contexts import contexts_for, t_application_context
from repro.equiv.generators import (
    int_corpus, probe_functions, values_of, values_of_arrow_args,
)
from repro.equiv.observation import canonical_value, Observation, observe
from repro.equiv.worlds import related_values, World
from repro.errors import FTTypeError, MachineError
from repro.f.syntax import (
    App, BinOp, FArrow, FInt, Fold, FRec, FTupleT, FTVar, FUnit, If0, IntE,
    Lam, TupleE, Unfold, UnitE, Var,
)
from repro.f.typecheck import typecheck
from repro.ft.typecheck import check_ft_expr

INT_ARROW = FArrow((FInt(),), FInt())


def lam_int(body):
    return Lam((("x", FInt()),), body)


OMEGA_MU = FRec("a", FArrow((FTVar("a"),), FInt()))
OMEGA_FN = Lam((("f", OMEGA_MU),),
               App(Unfold(Var("f")), (Var("f"),)))
OMEGA = App(OMEGA_FN, (Fold(OMEGA_MU, OMEGA_FN),))


class TestObservation:
    def test_halt_value(self):
        assert observe(BinOp("+", IntE(1), IntE(1))) == \
            Observation("halted", 2)

    def test_divergence(self):
        assert observe(OMEGA, fuel=2_000).kind == "diverged"

    def test_stuck(self):
        obs = observe(App(lam_int(Var("x")), (IntE(1), IntE(2))))
        assert obs.kind == "stuck"

    def test_agreement(self):
        assert Observation("halted", 2).agrees_with(Observation("halted", 2))
        assert not Observation("halted", 2).agrees_with(
            Observation("halted", 3))
        assert not Observation("halted", 2).agrees_with(
            Observation("diverged"))
        assert Observation("diverged").agrees_with(Observation("diverged"))

    def test_canonicalization(self):
        assert canonical_value(IntE(3)) == 3
        assert canonical_value(UnitE()) == ()
        assert canonical_value(TupleE((IntE(1), UnitE()))) == (1, ())
        assert canonical_value(lam_int(Var("x"))) == "<fn>"
        mu = FRec("a", FInt())
        assert canonical_value(Fold(mu, IntE(1))) == ("fold", 1)

    def test_non_value_rejected(self):
        with pytest.raises(MachineError):
            canonical_value(Var("x"))


class TestGenerators:
    def test_int_corpus_covers_boundaries(self):
        corpus = int_corpus()
        assert 0 in corpus and 1 in corpus
        assert any(n < 0 for n in corpus)

    def test_values_are_well_typed(self):
        rng = random.Random(1)
        for ty in (FInt(), FUnit(), FTupleT((FInt(), FUnit())),
                   INT_ARROW, FArrow((INT_ARROW,), FInt())):
            for v in values_of(ty, rng, budget=2):
                assert typecheck(v) is not None

    def test_probe_functions_discriminate(self):
        """At least two probes of (int)->int must differ on some input."""
        rng = random.Random(0)
        probes = list(probe_functions(INT_ARROW, rng, budget=2))
        assert len(probes) >= 3
        outs = {observe(App(p, (IntE(4),))).value for p in probes}
        assert len(outs) >= 2

    def test_arrow_arg_tuples(self):
        rng = random.Random(0)
        args = list(values_of_arrow_args(INT_ARROW, rng, budget=1))
        assert args
        assert all(len(a) == 1 for a in args)

    def test_mu_values(self):
        mu = FRec("a", FInt())
        vals = list(values_of(mu, random.Random(0), budget=2))
        assert vals and all(isinstance(v, Fold) for v in vals)


class TestContexts:
    def test_first_order_identity_context(self):
        ctxs = contexts_for(FInt())
        assert any(name == "identity" for name, _ in ctxs)

    def test_arrow_contexts_close_the_term(self):
        for name, plug in contexts_for(INT_ARROW, random.Random(0)):
            prog = plug(lam_int(BinOp("+", Var("x"), IntE(1))))
            ty, _ = check_ft_expr(prog)
            # observations are first-order
            assert str(ty) in ("int", "unit")

    def test_cross_language_context_present(self):
        names = [name for name, _ in contexts_for(INT_ARROW,
                                                  random.Random(0))]
        assert any(name.startswith("t-apply") for name in names)

    def test_cross_language_context_runs(self):
        prog = t_application_context(
            lam_int(BinOp("*", Var("x"), IntE(2))), INT_ARROW, (IntE(6),))
        ty, _ = check_ft_expr(prog)
        assert str(ty) == "int"
        assert observe(prog) == Observation("halted", 12)

    def test_cross_language_context_disabled(self):
        names = [name for name, _ in contexts_for(
            INT_ARROW, random.Random(0), include_cross_language=False)]
        assert not any(name.startswith("t-apply") for name in names)


class TestChecker:
    def test_identical_terms_equivalent(self):
        inc = lam_int(BinOp("+", Var("x"), IntE(1)))
        report = check_equivalence(inc, inc, INT_ARROW, fuel=10_000)
        assert report.equivalent and report.trials > 0

    def test_syntactic_variants_equivalent(self):
        a = lam_int(BinOp("+", Var("x"), IntE(2)))
        b = lam_int(BinOp("+", BinOp("+", Var("x"), IntE(1)), IntE(1)))
        assert check_equivalence(a, b, INT_ARROW, fuel=10_000).equivalent

    def test_different_functions_refuted(self):
        a = lam_int(BinOp("+", Var("x"), IntE(1)))
        b = lam_int(BinOp("+", Var("x"), IntE(2)))
        report = check_equivalence(a, b, INT_ARROW, fuel=10_000)
        assert not report.equivalent
        assert report.counterexample is not None

    def test_divergence_vs_value_refuted(self):
        a = lam_int(OMEGA)
        b = lam_int(IntE(0))
        report = check_equivalence(a, b, INT_ARROW, fuel=3_000,
                                   include_cross_language=False)
        assert not report.equivalent

    def test_agreeing_only_on_zero_refuted(self):
        a = lam_int(IntE(0))
        b = lam_int(If0(Var("x"), IntE(0), Var("x")))
        assert not check_equivalence(a, b, INT_ARROW,
                                     fuel=10_000).equivalent

    def test_type_annotation_verified(self):
        with pytest.raises(FTTypeError):
            check_equivalence(IntE(1), IntE(1), FUnit())

    def test_first_order_equivalence(self):
        assert check_equivalence(IntE(2), BinOp("+", IntE(1), IntE(1)),
                                 FInt()).equivalent

    def test_max_contexts_cap(self):
        inc = lam_int(BinOp("+", Var("x"), IntE(1)))
        report = check_equivalence(inc, inc, INT_ARROW, fuel=5_000,
                                   max_contexts=3)
        assert report.trials <= 3

    def test_report_prints(self):
        report = check_equivalence(IntE(1), IntE(1), FInt())
        assert "indistinguishable" in str(report)
        bad = check_equivalence(IntE(1), IntE(2), FInt())
        assert "INEQUIVALENT" in str(bad)


class TestWorlds:
    def test_base_values(self):
        w = World(k=2, fuel=5_000)
        assert related_values(w, IntE(1), IntE(1), FInt()) is None
        assert related_values(w, IntE(1), IntE(2), FInt()) is not None

    def test_tuples_pointwise(self):
        w = World(k=2, fuel=5_000)
        a = TupleE((IntE(1), UnitE()))
        b = TupleE((IntE(1), UnitE()))
        ty = FTupleT((FInt(), FUnit()))
        assert related_values(w, a, b, ty) is None

    def test_mu_consumes_step_index(self):
        mu = FRec("a", FInt())
        w = World(k=0, fuel=5_000)
        # at index 0 everything is related (truncation)
        assert related_values(w, Fold(mu, IntE(1)), Fold(mu, IntE(2)),
                              mu) is None
        w1 = World(k=1, fuel=5_000)
        assert related_values(w1, Fold(mu, IntE(1)), Fold(mu, IntE(2)),
                              mu) is not None

    def test_functions_related_by_probing(self):
        w = World(k=2, fuel=10_000)
        a = lam_int(BinOp("+", Var("x"), IntE(1)))
        b = lam_int(BinOp("-", Var("x"), IntE(-1)))
        assert related_values(w, a, b, INT_ARROW) is None

    def test_functions_refuted_with_witness(self):
        w = World(k=2, fuel=10_000)
        a = lam_int(IntE(0))
        b = lam_int(Var("x"))
        failure = related_values(w, a, b, INT_ARROW)
        assert failure is not None
        assert "args" in failure.witness

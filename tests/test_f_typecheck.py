"""Unit tests for the standalone pure-F typechecker (paper section 4.1)."""

import pytest

from repro.errors import FTTypeError
from repro.f.syntax import (
    App, BinOp, FArrow, FInt, Fold, FRec, FTupleT, FTVar, FUnit, If0, IntE,
    Lam, Proj, TupleE, Unfold, UnitE, Var,
)
from repro.f.typecheck import typecheck


def lam_int(body):
    return Lam((("x", FInt()),), body)


class TestBaseRules:
    def test_unit(self):
        assert typecheck(UnitE()) == FUnit()

    def test_int(self):
        assert typecheck(IntE(42)) == FInt()

    def test_var_from_env(self):
        assert typecheck(Var("x"), {"x": FInt()}) == FInt()

    def test_unbound_var(self):
        with pytest.raises(FTTypeError, match="unbound"):
            typecheck(Var("x"))


class TestBinOp:
    @pytest.mark.parametrize("op", ["+", "-", "*"])
    def test_all_ops(self, op):
        assert typecheck(BinOp(op, IntE(1), IntE(2))) == FInt()

    def test_left_must_be_int(self):
        with pytest.raises(FTTypeError, match="left operand"):
            typecheck(BinOp("+", UnitE(), IntE(1)))

    def test_right_must_be_int(self):
        with pytest.raises(FTTypeError, match="right operand"):
            typecheck(BinOp("+", IntE(1), UnitE()))


class TestIf0:
    def test_basic(self):
        assert typecheck(If0(IntE(0), IntE(1), IntE(2))) == FInt()

    def test_scrutinee_must_be_int(self):
        with pytest.raises(FTTypeError, match="scrutinee"):
            typecheck(If0(UnitE(), IntE(1), IntE(2)))

    def test_branches_must_agree(self):
        with pytest.raises(FTTypeError, match="branches disagree"):
            typecheck(If0(IntE(0), IntE(1), UnitE()))

    def test_branches_alpha_equivalent_mus_agree(self):
        mu1 = FRec("a", FArrow((FTVar("a"),), FInt()))
        mu2 = FRec("b", FArrow((FTVar("b"),), FInt()))
        e = If0(IntE(0),
                Lam((("x", mu1),), IntE(1)),
                Lam((("x", mu2),), IntE(1)))
        assert isinstance(typecheck(e), FArrow)


class TestLambdaAndApp:
    def test_identity(self):
        assert typecheck(lam_int(Var("x"))) == FArrow((FInt(),), FInt())

    def test_multi_arg(self):
        lam = Lam((("x", FInt()), ("y", FUnit())), Var("y"))
        assert typecheck(lam) == FArrow((FInt(), FUnit()), FUnit())

    def test_duplicate_params_rejected(self):
        with pytest.raises(FTTypeError, match="duplicate"):
            typecheck(Lam((("x", FInt()), ("x", FInt())), Var("x")))

    def test_application(self):
        assert typecheck(App(lam_int(Var("x")), (IntE(1),))) == FInt()

    def test_apply_non_function(self):
        with pytest.raises(FTTypeError, match="non-arrow"):
            typecheck(App(IntE(1), (IntE(2),)))

    def test_arity_mismatch(self):
        with pytest.raises(FTTypeError, match="arity"):
            typecheck(App(lam_int(Var("x")), (IntE(1), IntE(2))))

    def test_argument_type_mismatch(self):
        with pytest.raises(FTTypeError, match="argument 0"):
            typecheck(App(lam_int(Var("x")), (UnitE(),)))

    def test_shadowing_inner_binding_wins(self):
        inner = Lam((("x", FUnit()),), Var("x"))
        outer = lam_int(App(inner, (UnitE(),)))
        assert typecheck(outer) == FArrow((FInt(),), FUnit())


class TestRecursiveTypes:
    MU = FRec("a", FArrow((FTVar("a"),), FInt()))

    def test_fold(self):
        folded = Fold(self.MU, Lam((("f", self.MU),), IntE(0)))
        assert typecheck(folded) == self.MU

    def test_fold_needs_mu_annotation(self):
        with pytest.raises(FTTypeError, match="not a mu"):
            typecheck(Fold(FInt(), IntE(1)))

    def test_fold_body_must_match_unrolling(self):
        with pytest.raises(FTTypeError, match="unrolling"):
            typecheck(Fold(self.MU, IntE(1)))

    def test_unfold(self):
        folded = Fold(self.MU, Lam((("f", self.MU),), IntE(0)))
        assert typecheck(Unfold(folded)) == FArrow((self.MU,), FInt())

    def test_unfold_needs_mu(self):
        with pytest.raises(FTTypeError, match="non-mu"):
            typecheck(Unfold(IntE(1)))

    def test_self_application_types(self):
        # the factorial skeleton: (unfold f) f
        body = App(Unfold(Var("f")), (Var("f"),))
        lam = Lam((("f", self.MU),), body)
        assert typecheck(lam) == FArrow((self.MU,), FInt())


class TestTuples:
    def test_tuple(self):
        assert typecheck(TupleE((IntE(1), UnitE()))) == \
            FTupleT((FInt(), FUnit()))

    def test_projection(self):
        assert typecheck(Proj(1, TupleE((IntE(1), UnitE())))) == FUnit()

    def test_projection_out_of_range(self):
        with pytest.raises(FTTypeError, match="out of range"):
            typecheck(Proj(2, TupleE((IntE(1),))))

    def test_projection_from_non_tuple(self):
        with pytest.raises(FTTypeError, match="non-tuple"):
            typecheck(Proj(0, IntE(1)))

    def test_empty_tuple(self):
        assert typecheck(TupleE(())) == FTupleT(())


class TestFTFormsRejected:
    def test_stack_lambda_rejected(self):
        from repro.ft.syntax import StackLam
        from repro.tal.syntax import TInt

        lam = StackLam((("x", FInt()),), Var("x"), (TInt(),), (TInt(),))
        with pytest.raises(FTTypeError, match="stack-modifying"):
            typecheck(lam)

    def test_boundary_rejected(self):
        from repro.papers_examples.import_example import build
        from repro.ft.syntax import Boundary

        boundary = Boundary(FInt(), build())
        with pytest.raises(FTTypeError):
            typecheck(boundary)

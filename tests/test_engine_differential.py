"""Differential lockstep harness: the CEK engine against substitution.

The CEK machine (:mod:`repro.f.cek`) is the default F stepper, and its
correctness claim is *observational step-equivalence* with the literal
Fig-5 substitution loop: identical values, identical ``steps``,
identical fuel/heap/depth budget verdicts, identical suspension points
-- on every paper example, the stdlib, budget-exhaustion splits, and
random well-typed terms.  These tests are the enforcement of that claim
(ISSUE acceptance: "identical values, step counts, and budget verdicts
on every differential test").

Also covered here: the hash-consing/memoization layer this PR added
underneath both engines (:mod:`repro.caching`, the LRU caches in
:mod:`repro.tal.subst` / :mod:`repro.tal.equality`) and the serving
layer's treatment of ``engine`` as a non-semantic option.
"""

import pickle

import pytest

from repro import obs
from repro.errors import FuelExhausted
from repro.f.cek import (
    CEKEvaluator, DEFAULT_ENGINE, ENGINES, cek_evaluate, resolve_engine,
)
from repro.f.eval import FEvaluator, evaluate
from repro.f.syntax import (
    App, BinOp, FInt, FUnit, IntE, Lam, UnitE, Var, intern_ftype,
)
from repro.ft.machine import FTMachine, evaluate_ft
from repro.papers_examples import example_entries
from repro.papers_examples.fig17_factorial import build_fact_f
from repro.resilience.budget import Budget
from repro.resilience.checkpoint import MachineSnapshot
from repro.stdlib.foreign import bump, counter_value, new_counter
from repro.stdlib.prelude import compose, identity, let_, seq_cell, twice
from repro.stdlib.refs import alloc_cell, free_cell, read_cell, write_cell
from repro.tal.equality import clear_equality_cache, types_equal
from repro.tal.subst import (
    Subst, clear_subst_caches, instantiate_code_type, subst_cache_stats,
    subst_ty,
)
from repro.tal.syntax import (
    CodeType, DeltaBind, KIND_ALPHA, NIL_STACK, QReg, RegFileTy, TInt,
    TRef, TUnit, TVar, intern_ty,
)
from tests.strategies import random_f_int_expr

INT_CELL = (TInt(),)


def _observe(build, engine, **kwargs):
    """(pretty value, steps, budget spend) for one engine run."""
    machine = FTMachine(engine=engine, **kwargs)
    value = machine.evaluate(build())
    return {
        "value": str(value),
        "steps": machine.steps,
        "spent": machine.budget.spent(),
    }


def _assert_lockstep(build, **kwargs):
    subst = _observe(build, "subst", **kwargs)
    cek = _observe(build, "cek", **kwargs)
    assert subst == cek
    return cek


class TestEngineSelection:
    def test_registry(self):
        assert ENGINES == ("subst", "cek")
        assert DEFAULT_ENGINE == "cek"
        assert resolve_engine(None) == "cek"
        assert resolve_engine("subst") == "subst"

    def test_unknown_engine_rejected(self):
        from repro.errors import FunTALError

        with pytest.raises(FunTALError):
            resolve_engine("graph-reduction")

    def test_machine_default_is_cek(self):
        assert FTMachine().engine == "cek"
        assert FTMachine(engine="subst").engine == "subst"


class TestExamplesLockstep:
    """Every paper example: same value, steps, and budget spend."""

    @pytest.mark.parametrize("name", sorted(example_entries()))
    def test_example(self, name):
        _, build = example_entries()[name]
        _assert_lockstep(build)

    def test_deep_factorial(self):
        _assert_lockstep(lambda: App(build_fact_f(), (IntE(60),)))


class TestStdlibLockstep:
    """Prelude combinators, the mutable-cell library, foreign counters."""

    def test_prelude_combinators(self):
        inc = Lam((("x", FInt()),), BinOp("+", Var("x"), IntE(1)))
        dbl = Lam((("x", FInt()),), BinOp("*", Var("x"), IntE(2)))
        programs = [
            lambda: App(identity(FInt()), (IntE(4),)),
            lambda: App(compose(inc, dbl, FInt(), FInt(), FInt()),
                        (IntE(5),)),
            lambda: App(twice(inc, FInt()), (IntE(0),)),
            lambda: let_("x", FInt(), IntE(3),
                         BinOp("*", Var("x"), Var("x"))),
        ]
        for build in programs:
            _assert_lockstep(build)

    def test_refs_cell_roundtrip(self):
        def build():
            return seq_cell(
                App(alloc_cell(), (IntE(1),)), "_", FUnit(),
                seq_cell(App(write_cell(), (IntE(99),)), "_w", FUnit(),
                         seq_cell(App(read_cell(), (UnitE(),)), "v",
                                  FInt(),
                                  seq_cell(App(free_cell(), (UnitE(),)),
                                           "_f", FUnit(), Var("v"),
                                           (), ()),
                                  INT_CELL, ()),
                         INT_CELL, ()),
                INT_CELL, ())

        out = _assert_lockstep(build)
        assert out["value"] == "99"

    def test_foreign_counter(self):
        from repro.stdlib.foreign import INT_CELL_LUMP

        def build():
            body = App(counter_value(), (Var("c"),))
            for i in range(3):
                body = let_(f"u{i}", FUnit(), App(bump(), (Var("c"),)),
                            body)
            return let_("c", INT_CELL_LUMP,
                        App(new_counter(), (IntE(10),)), body)

        out = _assert_lockstep(build)
        assert out["value"] == "13"


class TestBudgetVerdictLockstep:
    """Exhaustion and suspension are engine-invariant."""

    @pytest.mark.parametrize("name", sorted(example_entries()))
    def test_exhaustion_at_every_prefix_matches(self, name):
        _, build = example_entries()[name]
        total = _observe(build, "subst")["spent"]["fuel_used"]
        picks = sorted({1, total // 3, total // 2, total - 1})
        for k in (p for p in picks if 0 < p < total):
            outcomes = {}
            for engine in ENGINES:
                machine = FTMachine(budget=Budget(fuel=k), engine=engine)
                with pytest.raises(FuelExhausted):
                    machine.evaluate(build())
                assert machine.suspended
                outcomes[engine] = (machine.budget.fuel_used,
                                    machine.steps)
            assert outcomes["subst"] == outcomes["cek"], (name, k)

    @pytest.mark.parametrize("name", sorted(example_entries()))
    def test_cross_engine_snapshot_resume(self, name):
        """Suspend on one engine, finish on the other: snapshots carry
        plain reified terms, so the stepper is swappable mid-run."""
        _, build = example_entries()[name]
        ref = _observe(build, "subst")
        total = ref["spent"]["fuel_used"]
        if total < 2:
            pytest.skip("example too small to split")
        k = total // 2
        for first, second in (("subst", "cek"), ("cek", "subst")):
            machine = FTMachine(budget=Budget(fuel=k), engine=first)
            with pytest.raises(FuelExhausted):
                machine.evaluate(build())
            wire = machine.snapshot().to_wire()
            revived = FTMachine.restore(MachineSnapshot.from_wire(wire))
            revived.engine = second
            outcome = revived.resume(fuel=total - k)
            assert str(outcome) == ref["value"], (name, first, second)
            assert revived.budget.fuel_used == total - k

    def test_depth_verdict_matches(self):
        from repro.errors import StackDepthExhausted

        expr = IntE(0)
        inc = Lam((("x", FInt()),), BinOp("+", Var("x"), IntE(1)))
        for _ in range(40):
            expr = App(inc, (expr,))
        for engine in ENGINES:
            machine = FTMachine(budget=Budget(depth=10), engine=engine)
            with pytest.raises(StackDepthExhausted):
                machine.evaluate(expr)


class TestRandomTermsLockstep:
    """Seeded random well-typed F terms agree on both engines."""

    @pytest.mark.parametrize("seed", range(60))
    def test_random_term(self, seed):
        expr = random_f_int_expr(seed, depth=4)
        _assert_lockstep(lambda: expr)


class TestPureEvaluators:
    """FEvaluator vs CEKEvaluator outside the FT machine."""

    def _deep(self, n=30):
        inc = Lam((("x", FInt()),), BinOp("+", Var("x"), IntE(1)))
        expr = IntE(0)
        for _ in range(n):
            expr = App(inc, (expr,))
        return expr

    def test_values_and_fuel_agree(self):
        expr = self._deep()
        ref = FEvaluator(expr)
        value = ref.run()
        cek = CEKEvaluator(expr)
        assert cek.run() == value
        assert cek.budget.fuel_used == ref.budget.fuel_used

    def test_evaluate_dispatches_engines(self):
        expr = self._deep(5)
        assert evaluate(expr) == evaluate(expr, engine="subst")
        assert evaluate(expr, engine="cek") == IntE(5)
        assert cek_evaluate(expr) == IntE(5)

    def test_pending_expr_matches_substitution(self):
        """A fuel-suspended CEK state reifies to the exact term the
        substitution machine is stuck on at the same fuel."""
        expr = self._deep()
        ref = FEvaluator(expr)
        ref.run()
        total = ref.budget.fuel_used
        for k in (1, total // 2, total - 1):
            sub = FEvaluator(expr, fuel=k)
            with pytest.raises(FuelExhausted):
                sub.run()
            cek = CEKEvaluator(expr, fuel=k)
            with pytest.raises(FuelExhausted):
                cek.run()
            assert cek.pending_expr() == sub.pending_expr(), k

    def test_cek_snapshot_roundtrip(self):
        expr = self._deep()
        ref = FEvaluator(expr)
        value = ref.run()
        total = ref.budget.fuel_used
        ev = CEKEvaluator(expr, fuel=total // 2)
        with pytest.raises(FuelExhausted):
            ev.run()
        snap = pickle.loads(pickle.dumps(ev.snapshot()))
        revived = CEKEvaluator.restore(snap)
        assert revived.run(fuel=total - total // 2) == value


@pytest.fixture
def clean_caches():
    clear_subst_caches()
    clear_equality_cache()
    obs.disable()
    obs.reset()
    yield
    clear_subst_caches()
    clear_equality_cache()
    obs.disable()
    obs.reset()


class TestTypeCaches:
    """The interning / memoization layer under both engines."""

    def test_interning_canonicalizes(self, clean_caches):
        a = intern_ty(TRef((TInt(), TUnit())))
        b = intern_ty(TRef((TInt(), TUnit())))
        assert a is b
        from repro.f.syntax import FArrow

        fa = intern_ftype(FArrow((FInt(),), FInt()))
        fb = intern_ftype(FArrow((FInt(),), FInt()))
        assert fa is fb

    def test_subst_cache_hits_and_counters(self, clean_caches):
        obs.enable(record=False)
        s = Subst({(KIND_ALPHA, "a"): TInt()})
        t = TRef((TVar("a"), TUnit()))
        first = subst_ty(t, s)
        second = subst_ty(t, s)
        assert first is second == TRef((TInt(), TUnit()))
        stats = subst_cache_stats()
        assert stats["tal.subst.cache.ty"]["hits"] >= 1
        counters = obs.OBS.metrics.snapshot()["counters"]
        assert counters.get("tal.subst.cache.ty.hit", 0) >= 1
        assert counters.get("tal.subst.cache.ty.miss", 0) >= 1

    def test_instantiation_cache_identity(self, clean_caches):
        ct = CodeType((DeltaBind(KIND_ALPHA, "a"),),
                      RegFileTy.of(r1=TVar("a")), NIL_STACK, QReg("ra"))
        one = instantiate_code_type(ct, (TInt(),))
        two = instantiate_code_type(ct, (TInt(),))
        assert one is two
        assert one.chi.get("r1") == TInt()

    def test_equality_memo_respects_renaming_env(self, clean_caches):
        # the `a is b` fast path must not apply under a pending renaming
        x = TVar("x")
        assert types_equal(x, x)
        assert not types_equal(x, x, {(KIND_ALPHA, "x"): "y"})
        # memoized verdicts are stable
        assert types_equal(TRef((TInt(),)), TRef((TInt(),)))
        assert types_equal(TRef((TInt(),)), TRef((TInt(),)))

    def test_caches_do_not_leak_across_clear(self, clean_caches):
        s = Subst({(KIND_ALPHA, "a"): TInt()})
        subst_ty(TRef((TVar("a"),)), s)
        clear_subst_caches()
        stats = subst_cache_stats()
        assert stats["tal.subst.cache.ty"]["size"] == 0


class TestServeEngineNonSemantic:
    """`engine` selects an implementation, not a computation: it must
    not fragment the content-addressed result cache."""

    def test_cache_key_invariant_under_engine(self):
        from repro.serve.cache import job_cache_key
        from repro.serve.protocol import Job, JobOptions

        keys = {
            job_cache_key(Job(id=f"j-{i}", kind="run", example="fig17",
                              options=JobOptions(engine=eng)))
            for i, eng in enumerate((None, "subst", "cek"))
        }
        assert len(keys) == 1

    def test_executor_results_match_across_engines(self):
        from repro.serve.executor import execute_job
        from repro.serve.protocol import Job, JobOptions

        outs = {}
        for eng in ENGINES:
            result = execute_job(
                Job(id=f"e-{eng}", kind="run", example="fig17",
                    options=JobOptions(engine=eng)))
            assert result.status == "ok", result
            outs[eng] = (result.output.get("value"),
                         result.output.get("steps"))
        assert outs["subst"] == outs["cek"]

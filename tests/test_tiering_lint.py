"""Grep-gated lints for the tiering refactor (ISSUE acceptance).

Two structural invariants, enforced over the source tree itself so a
regression cannot land silently:

* tier selection has exactly one owner -- no call outside
  ``repro.tiering`` passes a ``tiers=`` keyword argument (callers pass
  positionally after resolving through
  :func:`repro.tiering.policy.resolve_tiers`, or pass nothing and let
  the callee resolve);
* every :class:`~repro.serve.protocol.JobOptions` field is classified
  in exactly one of the audited ``SEMANTIC_OPTIONS`` /
  ``NON_SEMANTIC_OPTIONS`` constants, so adding an option without
  deciding its result-cache behaviour fails a test instead of silently
  corrupting cache keys.
"""

import ast
import dataclasses
import pathlib

from repro.serve.protocol import (
    NON_SEMANTIC_OPTIONS, SEMANTIC_OPTIONS, JobOptions,
)

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def _source_files():
    for path in sorted(SRC.rglob("*.py")):
        if "tiering" in path.relative_to(SRC).parts:
            continue
        yield path


class TestNoTiersThreading:
    def test_no_tiers_keyword_outside_tiering(self):
        """The scattered ``tiers=`` threading the tiering subsystem
        replaced must not grow back."""
        offenders = []
        for path in _source_files():
            tree = ast.parse(path.read_text(encoding="utf-8"),
                             filename=str(path))
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                for kw in node.keywords:
                    if kw.arg == "tiers":
                        offenders.append(
                            f"{path.relative_to(SRC.parent.parent)}:"
                            f"{node.lineno}")
        assert not offenders, (
            "direct tiers= threading outside repro.tiering "
            f"(resolve through repro.tiering.policy.resolve_tiers "
            f"instead): {offenders}")

    def test_no_tiers_parameter_defaults_to_all(self):
        """Sanity: the refactored entry points still accept ``tiers``
        positionally (None defers to the policy)."""
        import inspect

        from repro.compile.pipeline import compile_term
        from repro.jit.compiler import compile_function, jit_rewrite
        from repro.resilience.safety_net import run_guarded

        for fn, name in ((compile_term, "tiers"),
                         (compile_function, "tiers"),
                         (jit_rewrite, "tiers"),
                         (run_guarded, "tiers")):
            param = inspect.signature(fn).parameters[name]
            assert param.default is None, fn.__name__
            assert param.kind is not inspect.Parameter.KEYWORD_ONLY, \
                fn.__name__


class TestJobOptionsPartition:
    def test_every_field_classified_exactly_once(self):
        """Adding a JobOptions field without classifying it (semantic:
        part of the result-cache key; non-semantic: execution policy
        only) must fail here."""
        names = {f.name for f in dataclasses.fields(JobOptions)}
        semantic = set(SEMANTIC_OPTIONS)
        non_semantic = set(NON_SEMANTIC_OPTIONS)
        assert semantic & non_semantic == set(), \
            "options classified twice"
        unclassified = names - semantic - non_semantic
        assert not unclassified, (
            f"unclassified JobOptions fields {sorted(unclassified)}: add "
            "each to SEMANTIC_OPTIONS (cache-key-relevant) or "
            "NON_SEMANTIC_OPTIONS (execution policy) in "
            "repro.serve.protocol with a rationale")
        phantom = (semantic | non_semantic) - names
        assert not phantom, f"classified but nonexistent: {sorted(phantom)}"

    def test_class_constant_is_the_audited_list(self):
        assert tuple(JobOptions.NON_SEMANTIC) == NON_SEMANTIC_OPTIONS

    def test_cache_key_ignores_exactly_the_non_semantic(self):
        """The result-cache key must change with any semantic option
        and with no non-semantic one."""
        from repro.serve.cache import job_cache_key
        from repro.serve.protocol import Job

        base = Job("run", source="(1 + 2)")
        key = job_cache_key(base)

        probes = {
            "fuel": 123, "heap": 44, "depth": 45, "checkpoint": True,
            "jit": True, "result_type": "unit", "trace": True,
            "optimize": True, "check": True, "tier": "arith",
            "validate": True, "ir": True, "seed": 9, "type": "int",
            "right": "(2 + 2)", "run": False,
        }
        for name in SEMANTIC_OPTIONS:
            job = Job("run", source="(1 + 2)")
            setattr(job.options, name, probes.get(name, "probe"))
            assert job_cache_key(job) != key, \
                f"semantic option {name} must change the cache key"

        non_probes = {
            "timeout": 9.0, "no_cache": True, "engine": "subst",
            "tal_engine": "fast", "store": "/tmp/x", "deadline_ms": 5,
            "checkpoint_every": 10, "degraded": True,
            "inject_crash": True, "inject_sleep": 1.0,
            "inject_hang": True, "inject_corrupt": True,
            "inject_crash_at": 2, "chaos_rate": 0.5, "chaos_seed": 3,
            "chaos_seams": "jit.run", "promoted": True,
            "tiering": {"digest": "d"},
        }
        for name in NON_SEMANTIC_OPTIONS:
            job = Job("run", source="(1 + 2)")
            setattr(job.options, name, non_probes.get(name, "probe"))
            assert job_cache_key(job) == key, \
                f"non-semantic option {name} must not change the cache key"

"""Deterministic chaos harness tests (:mod:`repro.resilience.chaos`).

A seeded :class:`FaultPlane` injects :class:`InjectedFault` at named
seams.  Determinism is the contract: the fault schedule is a pure
function of (seed, rate, seam filter, probe sequence), so every failure
a chaos run finds is replayable from its seed.
"""

import pytest

from repro.errors import InjectedFault
from repro.resilience.chaos import (
    SEAMS, FaultPlane, active_plane, probe,
)


def _schedule(seed, rate, probes=50, seams=None):
    fired = []
    with FaultPlane(seed=seed, rate=rate, seams=seams) as plane:
        for i in range(probes):
            try:
                probe("heap.alloc", str(i))
            except InjectedFault:
                fired.append(i)
    return fired, plane.summary()


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        a, _ = _schedule(seed=3, rate=0.5)
        b, _ = _schedule(seed=3, rate=0.5)
        assert a == b and a          # identical and non-empty

    def test_different_seeds_differ(self):
        a, _ = _schedule(seed=1, rate=0.5)
        b, _ = _schedule(seed=2, rate=0.5)
        assert a != b

    def test_rate_zero_never_fires(self):
        fired, summary = _schedule(seed=1, rate=0.0)
        assert fired == []
        assert summary["faults"] == 0
        assert summary["probes"] == 50

    def test_rate_one_always_fires(self):
        fired, _ = _schedule(seed=1, rate=1.0)
        assert fired == list(range(50))

    def test_max_faults_cap(self):
        fired = []
        with FaultPlane(seed=1, rate=1.0, max_faults=3):
            for i in range(10):
                try:
                    probe("heap.alloc")
                except InjectedFault:
                    fired.append(i)
        assert fired == [0, 1, 2]


class TestPlaneLifecycle:
    def test_no_plane_means_no_faults(self):
        assert active_plane() is None
        probe("heap.alloc")          # no-op outside a plane

    def test_nested_planes_are_rejected(self):
        with FaultPlane(seed=1):
            with pytest.raises(RuntimeError):
                with FaultPlane(seed=2):
                    pass

    def test_plane_deactivates_on_exit(self):
        with FaultPlane(seed=1, rate=1.0):
            pass
        probe("heap.alloc")          # plane gone: must not raise

    def test_unknown_seam_is_rejected(self):
        with pytest.raises(ValueError):
            FaultPlane(seed=1, seams=["no.such.seam"])

    def test_seam_filter(self):
        with FaultPlane(seed=1, rate=1.0, seams=["jit.compile"]):
            probe("heap.alloc")      # filtered out: no fault
            with pytest.raises(InjectedFault):
                probe("jit.compile")

    def test_fault_log_names_the_seam(self):
        with FaultPlane(seed=1, rate=1.0) as plane:
            with pytest.raises(InjectedFault) as exc:
                probe("boundary.translate", "TF[int]")
        assert exc.value.seam == "boundary.translate"
        assert plane.summary()["per_seam"]["boundary.translate"] == 1


class TestSeamsAreWired:
    """Every named seam is reachable from the real operation it guards."""

    def test_seam_registry(self):
        assert set(SEAMS) == {"heap.alloc", "boundary.translate",
                              "jit.compile", "jit.run", "snapshot.pickle",
                              "snapshot.restore", "store.io"}

    def test_snapshot_restore_seam(self):
        from repro.ft.machine import FTMachine

        snap = FTMachine().snapshot()
        with FaultPlane(seed=1, rate=1.0, seams=["snapshot.restore"]):
            with pytest.raises(InjectedFault):
                FTMachine.restore(snap)

    def test_store_io_seam(self, tmp_path):
        from repro.link.store import ArtifactStore

        store = ArtifactStore(tmp_path)
        with FaultPlane(seed=1, rate=1.0, seams=["store.io"]):
            with pytest.raises(InjectedFault):
                store.put("0" * 64, {"x": 1})
            with pytest.raises(InjectedFault):
                store.get("0" * 64)

    def test_heap_alloc_seam(self):
        from repro.errors import FunTALError
        from repro.ft.machine import evaluate_ft
        from repro.papers_examples import resolve_example

        _, build = resolve_example("fact-t")
        with FaultPlane(seed=1, rate=1.0, seams=["heap.alloc"]):
            with pytest.raises(InjectedFault):
                evaluate_ft(build())

    def test_boundary_translate_seam(self):
        from repro.ft.machine import evaluate_ft
        from repro.papers_examples import resolve_example

        _, build = resolve_example("fact-t")
        with FaultPlane(seed=1, rate=1.0, seams=["boundary.translate"]):
            with pytest.raises(InjectedFault):
                evaluate_ft(build())

    def test_jit_compile_seam(self):
        from repro.f.syntax import BinOp, FInt, IntE, Lam, Var
        from repro.jit.compiler import clear_compile_cache, compile_function

        clear_compile_cache()
        lam = Lam((("x", FInt()),), BinOp("+", Var("x"), IntE(1)))
        with FaultPlane(seed=1, rate=1.0, seams=["jit.compile"]):
            with pytest.raises(InjectedFault):
                compile_function(lam)

    def test_snapshot_pickle_seam(self):
        from repro.ft.machine import FTMachine

        with FaultPlane(seed=1, rate=1.0, seams=["snapshot.pickle"]):
            with pytest.raises(InjectedFault):
                FTMachine().snapshot()


class TestChaosCommand:
    """``funtal chaos``: the fixed-seed drill CI runs.  Zero wrong
    answers and zero unhandled exceptions, at every seam."""

    def test_three_fixed_seeds_over_all_examples(self):
        from repro.cli import main

        assert main(["chaos", "--seeds", "0,1,2", "--rate", "0.05"]) == 0

    def test_high_rate_still_degrades_cleanly(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--seeds", "9", "--rate", "0.7",
                     "--examples", "fact-f,fact-t", "--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["failures"] == 0
        assert {row["example"] for row in payload["rows"]} == \
            {"fact-f", "fact-t"}

    def test_unknown_seam_exits_2(self):
        from repro.cli import main

        assert main(["chaos", "--seams", "bogus"]) == 2

"""Tests for :mod:`repro.link.fingerprint` -- process-stable addresses.

The whole point of the artifact store is that a digest computed in one
process finds an artifact written by another, so these tests pin
literal digests (any accidental dependence on ``id()``, interning, dict
insertion order, or ``PYTHONHASHSEED`` would shift them) and re-derive a
digest in a fresh subprocess.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.f.syntax import App, BinOp, FArrow, FInt, IntE, Lam, Var
from repro.link import canonical_encoding, component_digest, \
    stable_fingerprint
from repro.surface.parser import parse_fexpr

DOUBLE_SRC = "lam (x: int). (x + x)"

#: Pinned content addresses.  If an intentional change to the encoding
#: or the syntax trees moves these, bump STORE_VERSION alongside --
#: old store entries are unreachable under the new addresses anyway.
PINNED_PLAIN = \
    "ad0f0ff906e349e054e78a811935d1f96de9cfa196f69e69c0a761167ba8c84c"
PINNED_DOUBLE = \
    "09b6fed2fadc43e03654ab5d0a17331d5bc12c89f960b81e8fbce50b25ec26a9"


class TestCanonicalEncoding:
    def test_atoms_are_type_tagged(self):
        # True vs 1 and "1" vs 1 must encode differently.
        assert canonical_encoding(True) != canonical_encoding(1)
        assert canonical_encoding("1") != canonical_encoding(1)
        assert canonical_encoding(None) != canonical_encoding(False)

    def test_dict_order_independent(self):
        a = {"x": 1, "y": 2}
        b = {"y": 2, "x": 1}
        assert list(a) != list(b)       # genuinely different insertion
        assert canonical_encoding(a) == canonical_encoding(b)

    def test_set_order_independent(self):
        assert (canonical_encoding({"a", "b", "c"})
                == canonical_encoding({"c", "a", "b"}))

    def test_tuple_list_distinct(self):
        assert canonical_encoding((1, 2)) != canonical_encoding([1, 2])

    def test_dataclasses_encode_by_qualname_and_fields(self):
        enc = canonical_encoding(IntE(7))
        assert "IntE" in enc and "i7" in enc

    def test_unsupported_objects_rejected(self):
        with pytest.raises(TypeError):
            canonical_encoding(object())
        with pytest.raises(TypeError):
            canonical_encoding(lambda: None)


class TestStableFingerprint:
    def test_pinned_plain(self):
        assert stable_fingerprint(("funtal", 1, "hello")) == PINNED_PLAIN

    def test_pinned_component_digest(self):
        expr = parse_fexpr(DOUBLE_SRC)
        assert component_digest(expr, ()) == PINNED_DOUBLE

    def test_structural_not_identity(self):
        # Two separately constructed (not interned, not `is`-identical)
        # trees with equal structure share one address.
        manual = Lam((("x", FInt()),),
                     BinOp("+", Var("x"), Var("x")))
        parsed = parse_fexpr(DOUBLE_SRC)
        assert stable_fingerprint(manual) == stable_fingerprint(parsed)

    def test_distinct_terms_distinct_digests(self):
        assert (stable_fingerprint(parse_fexpr("lam (x: int). (x + x)"))
                != stable_fingerprint(parse_fexpr("lam (x: int). (x * x)")))

    def test_imports_and_options_are_part_of_the_address(self):
        expr = parse_fexpr("lam (x: int). double x")
        arrow = FArrow((FInt(),), FInt())
        with_import = component_digest(expr, (("double", arrow),))
        assert with_import != component_digest(expr, ())
        assert with_import != component_digest(expr, (("double", arrow),),
                                               optimize=False)

    def test_import_order_irrelevant(self):
        expr = parse_fexpr("lam (x: int). f (g x)")
        arrow = FArrow((FInt(),), FInt())
        assert (component_digest(expr, (("f", arrow), ("g", arrow)))
                == component_digest(expr, (("g", arrow), ("f", arrow))))

    def test_cross_process_stability(self):
        """A fresh interpreter (fresh InternTable, fresh ids, fresh hash
        seed) derives the same address -- the store's correctness
        condition."""
        prog = (
            "from repro.link import component_digest\n"
            "from repro.surface.parser import parse_fexpr\n"
            f"print(component_digest(parse_fexpr({DOUBLE_SRC!r}), ()))\n")
        src = str(Path(__file__).resolve().parents[1] / "src")
        out = subprocess.run(
            [sys.executable, "-c", prog], capture_output=True, text=True,
            check=True, env={"PYTHONPATH": src, "PYTHONHASHSEED": "12345"})
        assert out.stdout.strip() == PINNED_DOUBLE

    def test_application_digest_pinned_against_whole_compile(self):
        # component_digest is also what `funtal compile --store` uses,
        # so the CLI and `funtal build` share artifacts for identical
        # sources (asserted literally in test_cli_link).
        expr = App(parse_fexpr(DOUBLE_SRC), (IntE(5),))
        digest = component_digest(expr, ())
        assert len(digest) == 64 and digest != PINNED_DOUBLE
